#!/usr/bin/env python
"""Render every highlight view of one program's grain graph.

The paper's workflow: "The grain graph has multiple views with colors
encoding a single problem or property per view.  Programmers shift views
to understand problem areas to tackle."  This example renders all seven
views of the Sort grain graph as SVGs plus the yEd GraphML.

    python examples/export_views.py
"""

from pathlib import Path

from repro.analysis import VIEW_KINDS, detect_problems, make_view
from repro.apps import sort
from repro.core.graphml import write_graphml
from repro.core.reductions import reduce_graph
from repro.core.svg import render_svg
from repro.workflow import profile_program

OUT = Path(__file__).parent / "out"


def main() -> None:
    study = profile_program(sort.program(elements=1 << 19), num_threads=48)
    graph = study.graph
    metrics = study.report.metrics
    problems = study.report.problems
    reduced, report = reduce_graph(graph)
    print(f"sort grain graph: {graph.num_grains} grains, reduced "
          f"{report.nodes_before} -> {report.nodes_after} nodes")

    OUT.mkdir(exist_ok=True)
    for kind in VIEW_KINDS:
        view = make_view(metrics, problems, kind)
        path = render_svg(
            reduced,
            OUT / f"sort_{kind}.svg",
            view=view,
            critical_nodes=(
                metrics.critical_path.nodes if kind == "critical_path" else None
            ),
            title=f"sort — {kind} view ({len(view.highlighted)} highlighted)",
        )
        print(f"  {kind:32} -> {path.name} "
              f"({len(view.highlighted)} grains highlighted)")

    graphml = write_graphml(
        graph, OUT / "sort.graphml",
        view=make_view(metrics, problems, "definition"),
        critical_nodes=metrics.critical_path.nodes,
    )
    print(f"  full graph for yEd/Cytoscape    -> {graphml.name}")


if __name__ == "__main__":
    main()
