#!/usr/bin/env python
"""The Sec. 2 walkthrough: diagnosing 376.kdtree's broken cutoff.

Profiles the original program, shows how the grain graph exposes the
runaway recursion (existing tools only show balanced load), applies the
paper's fix, and compares speedups on all three runtime flavors.

    python examples/diagnose_kdtree.py
"""

from repro.apps import kdtree
from repro.workflow import (
    format_speedup_table,
    profile_program,
    speedup_table,
)

TREE = 2000


def main() -> None:
    print("== step 1: profile the original (cutoff=2) ==")
    study = profile_program(kdtree.program(tree_size=TREE, cutoff=2))
    depths = [g.depth for g in study.graph.grains.values()]
    print(f"grains: {study.graph.num_grains}; max task depth: {max(depths)}")
    print(f"existing-tools view: busy-time imbalance only "
          f"{study.timeline.imbalance():.2f} — looks balanced, no lead")
    print(f"grain-graph view: recursion reaches depth {max(depths)} "
          f"despite cutoff 2 -> the cutoff has no effect")
    for advice in study.advice:
        print(f"ADVICE: {advice}")

    print("\n== step 2: confirm — the cutoff value changes nothing ==")
    for cutoff in (2, 8):
        other = profile_program(
            kdtree.program(tree_size=TREE, cutoff=cutoff),
            reference_threads=None,
        )
        print(f"cutoff={cutoff}: {other.graph.num_grains} grains")

    print("\n== step 3: apply the paper's fix (increment depth; separate "
          "sweep cutoff) ==")
    fixed = profile_program(
        kdtree.program_fixed(tree_size=TREE, cutoff=6, sweep_cutoff=8),
        reference_threads=None,
    )
    print(f"grains: {fixed.graph.num_grains} "
          f"(task flood gone), makespan "
          f"{study.makespan_cycles} -> {fixed.makespan_cycles} cycles")

    print("\n== step 4: the Fig. 1 comparison ==")
    rows = speedup_table(
        [
            kdtree.program(tree_size=TREE, cutoff=2),
            kdtree.program_fixed(tree_size=TREE, cutoff=6, sweep_cutoff=8),
        ]
    )
    print(format_speedup_table(rows))
    print("\nthe optimization is portable: every runtime system improves, "
          "and ICC's internal cutoff explains why it coped with the "
          "original.")


if __name__ == "__main__":
    main()
