#!/usr/bin/env python
"""Quickstart: profile a task-parallel program and read its grain graph.

Runs task-parallel Fibonacci on the simulated 48-core machine, builds the
grain graph, computes every Sec. 3.2 metric, prints the analysis summary
and advice, and exports the graph for yEd (GraphML) and the browser (SVG).

    python examples/quickstart.py
"""

from pathlib import Path

from repro.analysis import detect_problems, make_view
from repro.apps import others
from repro.core.graphml import write_graphml
from repro.core.reductions import reduce_graph
from repro.core.svg import render_svg
from repro.workflow import profile_program

OUT = Path(__file__).parent / "out"


def main() -> None:
    # A deliberately low cutoff: the graph will show tiny leaf grains.
    program = others.fib(n=26, cutoff=13)
    study = profile_program(program, num_threads=48)

    print(study.report.summary())
    print()
    print("what existing tools would show instead:")
    print(study.timeline.summary())
    print()
    for advice in study.advice:
        print(f"ADVICE: {advice}")

    OUT.mkdir(exist_ok=True)
    reduced, report = reduce_graph(study.graph)
    view = make_view(
        study.report.metrics, study.report.problems, "parallel_benefit"
    )
    svg = render_svg(
        reduced, OUT / "fib_parallel_benefit.svg", view=view,
        critical_nodes=set(),
        title=f"fib grain graph ({study.graph.num_grains} grains, "
              f"reduced {report.nodes_before}->{report.nodes_after} nodes)",
    )
    graphml = write_graphml(study.graph, OUT / "fib.graphml", view=view)
    print(f"\nwrote {svg} and {graphml} — open the .graphml in yEd or the "
          f".svg in a browser")


if __name__ == "__main__":
    main()
