#!/usr/bin/env python
"""Compare runtime systems on a task flood (the Fig. 1 methodology).

Runs BOTS FFT (no cutoff — a flood of tiny tasks) and the optimized
version on the GCC, ICC, and MIR flavors; prints the speedup table and
explains each system's behavior.

    python examples/compare_runtimes.py
"""

from repro.apps import fft
from repro.runtime import GCC, ICC, MIR, run_program
from repro.workflow import format_speedup_table, speedup_table


def main() -> None:
    samples = 1 << 15
    print(f"FFT, {samples} samples, 48 cores "
          f"(speedup over single-core ICC, the paper's baseline)\n")
    rows = speedup_table(
        [
            fft.program(samples=samples),
            fft.program_optimized(samples=samples, cutoff_depth=4),
        ]
    )
    print(format_speedup_table(rows))

    print("\nwhy each system behaves the way it does on the original:")
    for flavor in (GCC, ICC, MIR):
        result = run_program(
            fft.program(samples=samples), flavor=flavor, num_threads=48
        )
        print(
            f"  {flavor.name}: scheduler={flavor.scheduler:12} "
            f"tasks={result.stats.tasks_created:>6} "
            f"inlined={result.stats.tasks_inlined:>6} "
            f"steals={result.stats.steals:>5}"
        )
    print(
        "\nGCC's central queue convoys under the flood; MIR defers every\n"
        "task and pays full creation cost; ICC's queue-size internal\n"
        "cutoff executes most tasks undeferred — 'ICC performed well\n"
        "without optimizations' (Sec. 4.3.3).  After the depth cutoffs,\n"
        "grains are large enough that all three systems do well."
    )


if __name__ == "__main__":
    main()
