#!/usr/bin/env python
"""The Sec. 4.3.4 walkthrough: Freqmine's incurable imbalance and the
bin-packing resource fix.

Shows the FPGF loop's disproportionate chunks, the load balance on 48
vs 7 cores, the minimum-cores computation (the paper used a Gecode
bin-packer; we use repro.binpack), and the num_threads=7 fix.

    python examples/freqmine_binpack.py
"""

from repro.apps import freqmine
from repro.binpack import minimum_cores_for_graph
from repro.core import build_grain_graph
from repro.core.grains import GrainKind
from repro.metrics.load_balance import load_balance
from repro.runtime import MIR, run_program

FPGF2 = 3  # loop ids: scan, build, then the three FPGF instances


def main() -> None:
    print("== profile the evaluation input on 48 cores ==")
    run48 = run_program(freqmine.program(), flavor=MIR, num_threads=48)
    graph = build_grain_graph(run48.trace)
    chunks = sorted(
        (g for g in graph.grains.values()
         if g.kind is GrainKind.CHUNK and g.loop_id == FPGF2),
        key=lambda g: -g.exec_time,
    )
    print(f"graph: {graph.num_grains} grains; second FPGF instance: "
          f"{len(chunks)} chunks")
    print("largest grains (single iterations, irregularly spaced):")
    for grain in chunks[:6]:
        print(f"  iterations {grain.iter_range}: {grain.exec_time:>9} cycles")
    print(f"median chunk: {chunks[len(chunks) // 2].exec_time} cycles")

    lb48 = load_balance(graph, loop_id=FPGF2)
    print(f"\nload balance on 48 cores: {lb48.value:.1f} "
          f"(longest grain {lb48.longest_grain})")

    print("\n== chunk-size tuning cannot fix this (Sec. 4.3.4) ==")
    print("chunk size is already 1; larger chunks worsen the imbalance "
          "because the large iterations drag whole chunks with them.")

    print("\n== compute the minimum cores preserving the makespan ==")
    packing = minimum_cores_for_graph(graph, loop_id=FPGF2)
    print(f"bin packing says {packing.num_bins} cores suffice "
          f"(max core load {packing.max_load} cycles)")

    print("\n== apply num_threads=7 to the dominant instance ==")
    run7 = run_program(
        freqmine.program_seven_cores(), flavor=MIR, num_threads=48
    )
    g7 = build_grain_graph(
        run_program(freqmine.program(), flavor=MIR, num_threads=7).trace
    )
    lb7 = load_balance(g7, loop_id=FPGF2)
    print(f"execution time: 48-core {run48.makespan_cycles} vs "
          f"7-core-instance {run7.makespan_cycles} cycles "
          f"({run7.makespan_cycles / run48.makespan_cycles:.3f}x)")
    print(f"load balance on 7 cores: {lb7.value:.2f} "
          f"(paper: 35.5 -> 1.06)")
    print("\n41 cores freed for other work at the same makespan.")


if __name__ == "__main__":
    main()
