"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one mechanism and verifies the phenomenon it is
responsible for appears/disappears: scheduler policy, page placement,
internal cutoffs, parallelism-interval presets, and graph reductions.
"""

from dataclasses import replace

from conftest import once

from repro.apps import fft, micro, sort, strassen
from repro.core import build_grain_graph, reduce_graph
from repro.metrics.parallelism import IntervalPreset, instantaneous_parallelism
from repro.metrics.scatter import scatter
from repro.metrics.work_deviation import work_deviation
from repro.runtime import ICC, MIR, run_program
from helpers import binary_tree


def test_ablation_scheduler_policy(benchmark, record):
    """Work stealing vs central queue on the same program."""

    def experiment():
        program = strassen.program_fixed(matrix=1024, sc=64)
        ws = run_program(program, flavor=MIR, num_threads=48)
        cq = run_program(
            strassen.program_fixed(matrix=1024, sc=64),
            flavor=MIR.with_scheduler("central"), num_threads=48,
        )
        return ws, cq

    ws, cq = once(benchmark, experiment)
    ws_scatter = scatter(build_grain_graph(ws.trace))
    cq_scatter = scatter(build_grain_graph(cq.trace))
    ws_off = len(ws_scatter.scattered(16.0))
    cq_off = len(cq_scatter.scattered(16.0))
    record(
        "ablation_scheduler",
        [
            f"work stealing: makespan={ws.makespan_cycles} "
            f"steals={ws.stats.steals} off-socket sibling groups={ws_off}",
            f"central queue: makespan={cq.makespan_cycles} "
            f"off-socket sibling groups={cq_off}",
        ],
    )
    assert cq_off > ws_off
    assert cq.makespan_cycles > ws.makespan_cycles


def test_ablation_page_placement(benchmark, record):
    """First-touch vs round-robin is the entire Sort-table mechanism."""

    def experiment():
        out = {}
        for label, make in (("first-touch", sort.program),
                            ("round-robin", sort.program_round_robin)):
            multi = run_program(make(elements=1 << 20), flavor=MIR, num_threads=48)
            single = run_program(make(elements=1 << 20), flavor=MIR, num_threads=1)
            report = work_deviation(
                build_grain_graph(multi.trace), build_grain_graph(single.trace)
            )
            out[label] = report.median()
        return out

    medians = once(benchmark, experiment)
    record(
        "ablation_pages",
        [f"median work deviation: {label} = {value:.2f}"
         for label, value in medians.items()],
    )
    assert medians["round-robin"] < medians["first-touch"]


def test_ablation_internal_cutoff(benchmark, record):
    """ICC with vs without its internal cutoff on the FFT task flood."""

    def experiment():
        with_cutoff = run_program(
            fft.program(samples=1 << 15), flavor=ICC, num_threads=48
        )
        without = run_program(
            fft.program(samples=1 << 15),
            flavor=replace(ICC, throttle_per_thread=None, name="ICC-nocutoff"),
            num_threads=48,
        )
        return with_cutoff, without

    with_cutoff, without = once(benchmark, experiment)
    record(
        "ablation_internal_cutoff",
        [
            f"ICC with cutoff: makespan={with_cutoff.makespan_cycles} "
            f"inlined={with_cutoff.stats.tasks_inlined}",
            f"ICC without:     makespan={without.makespan_cycles} inlined=0",
        ],
    )
    assert with_cutoff.stats.tasks_inlined > 0
    assert without.stats.tasks_inlined == 0
    assert with_cutoff.makespan_cycles < without.makespan_cycles


def test_ablation_parallelism_interval(benchmark, record):
    """Interval presets trade accuracy for post-processing cost; the
    optimistic flavor upper-bounds the conservative one."""

    def experiment():
        from repro.machine import CacheConfig, CostParams, Machine, MachineConfig
        from repro.machine.topology import small_smp

        machine = Machine(MachineConfig(
            topology=small_smp(4), cache=CacheConfig(), cost=CostParams()
        ))
        result = run_program(
            binary_tree(7, leaf_cycles=3000), machine=machine, num_threads=4
        )
        return build_grain_graph(result.trace)

    graph = once(benchmark, experiment)
    lines = []
    for preset in IntervalPreset:
        optimistic = instantaneous_parallelism(graph, interval=preset)
        conservative = instantaneous_parallelism(
            graph, interval=preset, optimistic=False
        )
        lines.append(
            f"{preset.value:22} interval={optimistic.interval_cycles:>7} "
            f"mean(opt)={optimistic.mean:5.2f} "
            f"mean(cons)={conservative.mean:5.2f}"
        )
        assert optimistic.mean >= conservative.mean
        assert conservative.peak <= 4
    record("ablation_parallelism_interval", lines)


def test_ablation_reductions(benchmark, record):
    """Reductions shrink render size while conserving grain weight."""

    def experiment():
        result = run_program(
            fft.program(samples=1 << 13), flavor=MIR, num_threads=48
        )
        return build_grain_graph(result.trace)

    graph = once(benchmark, experiment)
    lines = []
    for flags in ((True, False, False), (True, True, False), (True, True, True)):
        reduced, report = reduce_graph(
            graph, fragments=flags[0], forks=flags[1], bookkeeping=flags[2]
        )
        lines.append(
            f"fragments={flags[0]} forks={flags[1]} bookkeeping={flags[2]}: "
            f"{report.nodes_before} -> {report.nodes_after} nodes "
            f"({100 * report.node_ratio:.0f}%)"
        )
    record("ablation_reductions", lines)
    reduced, report = reduce_graph(graph)
    assert report.node_ratio < 0.7
