"""Figure 8: the optimized FFT's next bottleneck — poor memory hierarchy
utilization across a majority of grains (4591-grain graph in the paper).

"Since the problem is observed despite using a work-stealing scheduler,
we can conclude that algorithmic changes and locality-aware scheduling
... are necessary"; critical-path-only optimization will not suffice
because the problem is wide-spread.
"""

from conftest import RESULTS_DIR, once

from repro.analysis import Thresholds, detect_problems, make_view
from repro.apps import fft
from repro.core import build_grain_graph, reduce_graph
from repro.core.svg import render_svg
from repro.metrics import MetricSet
from repro.metrics.memory import memory_report
from repro.runtime import MIR, run_program

PAPER_GRAINS = 4591


def test_fig08_fft_mhu(benchmark, record):
    def experiment():
        result = run_program(
            fft.program_optimized(samples=1 << 18, cutoff_depth=5),
            flavor=MIR, num_threads=48,
        )
        return result, build_grain_graph(result.trace)

    result, graph = once(benchmark, experiment)
    report = memory_report(graph)
    poor = report.poor_mhu_fraction(2.0)

    metrics = MetricSet.compute(graph)
    problems = detect_problems(metrics, Thresholds())
    cp_grains = metrics.critical_path.grain_ids(graph)
    from repro.analysis.problems import ProblemKind

    poor_set = problems.grains_with(
        ProblemKind.POOR_MEMORY_HIERARCHY_UTILIZATION
    )
    off_path_poor = len(poor_set - cp_grains)

    view = make_view(metrics, problems, "memory_hierarchy_utilization")
    reduced, _ = reduce_graph(graph)
    RESULTS_DIR.mkdir(exist_ok=True)
    render_svg(
        reduced, RESULTS_DIR / "fig08_fft_mhu.svg", view=view,
        title="optimized FFT: poor MHU highlighted (red-to-yellow)",
    )

    record(
        "fig08_fft_mhu",
        [
            f"paper: 4591-grain graph, majority with poor MHU",
            f"measured: {graph.num_grains} grains, "
            f"{100 * poor:.0f}% below MHU threshold 2",
            f"poor-MHU grains off the critical path: {off_path_poor} "
            f"(critical-path-only optimization will not suffice)",
            "artifact: fig08_fft_mhu.svg",
        ],
    )

    assert 2000 <= graph.num_grains <= 10000  # paper: 4591
    assert poor > 0.5  # a majority of grains
    assert off_path_poor > len(poor_set) / 2  # wide-spread, not CP-local
