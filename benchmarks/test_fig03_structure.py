"""Figure 3: grain-graph structure and reductions on the toy programs.

(a/c) the foo/bar/baz task program; (b/g) a 20-iteration loop in chunks
of 4 on two threads; (d/e/h) fragment, fork, and book-keeping reductions.
"""

from conftest import RESULTS_DIR, once

from repro.apps import micro
from repro.core import NodeKind, build_grain_graph, reduce_graph, validate_graph
from repro.core.svg import render_svg
from repro.runtime import MIR, run_program


def test_fig03_structure(benchmark, record):
    def experiment():
        task_run = run_program(micro.fig3a(), flavor=MIR, num_threads=2)
        loop_run = run_program(micro.fig3b(), flavor=MIR, num_threads=2)
        return build_grain_graph(task_run.trace), build_grain_graph(loop_run.trace)

    task_graph, loop_graph = once(benchmark, experiment)
    validate_graph(task_graph)
    validate_graph(loop_graph)

    task_reduced, task_report = reduce_graph(task_graph)
    loop_reduced, loop_report = reduce_graph(loop_graph)
    validate_graph(task_reduced)
    validate_graph(loop_reduced)

    RESULTS_DIR.mkdir(exist_ok=True)
    render_svg(task_graph, RESULTS_DIR / "fig03c_tasks.svg", title="Fig 3c")
    render_svg(task_reduced, RESULTS_DIR / "fig03e_reduced.svg", title="Fig 3d-e")
    render_svg(loop_graph, RESULTS_DIR / "fig03g_loop.svg", title="Fig 3g")
    render_svg(loop_reduced, RESULTS_DIR / "fig03h_reduced.svg", title="Fig 3h")

    chunk_ranges = sorted(
        n.iter_range for n in loop_graph.nodes.values()
        if n.kind is NodeKind.CHUNK
    )
    record(
        "fig03_structure",
        [
            "task program (foo creates bar, baz):",
            f"  grains={task_graph.num_grains} "
            f"fragments={task_graph.node_count(NodeKind.FRAGMENT)} "
            f"forks={task_graph.node_count(NodeKind.FORK)} "
            f"joins={task_graph.node_count(NodeKind.JOIN)}",
            f"  reduction {task_report.nodes_before} -> {task_report.nodes_after} nodes",
            "loop program (20 iters, chunk 4, 2 threads):",
            f"  chunks={chunk_ranges}",
            f"  bookkeeping={loop_graph.node_count(NodeKind.BOOKKEEPING)}",
            f"  reduction {loop_report.nodes_before} -> {loop_report.nodes_after} nodes",
            "artifacts: fig03*.svg",
        ],
    )

    # Paper structure: 5 chunks of size 4, per-thread book-keeping chains.
    assert chunk_ranges == [(0, 4), (4, 8), (8, 12), (12, 16), (16, 20)]
    assert task_graph.num_grains == 4
    # foo's two forks combine into one in the reduced graph (Fig. 3e).
    grouped_forks = [
        n for n in task_reduced.nodes.values()
        if n.kind is NodeKind.FORK and n.is_group
    ]
    assert len(grouped_forks) == 1
    # Book-keeping grouped per thread (Fig. 3h).
    assert loop_reduced.node_count(NodeKind.BOOKKEEPING) == 2
