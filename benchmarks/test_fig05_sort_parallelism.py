"""Figure 5: Sort's non-uniform parallelism and the cutoff dilemma.

(a) With the best cutoffs (815-grain graph in the paper) instantaneous
parallelism repeatedly dips below the 48 available cores in a waxing and
waning pattern — load imbalance incurable by scheduling.
(b) Lowering the cutoffs (18373 grains, 48% with low parallel benefit)
raises parallelism but the grains become too small to pay off.
"""

import numpy as np

from conftest import once

from repro.apps import sort
from repro.core import build_grain_graph
from repro.metrics import instantaneous_parallelism
from repro.metrics.parallel_benefit import low_benefit_fraction
from repro.runtime import MIR, run_program

PAPER = {"best_grains": 815, "low_grains": 18373, "low_benefit_pct": 48}


def test_fig05_sort_parallelism(benchmark, record):
    def experiment():
        best = run_program(
            sort.program(elements=1_572_864), flavor=MIR, num_threads=48
        )
        low = run_program(
            sort.program_low_cutoff(elements=1_572_864, factor=10),
            flavor=MIR, num_threads=48,
        )
        return build_grain_graph(best.trace), build_grain_graph(low.trace)

    best_graph, low_graph = once(benchmark, experiment)

    profile = instantaneous_parallelism(best_graph, optimistic=False)
    starved = profile.fraction_below(48)
    # The waxing/waning pattern: count dips below 48 over coarse windows.
    windows = np.array_split(profile.timeline, 24)
    means = [float(w.mean()) for w in windows if w.size]
    dips = sum(
        1 for prev, cur in zip(means, means[1:]) if prev >= cur + 2
    )

    low_fraction = low_benefit_fraction(low_graph)

    record(
        "fig05_sort_parallelism",
        [
            f"(a) best cutoffs: paper {PAPER['best_grains']} grains, "
            f"measured {best_graph.num_grains}",
            f"    fraction of time below 48 cores: {starved:.2f}",
            f"    parallelism over time (24 windows): "
            + " ".join(f"{m:.0f}" for m in means),
            f"    waning transitions: {dips}",
            f"(b) lowered cutoffs: paper {PAPER['low_grains']} grains with "
            f"{PAPER['low_benefit_pct']}% low parallel benefit",
            f"    measured {low_graph.num_grains} grains with "
            f"{100 * low_fraction:.0f}% low parallel benefit",
        ],
    )

    assert 400 <= best_graph.num_grains <= 1600  # paper: 815
    assert starved > 0.3  # parallelism below cores at many points
    assert dips >= 3  # waxing and waning
    assert low_graph.num_grains > 8 * best_graph.num_grains  # paper: ~23x
    assert low_fraction > 0.25  # paper: 48%
