"""Figure 1: speedups before/after optimization on GCC, ICC, and MIR.

Paper claims (Sec. 2, 4.3): every program improves on every runtime after
the grain-graph-guided optimization; for the originals, 376.kdtree and
FFT perform poorly on GCC and MIR while ICC is rescued by its internal
cutoff; Strassen and Sort are poor on all three.
"""

from conftest import once

from repro.apps import fft, kdtree, sort, sparselu, strassen
from repro.workflow import format_speedup_table, speedup_table

PAIRS = [
    ("376.kdtree", lambda: kdtree.program(tree_size=4000),
     lambda: kdtree.program_fixed(tree_size=4000)),
    ("sort", lambda: sort.program(elements=1 << 20),
     lambda: sort.program_round_robin(elements=1 << 20)),
    ("359.botsspar", lambda: sparselu.program(nb=20, block=64),
     lambda: sparselu.program_interchanged(nb=20, block=64)),
    ("fft", lambda: fft.program(samples=1 << 16),
     lambda: fft.program_optimized(samples=1 << 16, cutoff_depth=4)),
    ("strassen", lambda: strassen.program(matrix=1024, sc=64),
     lambda: strassen.program_fixed(matrix=1024, sc=64)),
]


def test_fig01_speedups(benchmark, record):
    def experiment():
        table = {}
        for name, make_orig, make_opt in PAIRS:
            table[name] = {
                "orig": speedup_table([make_orig()]),
                "opt": speedup_table([make_opt()]),
            }
        return table

    table = once(benchmark, experiment)

    lines = ["speedup over single-core ICC execution, 48 cores", ""]
    for name, variants in table.items():
        for variant, rows in variants.items():
            lines.append(format_speedup_table(rows))
            lines.append("")
        orig = {r.flavor: r.speedup for r in variants["orig"]}
        opt = {r.flavor: r.speedup for r in variants["opt"]}
        lines.append(
            f"{name}: improvement factors "
            + "  ".join(
                f"{fl}={opt[fl] / orig[fl]:.1f}x" for fl in ("GCC", "ICC", "MIR")
            )
        )
        lines.append("")

        # Shape assertions: optimization helps on every runtime system.
        for flavor in ("GCC", "ICC", "MIR"):
            assert opt[flavor] > orig[flavor], (name, flavor)

    # Task-flood originals: ICC's internal cutoff beats GCC and MIR.
    kdtree_orig = {r.flavor: r.speedup for r in table["376.kdtree"]["orig"]}
    assert kdtree_orig["ICC"] > kdtree_orig["GCC"]
    fft_orig = {r.flavor: r.speedup for r in table["fft"]["orig"]}
    assert fft_orig["ICC"] > fft_orig["GCC"]
    assert fft_orig["ICC"] > fft_orig["MIR"]
    # Sort scales poorly on all runtime systems (Sec. 4.3.1).
    sort_orig = {r.flavor: r.speedup for r in table["sort"]["orig"]}
    assert all(v < 10 for v in sort_orig.values())

    record("fig01_speedups", lines)
