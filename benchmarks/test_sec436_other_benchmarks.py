"""Sec. 4.3.6: the other-benchmarks round-up.

Paper claims, per program:
- Blackscholes: >65% of chunks with poor MHU, ~33% low benefit.
- 367.imagick: the five loops missing omp_throttle have poor benefit.
- 372.smithwa: mergeAlignment/verifyData blocks imbalanced with poor MHU
  and benefit (verifyData invisible to timings, visible to the graph).
- NQueens, 358.botsalgn: scale linearly, all metrics good.
- Fibonacci: cutoffs control leaf-grain size (teaching example).
- UTS: poor parallel benefit for most grains.
- Bodytrack: all loops except CalcWeights suffer poor benefit/low MHU.
"""

from conftest import once

from repro.apps import others
from repro.core import build_grain_graph
from repro.metrics.memory import memory_report
from repro.metrics.parallel_benefit import low_benefit_fraction
from repro.metrics.summary import per_definition_summary
from repro.runtime import MIR, run_program


def study(program, threads=48):
    result = run_program(program, flavor=MIR, num_threads=threads)
    single = run_program(program, flavor=MIR, num_threads=1)
    graph = build_grain_graph(result.trace)
    return {
        "speedup": single.makespan_cycles / result.makespan_cycles,
        "graph": graph,
        "low_pb": low_benefit_fraction(graph),
        "poor_mhu": memory_report(graph).poor_mhu_fraction(2.0),
    }


def test_sec436_other_benchmarks(benchmark, record):
    def experiment():
        return {
            "blackscholes": study(others.blackscholes(options=20_000)),
            "imagick": study(others.imagick(rows=480)),
            "smithwa": study(others.smithwa(size=20)),
            "nqueens": study(others.nqueens(n=10, cutoff=2)),
            "botsalgn": study(others.botsalgn(sequences=192)),
            "fib": study(others.fib(n=26, cutoff=10)),
            "uts": study(others.uts(expected_nodes=3000)),
            "bodytrack": study(others.bodytrack()),
        }

    results = once(benchmark, experiment)

    lines = [
        f"{'program':14} {'speedup':>8} {'lowPB%':>7} {'poorMHU%':>9} "
        f"{'grains':>7}"
    ]
    for name, r in results.items():
        lines.append(
            f"{name:14} {r['speedup']:>8.1f} {100 * r['low_pb']:>6.0f}% "
            f"{100 * r['poor_mhu']:>8.0f}% {r['graph'].num_grains:>7}"
        )

    # Blackscholes: poor MHU on most chunks.
    assert results["blackscholes"]["poor_mhu"] > 0.5
    # Imagick: unthrottled loops show low benefit, throttled do not.
    rows = {
        r.definition: r
        for r in per_definition_summary(results["imagick"]["graph"])
    }
    assert rows["magick_shear.c:1694(XShearImage)"].low_benefit_fraction > 0.5
    assert rows["magick_resize.c:2215(HorizontalFilter)"].low_benefit_fraction < 0.2
    # Smithwa: the whole-program graph shows verifyData's imbalance.
    sw_rows = {
        r.definition: r
        for r in per_definition_summary(results["smithwa"]["graph"])
    }
    assert any("verifyData" in d for d in sw_rows)
    # NQueens / botsalgn: good scaling, clean metrics.
    assert results["nqueens"]["speedup"] > 8
    assert results["nqueens"]["low_pb"] < 0.3
    assert results["botsalgn"]["speedup"] > 20
    assert results["botsalgn"]["low_pb"] < 0.1
    # UTS: poor benefit for most grains.
    assert results["uts"]["low_pb"] > 0.5
    # Bodytrack: CalcWeights is the exception.
    bt_rows = {
        r.definition: r
        for r in per_definition_summary(results["bodytrack"]["graph"])
    }
    weights = bt_rows["ParticleFilterOMP.h:64(ParticleFilterOMP::CalcWeights)"]
    filters = bt_rows["FlexImageFilter.h:114(FlexFilterRowVOMP)"]
    assert weights.low_benefit_fraction < filters.low_benefit_fraction

    record("sec436_other_benchmarks", lines)
