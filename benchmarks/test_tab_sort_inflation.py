"""The Sec. 4.3.1 Sort table: affected grains before/after round-robin
page distribution.

Paper:  work inflation 68.54% -> 37.08%; poor MHU 56.05% -> 30.11%, and
"performance improved on all runtime systems".
"""

from conftest import once

from repro.apps import sort
from repro.core import build_grain_graph
from repro.metrics.memory import memory_report
from repro.metrics.work_deviation import work_deviation
from repro.runtime import GCC, ICC, MIR, run_program

PAPER = {
    "inflation_before": 68.54, "inflation_after": 37.08,
    "mhu_before": 56.05, "mhu_after": 30.11,
}


def measure(make):
    multi = run_program(make(elements=1 << 21), flavor=MIR, num_threads=48)
    single = run_program(make(elements=1 << 21), flavor=MIR, num_threads=1)
    g_multi = build_grain_graph(multi.trace)
    g_single = build_grain_graph(single.trace)
    deviation = work_deviation(g_multi, g_single)
    memory = memory_report(g_multi)
    return (
        100 * deviation.inflated_fraction(2.0),
        100 * memory.poor_mhu_fraction(2.0),
        multi.makespan_cycles,
    )


def test_tab_sort_inflation(benchmark, record):
    def experiment():
        return measure(sort.program), measure(sort.program_round_robin)

    (infl_before, mhu_before, span_before), (
        infl_after, mhu_after, span_after,
    ) = once(benchmark, experiment)

    # All-runtime improvement check.
    improvements = []
    for flavor in (GCC, ICC, MIR):
        ft = run_program(sort.program(elements=1 << 20), flavor=flavor,
                         num_threads=48)
        rr = run_program(sort.program_round_robin(elements=1 << 20),
                         flavor=flavor, num_threads=48)
        improvements.append((flavor.name, ft.makespan_cycles / rr.makespan_cycles))

    record(
        "tab_sort_inflation",
        [
            f"{'problem':36} {'paper before':>12} {'paper after':>12} "
            f"{'ours before':>12} {'ours after':>11}",
            f"{'Work Inflation':36} {PAPER['inflation_before']:>11.2f}% "
            f"{PAPER['inflation_after']:>11.2f}% {infl_before:>11.1f}% "
            f"{infl_after:>10.1f}%",
            f"{'Poor Memory Hierarchy Utilization':36} "
            f"{PAPER['mhu_before']:>11.2f}% {PAPER['mhu_after']:>11.2f}% "
            f"{mhu_before:>11.1f}% {mhu_after:>10.1f}%",
            "",
            "round-robin improvement per runtime system: "
            + "  ".join(f"{name}={x:.2f}x" for name, x in improvements),
        ],
    )

    # Shapes: round-robin reduces both problems and helps all runtimes.
    assert infl_after < infl_before
    assert mhu_after <= mhu_before + 1.0
    assert infl_before > 10  # the problem is wide-spread before the fix
    assert span_after < span_before
    assert all(x > 1.0 for _, x in improvements)
