"""Figure 4: what existing visualizations show for Sort — load imbalance
with "no actionable information", versus the grain graph's diagnosis.

The thread-timeline view (VTune-style) sees uneven per-core busy time and
runtime-system time; it cannot link the imbalance to culprit grains.  The
grain graph for the same trace names the longest grain and the parallelism
starvation directly.
"""

from conftest import once

from repro.apps import sort
from repro.core import build_grain_graph
from repro.analysis.timeline import thread_timeline
from repro.metrics import MetricSet
from repro.runtime import MIR, run_program


def test_fig04_timeline_contrast(benchmark, record):
    def experiment():
        result = run_program(
            sort.program(elements=1 << 20), flavor=MIR, num_threads=48
        )
        return result

    result = once(benchmark, experiment)
    timeline = thread_timeline(result.trace)
    graph = build_grain_graph(result.trace)
    metrics = MetricSet.compute(graph)

    busy = sorted(timeline.busy_fraction(c) for c in range(48))
    record(
        "fig04_timeline_contrast",
        [
            "existing-tools view (thread timeline):",
            f"  busy-time imbalance (max/mean): {timeline.imbalance():.2f}",
            f"  busy fraction range: {busy[0]:.2f} .. {busy[-1]:.2f}",
            "  -> shows cores performing uneven work; nothing links the",
            "     imbalance to the culprit tasks",
            "grain-graph view of the same run:",
            f"  longest grain: {metrics.load_balance.longest_grain} "
            f"({metrics.load_balance.longest_grain_cycles} cycles)",
            f"  load balance: {metrics.load_balance.value:.2f}",
            f"  mean instantaneous parallelism: {metrics.parallelism.mean:.1f} "
            f"of 48 cores",
        ],
    )

    # The timeline can only say "imbalanced"; the graph names the grain.
    assert timeline.imbalance() > 1.05
    assert metrics.load_balance.longest_grain.startswith("t:")
    assert metrics.parallelism.mean < 48
