"""Shared infrastructure for the experiment-regeneration benchmarks.

Each ``test_*`` module regenerates one table or figure from the paper
(see DESIGN.md's experiment index): it runs the workload, prints a
paper-vs-measured comparison, asserts the *shape* (who wins, rough
factors, crossovers), and writes the rendered rows to
``benchmarks/results/``.  Absolute numbers are not expected to match the
authors' 48-core AMD testbed; shapes are.

Run with ``pytest benchmarks/ --benchmark-only``.

The session installs a default :class:`repro.exec.RunCache` under
``benchmarks/.exec-cache`` (override with ``GRAIN_CACHE_DIR``), so every
``profile_program``/``speedup_table`` call in the experiment modules is
cached and deduplicated: regenerating figures against unchanged code is
a warm-cache rerun with zero engine invocations.  Cache keys embed the
``src/repro`` source fingerprint, so editing the simulator invalidates
the cache automatically.
"""

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

from repro.exec import RunCache, set_default_cache  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def exec_cache():
    """Session-wide artifact cache shared by every experiment module."""
    root = os.environ.get(
        "GRAIN_CACHE_DIR", str(Path(__file__).parent / ".exec-cache")
    )
    cache = RunCache(root)
    previous = set_default_cache(cache)
    try:
        yield cache
    finally:
        set_default_cache(previous)
        print(f"\n[repro.exec] cache {cache.root}: {cache.stats.format()}")


@pytest.fixture
def record():
    """Write a named experiment report and echo it to stdout."""

    def _record(name: str, lines):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(lines)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===")
        print(text)

    return _record


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
