"""Figure 11: Strassen's hard-coded cutoff and scheduler scatter.

(a) With the hard-coded cutoff the graph has 58 grains regardless of SC.
(b) Fixed: 2801 grains for the 2048 input with SC=128; poor MHU surfaces.
(c/d) Work stealing keeps sibling grains near each other; a central
queue scatters them off-socket and costs performance (paper: 48-core
speedup drops to 10 from ~20).
"""

from conftest import once

from repro.analysis.problems import ProblemKind, detect_problems
from repro.apps import strassen
from repro.core import build_grain_graph
from repro.metrics import MetricSet
from repro.metrics.memory import memory_report
from repro.metrics.scatter import scatter
from repro.runtime import MIR, run_program

PAPER = {"orig_grains": 58, "fixed_grains": 2801}


def scattered_fraction(graph):
    result = scatter(graph)
    threshold = 16.0  # same-socket distance: beyond = off-socket
    return len(result.scattered(threshold)) / max(1, len(result.per_grain))


def test_fig11_strassen(benchmark, record):
    def experiment():
        orig = run_program(
            strassen.program(matrix=2048, sc=128), flavor=MIR, num_threads=48
        )
        fixed = run_program(
            strassen.program_fixed(matrix=2048, sc=128),
            flavor=MIR, num_threads=48,
        )
        # Scheduler ablation at a scale where the leaves' working sets
        # still fit the LLCs — the regime where sibling locality (and so
        # scatter) matters, as on the paper's testbed.
        ws_small = run_program(
            strassen.program_fixed(matrix=1024, sc=64),
            flavor=MIR, num_threads=48,
        )
        central = run_program(
            strassen.program_fixed(matrix=1024, sc=64),
            flavor=MIR.with_scheduler("central"), num_threads=48,
        )
        return orig, fixed, ws_small, central

    orig, fixed, ws_small, central = once(benchmark, experiment)
    orig_graph = build_grain_graph(orig.trace)
    fixed_graph = build_grain_graph(fixed.trace)
    ws_graph = build_grain_graph(ws_small.trace)
    central_graph = build_grain_graph(central.trace)

    # SC invariance of the buggy original.
    other_sc = run_program(
        strassen.program(matrix=2048, sc=32), flavor=MIR, num_threads=48
    )
    sc_invariant = other_sc.stats.tasks_created == orig.stats.tasks_created

    mhu = memory_report(fixed_graph).poor_mhu_fraction(2.0)
    ws_scatter = scattered_fraction(ws_graph)
    cq_scatter = scattered_fraction(central_graph)

    record(
        "fig11_strassen",
        [
            f"(a) original: paper {PAPER['orig_grains']} grains, measured "
            f"{orig_graph.num_grains}; SC has no effect: {sc_invariant}",
            f"(b) fixed: paper {PAPER['fixed_grains']} grains, measured "
            f"{fixed_graph.num_grains}; poor-MHU grains {100 * mhu:.0f}%",
            f"    makespan orig -> fixed: {orig.makespan_cycles} -> "
            f"{fixed.makespan_cycles} "
            f"({orig.makespan_cycles / fixed.makespan_cycles:.2f}x)",
            f"(c) work stealing: {100 * ws_scatter:.0f}% grains scattered "
            f"off-socket",
            f"(d) central queue: {100 * cq_scatter:.0f}% grains scattered; "
            f"makespan {central.makespan_cycles} "
            f"({central.makespan_cycles / ws_small.makespan_cycles:.2f}x of WS)",
        ],
    )

    assert orig_graph.num_grains == PAPER["orig_grains"]  # exact
    assert abs(fixed_graph.num_grains - PAPER["fixed_grains"]) <= 2
    assert sc_invariant
    assert fixed.makespan_cycles < orig.makespan_cycles
    assert mhu > 0.4  # poor MHU comes to the fore
    assert cq_scatter > ws_scatter  # central queue scatters siblings
    assert central.makespan_cycles > ws_small.makespan_cycles
