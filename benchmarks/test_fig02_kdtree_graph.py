"""Figure 2: the 376.kdtree grain graph for the small input.

Paper: tree size 200, radius 10, cutoff 2 yields a 740-grain graph whose
deep recursion immediately reveals that the cutoff has no effect (the
depth is never incremented).  Our substitute k-d tree yields the same
order of magnitude (~400 grains, one per node plus one per point).
"""

from pathlib import Path

from conftest import RESULTS_DIR, once

from repro.apps import kdtree
from repro.core import build_grain_graph, reduce_graph, validate_graph
from repro.core.graphml import write_graphml
from repro.core.svg import render_svg
from repro.runtime import MIR, run_program

PAPER_GRAINS = 740
PAPER_CUTOFF = 2


def test_fig02_kdtree_small_input_graph(benchmark, record):
    def experiment():
        result = run_program(
            kdtree.program(tree_size=200, radius=10.0, cutoff=PAPER_CUTOFF),
            flavor=MIR,
            num_threads=48,
        )
        return result, build_grain_graph(result.trace)

    result, graph = once(benchmark, experiment)
    validate_graph(graph)
    max_depth = max(g.depth for g in graph.grains.values())

    # Invariance check: the cutoff really has no effect.
    other = run_program(
        kdtree.program(tree_size=200, radius=10.0, cutoff=20),
        flavor=MIR, num_threads=48,
    )
    same_tasks = other.stats.tasks_created == result.stats.tasks_created

    # Artifacts: the figure itself.
    RESULTS_DIR.mkdir(exist_ok=True)
    write_graphml(graph, RESULTS_DIR / "fig02_kdtree.graphml")
    reduced, report = reduce_graph(graph)
    render_svg(
        reduced, RESULTS_DIR / "fig02_kdtree.svg",
        title="376.kdtree small input (reduced grain graph)",
    )

    record(
        "fig02_kdtree_graph",
        [
            f"paper: {PAPER_GRAINS} grains, recursion far beyond cutoff {PAPER_CUTOFF}",
            f"measured: {graph.num_grains} grains, max task depth {max_depth}",
            f"cutoff invariance (2 vs 20 identical task count): {same_tasks}",
            f"reduction: {report.nodes_before} -> {report.nodes_after} nodes",
            "artifacts: fig02_kdtree.graphml, fig02_kdtree.svg",
        ],
    )

    assert 300 <= graph.num_grains <= 1200  # paper: 740
    assert max_depth > PAPER_CUTOFF + 2  # runaway recursion visible
    assert same_tasks  # the cutoff has no effect
