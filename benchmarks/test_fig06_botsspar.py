"""Figure 6: 359.botsspar — interleaved phases and work inflation.

(a) Two distinct interleaved phases (fwd/bdiv and bmod) exposing
gradually decreasing parallelism (shown with the small (5,5) input).
(b) The evaluation input's graph has 19811 grains.
(c) Lowering the work-deviation threshold from 2 to 1.2 exposes
wide-spread inflation; sorting definitions pin-points bmod.
(d) Loop interchange in bmod reduces inflation and improves performance.
"""

from conftest import once

from repro.apps import sparselu
from repro.core import build_grain_graph
from repro.metrics.summary import per_definition_summary
from repro.metrics.work_deviation import work_deviation
from repro.runtime import MIR, run_program

PAPER_EVAL_GRAINS = 19811


def inflation(make, nb):
    multi = run_program(make(nb=nb, block=64), flavor=MIR, num_threads=48)
    single = run_program(make(nb=nb, block=64), flavor=MIR, num_threads=1)
    g = build_grain_graph(multi.trace)
    report = work_deviation(g, build_grain_graph(single.trace))
    return g, report, multi.makespan_cycles


def test_fig06_botsspar(benchmark, record):
    def experiment():
        small = run_program(
            sparselu.program(nb=5, block=64), flavor=MIR, num_threads=48
        )
        orig_graph, orig_report, orig_span = inflation(sparselu.program, 24)
        fixed_graph, fixed_report, fixed_span = inflation(
            sparselu.program_interchanged, 24
        )
        eval_graph = build_grain_graph(
            run_program(
                sparselu.program(nb=40, block=64), flavor=MIR, num_threads=48
            ).trace
        )
        return (
            build_grain_graph(small.trace),
            orig_graph, orig_report, orig_span,
            fixed_report, fixed_span,
            eval_graph,
        )

    (small_graph, orig_graph, orig_report, orig_span,
     fixed_report, fixed_span, eval_graph) = once(benchmark, experiment)

    definitions = {g.definition for g in small_graph.grains.values()}
    rows = per_definition_summary(
        orig_graph, deviation=orig_report.deviation, deviation_threshold=1.2
    )
    by_count = max(
        (r for r in rows if r.definition != "<root>"), key=lambda r: r.count
    )

    at_2 = 100 * orig_report.inflated_fraction(2.0)
    at_12 = 100 * orig_report.inflated_fraction(1.2)
    fixed_12 = 100 * fixed_report.inflated_fraction(1.2)

    record(
        "fig06_botsspar",
        [
            f"(a) small (5,5) input phases: definitions {sorted(definitions)}",
            f"(b) evaluation graph: paper {PAPER_EVAL_GRAINS} grains, "
            f"measured {eval_graph.num_grains} (nb=40)",
            f"(c) inflated grains at threshold 2.0: {at_2:.1f}%; "
            f"at 1.2: {at_12:.1f}% (threshold refinement exposes more)",
            f"    most frequent task definition: {by_count.definition} "
            f"({by_count.count} instances, {by_count.inflated_count} inflated)",
            f"(d) after loop interchange: inflated at 1.2 = {fixed_12:.1f}%, "
            f"makespan {orig_span} -> {fixed_span} "
            f"({orig_span / fixed_span:.2f}x)",
        ],
    )

    assert {"sparselu.c:229(fwd)", "sparselu.c:235(bdiv)",
            "sparselu.c:246(bmod)"} <= definitions
    assert 14000 <= eval_graph.num_grains <= 26000  # paper: 19811
    assert at_12 >= at_2  # lowering the threshold exposes more
    assert "bmod" in by_count.definition  # the culprit pin-pointed
    assert fixed_12 < at_12  # interchange reduces inflation
    assert fixed_span < orig_span
