"""Figures 9-10 and Table 1: Freqmine's FPGF loop.

Fig. 9: the evaluation graph has 6985 grains; the large magenta FPGF
grains give load balance 35.5; most grains are small with poor benefit.
Fig. 10: the second FPGF instance has 1292 chunks of disproportionate
size; load balance 35.5 on 48 cores improves to 1.06 on 7.
Table 1: speedups 6.58-7.2; 48-core and 7-core execution times within a
few percent; the bin-packer says 7 cores suffice.
"""

from conftest import once

from repro.apps import freqmine
from repro.binpack import minimum_cores_for_graph
from repro.core import build_grain_graph
from repro.core.grains import GrainKind
from repro.metrics.load_balance import load_balance
from repro.metrics.parallel_benefit import low_benefit_fraction
from repro.runtime import GCC, ICC, MIR, run_program

FPGF2 = 3  # loop ids: scan=0, build=1, FPGF instances 2/3/4
PAPER = {
    "grains": 6985, "chunks": 1292, "lb48": 35.5, "lb7": 1.06,
    "speedups": {"ICC": 6.58, "GCC": 6.68, "MIR": 7.2},
    "min_cores": 7,
}


def test_fig09_fig10_tab1_freqmine(benchmark, record):
    def experiment():
        table = {}
        for flavor in (ICC, GCC, MIR):
            full = run_program(freqmine.program(), flavor=flavor, num_threads=48)
            single = run_program(freqmine.program(), flavor=flavor, num_threads=1)
            seven = run_program(
                freqmine.program_seven_cores(), flavor=flavor, num_threads=48
            )
            table[flavor.name] = (full, single, seven)
        return table

    table = once(benchmark, experiment)
    mir_run = table["MIR"][0]
    graph = build_grain_graph(mir_run.trace)
    chunks2 = [
        g for g in graph.grains.values()
        if g.kind is GrainKind.CHUNK and g.loop_id == FPGF2
    ]
    lb48 = load_balance(graph, loop_id=FPGF2)
    g7 = build_grain_graph(
        run_program(freqmine.program(), flavor=MIR, num_threads=7).trace
    )
    lb7 = load_balance(g7, loop_id=FPGF2)
    packing = minimum_cores_for_graph(graph, loop_id=FPGF2)
    low_pb = low_benefit_fraction(graph)

    lines = [
        f"Fig 9: paper {PAPER['grains']} grains; measured {graph.num_grains}",
        f"       low-parallel-benefit grains: {100 * low_pb:.0f}%",
        f"Fig 10: paper {PAPER['chunks']} chunks; measured {len(chunks2)}",
        f"        LB@48: paper {PAPER['lb48']}, measured {lb48.value:.1f}",
        f"        LB@7:  paper {PAPER['lb7']}, measured {lb7.value:.2f}",
        f"bin-packing minimum cores: paper {PAPER['min_cores']}, "
        f"measured {packing.num_bins}",
        "",
        f"{'RTS':5} {'paper speedup':>13} {'ours':>6} {'7-core/48-core time':>20}",
    ]
    for name, (full, single, seven) in table.items():
        speedup = single.makespan_cycles / full.makespan_cycles
        ratio = seven.makespan_cycles / full.makespan_cycles
        lines.append(
            f"{name:5} {PAPER['speedups'][name]:>13.2f} {speedup:>6.2f} "
            f"{ratio:>19.3f}"
        )
        # Table 1 shapes: ~7x ceiling; 7 cores keep the makespan.
        assert 5.0 < speedup < 11.0
        assert ratio < 1.12
    record("fig09_fig10_tab1_freqmine", lines)

    assert graph.num_grains == PAPER["grains"]  # exact by construction
    assert len(chunks2) == PAPER["chunks"]
    assert 25 < lb48.value < 50  # paper: 35.5
    assert lb7.value < 1.3  # paper: 1.06
    assert packing.num_bins == PAPER["min_cores"]
    assert low_pb > 0.4  # most grains small, poor benefit
