"""Figure 7: FFT parallel benefit grouped by source definition.

Paper: in the original, grains of ``fft.c:4680`` (fft_aux) have a high
prevalence of poor parallel benefit and contribute most heavily to total
work; after the cutoffs, grains show good parallel benefit and "not all
grains are created in the optimized program due to cutoffs".
"""

from conftest import once

from repro.apps import fft
from repro.core import build_grain_graph
from repro.metrics.summary import format_definition_table, per_definition_summary
from repro.runtime import MIR, run_program


def test_fig07_fft_benefit_by_definition(benchmark, record):
    def experiment():
        orig = run_program(
            fft.program(samples=1 << 16), flavor=MIR, num_threads=48
        )
        opt = run_program(
            fft.program_optimized(samples=1 << 16, cutoff_depth=4),
            flavor=MIR, num_threads=48,
        )
        return build_grain_graph(orig.trace), build_grain_graph(opt.trace)

    orig_graph, opt_graph = once(benchmark, experiment)
    orig_rows = per_definition_summary(orig_graph)
    opt_rows = per_definition_summary(opt_graph)

    record(
        "fig07_fft_benefit",
        [
            "original:",
            format_definition_table(orig_rows),
            "",
            "optimized (two depth cutoffs):",
            format_definition_table(opt_rows),
        ],
    )

    orig_by_def = {r.definition: r for r in orig_rows}
    opt_by_def = {r.definition: r for r in opt_rows}
    aux = "fft.c:4680(fft_aux)"

    # fft_aux is the first optimization candidate: heavy work share with
    # prevalent low benefit in the original.
    assert orig_by_def[aux].work_share > 0.3
    assert orig_by_def[aux].low_benefit_fraction > 0.3
    # The optimized program's grains show good parallel benefit.
    total_low_orig = sum(r.low_benefit_count for r in orig_rows)
    total_low_opt = sum(r.low_benefit_count for r in opt_rows)
    assert total_low_opt < total_low_orig / 4
    # Not all grains are created in the optimized program.
    assert opt_graph.num_grains < orig_graph.num_grains / 4
