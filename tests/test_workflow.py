"""Tests for the high-level workflow pipeline."""


from helpers import binary_tree

from repro.apps import micro
from repro.machine import CacheConfig, CostParams, MachineConfig
from repro.machine.topology import small_smp
from repro.runtime.flavors import GCC, ICC, MIR
from repro.workflow import (
    format_speedup_table,
    profile_program,
    speedup_table,
)

SMALL = MachineConfig(topology=small_smp(4), cache=CacheConfig(), cost=CostParams())


class TestProfileProgram:
    def test_full_study(self):
        study = profile_program(
            binary_tree(4, leaf_cycles=1000),
            num_threads=4,
            machine_config=SMALL,
        )
        assert study.makespan_cycles > 0
        assert study.graph.num_grains == 32
        assert study.report.problems is not None
        assert study.reference is not None
        assert study.speedup > 1.0
        assert study.timeline.num_cores == 4

    def test_reference_enables_deviation(self):
        study = profile_program(
            binary_tree(3), num_threads=4, machine_config=SMALL
        )
        assert study.report.metrics.deviation is not None

    def test_skip_reference(self):
        study = profile_program(
            binary_tree(3),
            num_threads=4,
            machine_config=SMALL,
            reference_threads=None,
        )
        assert study.reference is None
        assert study.speedup == 1.0

    def test_loop_program_study(self):
        study = profile_program(
            micro.fig3b(), num_threads=2, machine_config=SMALL
        )
        assert study.graph.num_grains == 6  # 5 chunks + root

    def test_lint_report_attached_on_request(self):
        study = profile_program(
            micro.racy(), num_threads=2, machine_config=SMALL, lint=True
        )
        assert study.lint_report is not None
        assert study.lint_report.by_rule("race.conflict")
        clean = profile_program(
            micro.fig3a(), num_threads=2, machine_config=SMALL, lint=True
        )
        assert clean.lint_report.diagnostics == []

    def test_lint_off_by_default(self):
        study = profile_program(
            micro.fig3a(), num_threads=2, machine_config=SMALL
        )
        assert study.lint_report is None

    def test_graph_validated_by_default(self):
        # validate=True is exercised by every call above; smoke the flag.
        study = profile_program(
            micro.fig3a(), num_threads=2, machine_config=SMALL, validate=False
        )
        assert study.graph.num_grains == 4


class TestSpeedupTable:
    def test_rows_per_program_and_flavor(self):
        rows = speedup_table(
            [binary_tree(4, leaf_cycles=5000)],
            flavors=(MIR, GCC),
            num_threads=4,
            machine_config=SMALL,
        )
        assert len(rows) == 2
        assert {r.flavor for r in rows} == {"MIR", "GCC"}
        assert all(r.speedup > 0 for r in rows)

    def test_baseline_is_shared_across_flavors(self):
        rows = speedup_table(
            [binary_tree(4, leaf_cycles=5000)],
            flavors=(MIR, GCC, ICC),
            num_threads=4,
            machine_config=SMALL,
        )
        baselines = {r.single_core_cycles for r in rows}
        assert len(baselines) == 1  # one ICC single-core baseline

    def test_formatting(self):
        rows = speedup_table(
            [binary_tree(3)], flavors=(MIR,), num_threads=2,
            machine_config=SMALL,
        )
        text = format_speedup_table(rows)
        assert "binary_tree" in text
        assert "MIR" in text
