"""Profiler overhead: the paper's MIR profiler claims < 2.5% (Sec. 4.2)."""

from helpers import binary_tree, small_machine

from repro.profiler.recorder import ProfilerConfig, Recorder
from repro.runtime.api import run_program


class TestRecorder:
    def test_disabled_recorder_drops_events(self):
        recorder = Recorder(ProfilerConfig(enabled=False))
        assert recorder.emit(object()) == 0
        assert len(recorder.trace) == 0

    def test_overhead_returned_per_event(self):
        recorder = Recorder(ProfilerConfig(overhead_cycles_per_event=20))
        from repro.profiler.events import TaskCompleteEvent

        assert recorder.emit(TaskCompleteEvent(tid=0, time=0, core=0)) == 20
        assert recorder.events_recorded == 1


class TestOverheadClaim:
    def test_profiling_overhead_below_2_5_percent(self):
        """With a realistic per-event cost (~25 cycles: one counter read
        plus a buffer append), the makespan penalty stays under the
        paper's 2.5% bound."""
        program = binary_tree(depth=6, leaf_cycles=4000)
        free = run_program(
            program,
            machine=small_machine(4),
            num_threads=4,
            profiler=ProfilerConfig(overhead_cycles_per_event=0),
        )
        paid = run_program(
            program,
            machine=small_machine(4),
            num_threads=4,
            profiler=ProfilerConfig(overhead_cycles_per_event=25),
        )
        overhead = paid.makespan_cycles / free.makespan_cycles - 1.0
        assert 0.0 <= overhead < 0.025

    def test_zero_overhead_config_is_cycle_neutral(self):
        program = binary_tree(depth=4)
        a = run_program(program, machine=small_machine(2), num_threads=2)
        b = run_program(
            program,
            machine=small_machine(2),
            num_threads=2,
            profiler=ProfilerConfig(overhead_cycles_per_event=0),
        )
        assert a.makespan_cycles == b.makespan_cycles
