"""Property tests for the columnar event store.

Hypothesis drives :class:`~repro.profiler.columnar.ColumnarEvents`
through randomized event sequences — with a tiny ``slab_rows`` so every
run exercises tail-list growth, slab spills, *and* the mixed
slab-plus-tail read path — and asserts the store is a faithful codec:

* ``append_event`` then ``to_events`` reproduces the input exactly;
* column dtypes are stable before and after spills;
* a columnar-backed :class:`~repro.profiler.trace.Trace` serializes to
  the same JSONL as a row-backed one, and ``loads_jsonl`` inverts
  ``dumps_jsonl`` byte-for-byte.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.counters import CounterSet
from repro.profiler.columnar import KIND_DTYPES, ColumnarEvents
from repro.profiler.events import (
    BookkeepingEvent,
    ChunkEvent,
    FragmentEvent,
    LoopBeginEvent,
    LoopEndEvent,
    TaskCompleteEvent,
    TaskCreateEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
)
from repro.profiler.trace import Trace

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
ids = st.integers(min_value=0, max_value=2**31 - 1)
times = st.integers(min_value=0, max_value=2**47)
small = st.integers(min_value=0, max_value=255)
names = st.text(string.ascii_lowercase + "_.:/<>0123456789", max_size=12)
paths = st.lists(small, max_size=4).map(tuple)


@st.composite
def counter_sets(draw):
    vals = draw(st.lists(small, min_size=7, max_size=7))
    return CounterSet.from_values(*vals)


footprints = st.lists(
    st.tuples(names, times, times), max_size=3
).map(tuple)


task_creates = st.builds(
    TaskCreateEvent,
    tid=ids,
    path=paths,
    parent_tid=st.none() | ids,
    time=times,
    core=small,
    creation_cycles=times,
    depth=small,
    loc=names,
    definition=names,
    label=names,
    inlined=st.booleans(),
)
fragments = st.builds(
    FragmentEvent,
    tid=ids,
    seq=small,
    start=times,
    end=times,
    core=small,
    counters=counter_sets(),
    reads=footprints,
    writes=footprints,
)
taskwait_begins = st.builds(
    TaskwaitBeginEvent, tid=ids, time=times, core=small, implicit=st.booleans()
)
taskwait_ends = st.builds(
    TaskwaitEndEvent,
    tid=ids,
    time=times,
    core=small,
    synced_tids=st.lists(ids, max_size=4).map(tuple),
)
task_completes = st.builds(TaskCompleteEvent, tid=ids, time=times, core=small)
loop_begins = st.builds(
    LoopBeginEvent,
    loop_id=ids,
    loop_seq=small,
    starting_thread=small,
    time=times,
    iterations=times,
    schedule=st.sampled_from(["static", "dynamic", "guided"]),
    chunk_size=st.none() | st.integers(min_value=1, max_value=10_000),
    team=small,
    loc=names,
    definition=names,
    label=names,
)
bookkeepings = st.builds(
    BookkeepingEvent,
    loop_id=ids,
    thread=small,
    core=small,
    start=times,
    end=times,
    got_chunk=st.booleans(),
)
chunks = st.builds(
    ChunkEvent,
    loop_id=ids,
    chunk_seq=small,
    thread=small,
    iter_start=times,
    iter_end=times,
    start=times,
    end=times,
    core=small,
    counters=counter_sets(),
    reads=footprints,
    writes=footprints,
)
loop_ends = st.builds(LoopEndEvent, loop_id=ids, time=times)

events = st.one_of(
    task_creates,
    fragments,
    taskwait_begins,
    taskwait_ends,
    task_completes,
    loop_begins,
    bookkeepings,
    chunks,
    loop_ends,
)
#: slab_rows=3 forces spills after a handful of same-kind appends, so
#: generated sequences routinely hit slab + tail mixed reads.
event_lists = st.lists(events, max_size=40)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@given(event_lists)
@settings(max_examples=200, deadline=None)
def test_append_to_events_round_trip(evs):
    store = ColumnarEvents(slab_rows=3)
    store.extend(evs)
    assert len(store) == len(evs)
    assert store.to_events() == list(evs)


@given(event_lists)
@settings(max_examples=100, deadline=None)
def test_dtypes_stable_across_spills(evs):
    store = ColumnarEvents(slab_rows=3)
    fresh = ColumnarEvents(slab_rows=3)
    store.extend(evs)
    for kind, dtype in enumerate(KIND_DTYPES):
        for name in dtype.names:
            assert store.kind_column(kind, name).dtype == dtype[name]
            assert fresh.kind_column(kind, name).dtype == dtype[name]


@given(event_lists)
@settings(max_examples=100, deadline=None)
def test_columnar_trace_serializes_like_row_trace(evs):
    store = ColumnarEvents(slab_rows=3)
    store.extend(evs)
    columnar_trace = Trace(columnar=store)

    row_trace = Trace()
    for event in evs:
        row_trace.append(event)

    text = columnar_trace.dumps_jsonl()
    assert text == row_trace.dumps_jsonl()
    assert Trace.loads_jsonl(text).dumps_jsonl() == text


@given(st.lists(task_creates, min_size=7, max_size=25))
@settings(max_examples=50, deadline=None)
def test_slabs_spill_at_slab_rows(evs):
    store = ColumnarEvents(slab_rows=4)
    store.extend(evs)
    # one kind only: the order block and the task_create block each spill
    # every 4 rows; everything still reads back intact.
    assert store.num_slabs() == 2 * (len(evs) // 4)
    assert store.kind_count(0) == len(evs)
    assert store.to_events() == list(evs)


@given(st.lists(task_creates, max_size=15))
@settings(max_examples=50, deadline=None)
def test_string_interning_is_shared_and_stable(evs):
    store = ColumnarEvents(slab_rows=3)
    store.extend(evs)
    distinct = {s for e in evs for s in (e.loc, e.definition, e.label)}
    assert set(store.strings()) <= distinct
    # interning the same text twice yields the same id
    for text in distinct:
        assert store.intern(text) == store.intern(text)
