"""Tests for trace recording, indexing, and JSONL round trips."""

import pytest

from helpers import binary_tree, loop_program, small_machine

from repro.machine.counters import CounterSet
from repro.profiler.events import (
    ChunkEvent,
    FragmentEvent,
    TaskCreateEvent,
    event_from_dict,
)
from repro.profiler.trace import Trace
from repro.runtime.api import run_program


def sample_trace():
    result = run_program(
        binary_tree(depth=3, leaf_cycles=100),
        machine=small_machine(2),
        num_threads=2,
    )
    return result.trace


class TestIndexing:
    def test_task_creates_indexed_by_tid(self):
        trace = sample_trace()
        assert set(trace.task_creates) == set(range(trace.num_tasks))

    def test_fragments_ordered_by_seq(self):
        trace = sample_trace()
        for tid, fragments in trace.fragments_by_task.items():
            seqs = [f.seq for f in fragments]
            assert seqs == sorted(seqs)
            assert seqs[0] == 0

    def test_every_task_has_a_completion(self):
        trace = sample_trace()
        assert set(trace.completes) == set(trace.task_creates)

    def test_append_after_index_rejected(self):
        trace = sample_trace()
        _ = trace.task_creates
        with pytest.raises(RuntimeError):
            trace.append(
                TaskCreateEvent(
                    tid=99, path=(0, 99), parent_tid=0, time=0, core=0,
                    creation_cycles=0, depth=1,
                )
            )

    def test_loop_indices(self):
        result = run_program(
            loop_program(iterations=8, chunk=2, threads=2),
            machine=small_machine(2),
            num_threads=2,
        )
        trace = result.trace
        assert len(trace.loops) == 1
        assert trace.num_chunks == 4
        (loop_id,) = trace.loops
        assert loop_id in trace.loop_ends
        assert len(trace.bookkeeping_by_loop[loop_id]) >= 4


class TestJsonlRoundTrip:
    def test_events_survive_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        trace.dump_jsonl(path)
        loaded = Trace.load_jsonl(path)
        assert len(loaded) == len(trace)
        assert [e.to_dict() for e in loaded] == [e.to_dict() for e in trace]

    def test_metadata_survives(self, tmp_path):
        trace = sample_trace()
        trace.meta.program = "binary_tree"
        trace.meta.extra = {"note": "x"}
        path = tmp_path / "trace.jsonl"
        trace.dump_jsonl(path)
        loaded = Trace.load_jsonl(path)
        assert loaded.meta.program == "binary_tree"
        assert loaded.meta.num_threads == trace.meta.num_threads
        assert loaded.meta.extra == {"note": "x"}

    def test_loop_trace_roundtrip(self, tmp_path):
        result = run_program(
            loop_program(iterations=8, chunk=2, threads=2),
            machine=small_machine(2),
            num_threads=2,
        )
        path = tmp_path / "loop.jsonl"
        result.trace.dump_jsonl(path)
        loaded = Trace.load_jsonl(path)
        assert loaded.num_chunks == result.trace.num_chunks

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            Trace.load_jsonl(path)


class TestEventSerialization:
    def test_fragment_counters_roundtrip(self):
        event = FragmentEvent(
            tid=1, seq=0, start=10, end=20, core=3,
            counters=CounterSet(cycles=10, stall_cycles=4, l1_misses=2),
        )
        back = event_from_dict(event.to_dict())
        assert back == event

    def test_chunk_roundtrip(self):
        event = ChunkEvent(
            loop_id=1, chunk_seq=2, thread=0, iter_start=4, iter_end=8,
            start=100, end=200, core=1, counters=CounterSet(cycles=100),
        )
        assert event_from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "mystery"})

    def test_taskwait_end_synced_tids_tuple(self):
        from repro.profiler.events import TaskwaitEndEvent

        event = TaskwaitEndEvent(tid=0, time=5, core=0, synced_tids=(1, 2))
        back = event_from_dict(event.to_dict())
        assert back.synced_tids == (1, 2)
        assert back.children_synced == 2
