"""Tests for highlight views, reports, advisor, and timeline contrast."""

from helpers import binary_tree, loop_program, run_and_graph, small_machine

from repro.analysis.advisor import advise
from repro.analysis.problems import ProblemKind, detect_problems
from repro.analysis.report import analyze
from repro.analysis.timeline import thread_timeline
from repro.analysis.views import (
    VIEW_KINDS,
    categorical_color,
    dim_color,
    heat_color,
    make_view,
    rainbow_color,
)
from repro.metrics.facade import MetricSet
from repro.runtime.api import run_program


class TestColors:
    def test_heat_gradient_endpoints(self):
        assert heat_color(1.0).startswith("#f")  # red-ish
        worst = heat_color(1.0)
        mild = heat_color(0.0)
        assert worst != mild

    def test_heat_clamps(self):
        assert heat_color(-1.0) == heat_color(0.0)
        assert heat_color(2.0) == heat_color(1.0)

    def test_rainbow_distinct_ends(self):
        assert rainbow_color(0.0) != rainbow_color(1.0)

    def test_categorical_cycles(self):
        colors = {categorical_color(i) for i in range(15)}
        assert len(colors) == 15
        assert categorical_color(0) == categorical_color(15)

    def test_all_colors_are_hex(self):
        for c in (
            heat_color(0.5), rainbow_color(0.5), categorical_color(3), dim_color()
        ):
            assert c.startswith("#") and len(c) == 7


class TestViews:
    def setup_method(self):
        _, self.graph = run_and_graph(
            binary_tree(4, leaf_cycles=100), machine=small_machine(2), threads=2
        )
        self.metrics = MetricSet.compute(self.graph)
        self.problems = detect_problems(self.metrics)

    def test_every_view_kind_builds(self):
        for kind in VIEW_KINDS:
            view = make_view(self.metrics, self.problems, kind)
            assert set(view.colors) == set(self.graph.grains)

    def test_problem_view_dims_non_problematic(self):
        view = make_view(self.metrics, self.problems, "parallel_benefit")
        flagged = self.problems.grains_with(ProblemKind.LOW_PARALLEL_BENEFIT)
        for gid, color in view.colors.items():
            if gid in flagged:
                assert color != dim_color()
            else:
                assert color == dim_color()
        assert view.highlighted == flagged

    def test_definition_view_colors_everything(self):
        view = make_view(self.metrics, self.problems, "definition")
        assert dim_color() not in view.colors.values()
        assert view.legend  # definition -> color map

    def test_critical_path_view(self):
        view = make_view(self.metrics, self.problems, "critical_path")
        assert view.highlighted == self.metrics.critical_path.grain_ids(self.graph)

    def test_unknown_view_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            make_view(self.metrics, self.problems, "sparkles")


class TestReportAndAdvisor:
    def test_summary_mentions_key_metrics(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=100), machine=small_machine(2), threads=2
        )
        report = analyze(graph)
        text = report.summary()
        assert "load balance" in text
        assert "instantaneous parallelism" in text
        assert "critical path" in text

    def test_clean_program_reports_good_behavior(self):
        from helpers import LOC, leaf
        from repro.runtime.actions import Spawn, TaskWait
        from repro.runtime.api import Program

        def main():
            for _ in range(16):
                yield Spawn(leaf(800_000), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("clean", main), machine=small_machine(4), threads=4
        )
        report = analyze(graph)
        advice = advise(report)
        # Big uniform grains: no cutoff advice.
        assert not any("cutoff" in a.title for a in advice)

    def test_flooded_program_gets_cutoff_advice(self):
        _, graph = run_and_graph(
            binary_tree(7, leaf_cycles=20), machine=small_machine(4), threads=4
        )
        advice = advise(analyze(graph))
        assert any("cutoff" in a.title for a in advice)

    def test_imbalanced_loop_gets_binpack_advice(self):
        def skewed(i):
            return 200_000 if i in (3, 40) else 300

        from repro.runtime.loops import Schedule

        _, graph = run_and_graph(
            loop_program(iterations=64, chunk=1, threads=4,
                         schedule=Schedule.DYNAMIC, cycles_of=skewed),
            machine=small_machine(4),
            threads=4,
        )
        advice = advise(analyze(graph))
        assert any("minimize cores" in a.title for a in advice)


class TestTimelineContrast:
    def test_per_core_busy_fractions(self):
        result = run_program(
            binary_tree(5, leaf_cycles=2000),
            machine=small_machine(4),
            num_threads=4,
        )
        timeline = thread_timeline(result.trace)
        assert timeline.num_cores == 4
        for core in range(4):
            assert 0.0 <= timeline.busy_fraction(core) <= 1.0

    def test_imbalance_signal_only(self):
        """The Fig. 4 point: the timeline view offers imbalance and
        nothing linking it to grains."""
        result = run_program(
            binary_tree(5), machine=small_machine(4), num_threads=4
        )
        timeline = thread_timeline(result.trace)
        assert timeline.imbalance() >= 1.0
        text = timeline.summary()
        assert "no per-task information" in text

    def test_busy_cycles_match_fragment_sums(self):
        result = run_program(
            binary_tree(4, leaf_cycles=1000),
            machine=small_machine(2),
            num_threads=2,
        )
        timeline = thread_timeline(result.trace)
        total = sum(timeline.busy_cycles.values())
        expected = sum(
            e.end - e.start for e in result.trace if e.kind == "fragment"
        )
        assert total == expected
