"""Tests for thresholds and problem detection (Sec. 3.3)."""


from helpers import LOC, binary_tree, leaf, run_and_graph, small_machine

from repro.analysis.problems import ProblemKind, detect_problems
from repro.analysis.thresholds import Thresholds
from repro.metrics.facade import MetricSet
from repro.runtime.actions import Spawn, TaskWait
from repro.runtime.api import Program


class TestThresholds:
    def test_paper_defaults(self):
        t = Thresholds()
        assert t.memory_hierarchy_utilization == 2.0
        assert t.parallel_benefit == 1.0
        assert t.load_balance == 1.0
        assert t.work_deviation == 2.0
        assert t.instantaneous_parallelism is None  # cores used
        assert t.scatter is None  # socket size

    def test_refined_copy(self):
        t = Thresholds().refined(work_deviation=1.2)
        assert t.work_deviation == 1.2
        assert Thresholds().work_deviation == 2.0

    def test_core_dependent_resolution(self):
        t = Thresholds()
        assert t.resolve_parallelism(48) == 48
        assert t.refined(instantaneous_parallelism=8).resolve_parallelism(48) == 8
        assert t.resolve_scatter(16.0) == 16.0
        assert t.refined(scatter=5.0).resolve_scatter(16.0) == 5.0


class TestDetection:
    def test_tiny_grains_flagged_low_benefit(self):
        def main():
            for _ in range(4):
                yield Spawn(leaf(30), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("tiny", main), machine=small_machine(4), threads=4
        )
        report = detect_problems(MetricSet.compute(graph))
        assert report.count(ProblemKind.LOW_PARALLEL_BENEFIT) >= 4

    def test_healthy_program_mostly_clean(self):
        def main():
            for _ in range(8):
                yield Spawn(leaf(500_000), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("healthy", main), machine=small_machine(4), threads=4
        )
        report = detect_problems(MetricSet.compute(graph))
        assert report.count(ProblemKind.LOW_PARALLEL_BENEFIT) == 0
        assert report.count(ProblemKind.WORK_INFLATION) == 0

    def test_low_parallelism_flagged(self):
        def main():
            yield Spawn(leaf(100_000), loc=LOC)  # single task, 4 cores
            yield TaskWait()

        _, graph = run_and_graph(
            Program("serialish", main), machine=small_machine(4), threads=4
        )
        report = detect_problems(MetricSet.compute(graph))
        assert report.count(ProblemKind.LOW_INSTANTANEOUS_PARALLELISM) > 0

    def test_affected_fraction(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=50), machine=small_machine(4), threads=4
        )
        report = detect_problems(MetricSet.compute(graph))
        fraction = report.affected_fraction(ProblemKind.LOW_PARALLEL_BENEFIT)
        assert 0.0 < fraction <= 1.0
        assert report.total_grains == graph.num_grains

    def test_problems_carry_source_links(self):
        _, graph = run_and_graph(
            binary_tree(3, leaf_cycles=10), machine=small_machine(2), threads=2
        )
        report = detect_problems(MetricSet.compute(graph))
        flagged = report.by_kind.get(ProblemKind.LOW_PARALLEL_BENEFIT, [])
        assert flagged
        assert all(p.loc or p.definition for p in flagged)

    def test_severity_normalized(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=10), machine=small_machine(2), threads=2
        )
        report = detect_problems(MetricSet.compute(graph))
        for problem in report.problems:
            assert 0.0 <= problem.severity <= 1.0

    def test_threshold_refinement_changes_counts(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=600), machine=small_machine(2), threads=2
        )
        metrics = MetricSet.compute(graph)
        strict = detect_problems(
            metrics, Thresholds().refined(parallel_benefit=10.0)
        )
        loose = detect_problems(
            metrics, Thresholds().refined(parallel_benefit=0.001)
        )
        assert strict.count(ProblemKind.LOW_PARALLEL_BENEFIT) > loose.count(
            ProblemKind.LOW_PARALLEL_BENEFIT
        )

    def test_load_imbalance_is_graph_level(self):
        def skew():
            def main():
                yield Spawn(leaf(100_000), loc=LOC)
                yield Spawn(leaf(100), loc=LOC)
                yield TaskWait()

            return Program("skew", main)

        _, graph = run_and_graph(skew(), machine=small_machine(2), threads=2)
        report = detect_problems(MetricSet.compute(graph))
        imbalance = report.by_kind.get(ProblemKind.LOAD_IMBALANCE, [])
        assert len(imbalance) == 1
        assert imbalance[0].gid == ""  # whole-graph problem
