"""Tests for the 376.kdtree reproduction (Sec. 2)."""

from repro.apps import kdtree
from repro.core.builder import build_grain_graph
from repro.runtime.api import run_program
from repro.runtime.flavors import MIR


class TestTree:
    def test_tree_is_deterministic(self):
        a = kdtree.build_tree(64)
        b = kdtree.build_tree(64)

        def points(node):
            if node is None:
                return []
            return points(node.left) + [node.point] + points(node.right)

        assert points(a) == points(b)

    def test_tree_size(self):
        root = kdtree.build_tree(100)
        assert root.size == 100

    def test_tree_is_roughly_balanced(self):
        root = kdtree.build_tree(127)

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(root) <= 9  # log2(127) ~ 7, some slack


class TestBugReproduction:
    def test_cutoff_has_no_effect_in_original(self):
        """Sec. 2: "The cutoff has no effect" — task counts are identical
        for any cutoff value because the depth is never incremented."""
        counts = []
        for cutoff in (2, 5, 20):
            result = run_program(
                kdtree.program(tree_size=100, cutoff=cutoff),
                flavor=MIR, num_threads=8,
            )
            counts.append(result.stats.tasks_created)
        assert counts[0] == counts[1] == counts[2]

    def test_original_creates_task_per_node_and_point(self):
        result = run_program(
            kdtree.program(tree_size=100), flavor=MIR, num_threads=8
        )
        # 100 sweep tasks + 100 search tasks + root.
        assert result.stats.tasks_created == 201

    def test_fixed_cutoff_limits_tasks(self):
        orig = run_program(
            kdtree.program(tree_size=512), flavor=MIR, num_threads=8
        )
        fixed = run_program(
            kdtree.program_fixed(tree_size=512, cutoff=3, sweep_cutoff=4),
            flavor=MIR, num_threads=8,
        )
        assert fixed.stats.tasks_created < orig.stats.tasks_created / 4

    def test_fixed_cutoff_responds_to_parameter(self):
        shallow = run_program(
            kdtree.program_fixed(tree_size=512, cutoff=2, sweep_cutoff=3),
            flavor=MIR, num_threads=8,
        )
        deep = run_program(
            kdtree.program_fixed(tree_size=512, cutoff=5, sweep_cutoff=6),
            flavor=MIR, num_threads=8,
        )
        assert deep.stats.tasks_created > shallow.stats.tasks_created

    def test_graph_depth_reveals_runaway_recursion(self):
        """Fig. 2's signal: the graph recurses deep despite cutoff 2."""
        result = run_program(
            kdtree.program(tree_size=200, cutoff=2), flavor=MIR, num_threads=8
        )
        graph = build_grain_graph(result.trace)
        max_depth = max(g.depth for g in graph.grains.values())
        assert max_depth > 2 + 2  # far beyond the cutoff

    def test_fig2_grain_count_magnitude(self):
        """Fig. 2: the small input (tree 200, cutoff 2) graph has ~740
        grains; our substitute tree yields the same order (~400)."""
        result = run_program(
            kdtree.program(tree_size=200, radius=10, cutoff=2),
            flavor=MIR, num_threads=8,
        )
        graph = build_grain_graph(result.trace)
        assert 300 <= graph.num_grains <= 1000

    def test_fix_improves_makespan(self):
        orig = run_program(
            kdtree.program(tree_size=1024), flavor=MIR, num_threads=16
        )
        fixed = run_program(
            kdtree.program_fixed(tree_size=1024, cutoff=4, sweep_cutoff=5),
            flavor=MIR, num_threads=16,
        )
        assert fixed.makespan_cycles < orig.makespan_cycles

    def test_total_search_work_preserved_by_fix(self):
        """The fix batches work without dropping it: total search cycles
        are comparable (within 25%)."""
        def searched(result):
            graph = build_grain_graph(result.trace)
            return sum(g.exec_time for g in graph.grains.values())

        orig = searched(
            run_program(kdtree.program(tree_size=256), flavor=MIR, num_threads=1)
        )
        fixed = searched(
            run_program(
                kdtree.program_fixed(tree_size=256, cutoff=3, sweep_cutoff=4),
                flavor=MIR, num_threads=1,
            )
        )
        assert abs(orig - fixed) / orig < 0.25
