"""Tests for the Sort and FFT reproductions (Secs. 4.3.1, 4.3.3)."""

from repro.apps import fft, sort
from repro.core.builder import build_grain_graph
from repro.metrics.parallel_benefit import low_benefit_fraction
from repro.metrics.parallelism import instantaneous_parallelism
from repro.metrics.work_deviation import work_deviation
from repro.runtime.api import run_program
from repro.runtime.flavors import MIR


def run(program, threads=48):
    return run_program(program, flavor=MIR, num_threads=threads)


class TestSort:
    def test_three_phase_structure(self):
        result = run(sort.program(elements=1 << 16, quick_cutoff=1 << 13))
        graph = build_grain_graph(result.trace)
        definitions = {g.definition for g in graph.grains.values()}
        assert "sort.c:329(cilksort_par)" in definitions
        assert "sort.c:219(cilkmerge_par)" in definitions

    def test_lower_cutoff_creates_many_more_grains(self):
        """Fig. 5b: lowering the cutoff massively increases grain count."""
        best = run(sort.program(elements=1 << 17))
        low = run(sort.program_low_cutoff(elements=1 << 17, factor=16))
        assert low.stats.tasks_created > 8 * best.stats.tasks_created

    def test_lower_cutoff_low_benefit(self):
        """Fig. 5b: the extra grains have low parallel benefit."""
        low = run(sort.program_low_cutoff(elements=1 << 16, factor=128))
        graph = build_grain_graph(low.trace)
        assert low_benefit_fraction(graph) > 0.3

    def test_parallelism_wanes_in_merge_phase(self):
        """Fig. 5a: instantaneous parallelism dips below the core count."""
        result = run(sort.program(elements=1 << 18, quick_cutoff=1 << 13))
        graph = build_grain_graph(result.trace)
        profile = instantaneous_parallelism(graph, optimistic=False)
        assert profile.fraction_below(48) > 0.3

    def test_round_robin_reduces_inflation(self):
        """The Sec. 4.3.1 table: round-robin pages cut work inflation."""
        def measure(make):
            multi = run(make(elements=1 << 18))
            single = run_program(make(elements=1 << 18), flavor=MIR, num_threads=1)
            return work_deviation(
                build_grain_graph(multi.trace), build_grain_graph(single.trace)
            ).inflated_fraction(1.5)

        assert measure(sort.program_round_robin) < measure(sort.program)

    def test_round_robin_improves_makespan(self):
        ft = run(sort.program(elements=1 << 18))
        rr = run(sort.program_round_robin(elements=1 << 18))
        assert rr.makespan_cycles < ft.makespan_cycles


class TestFFT:
    def test_original_floods_tasks(self):
        """"Many tasks are created even for small inputs"."""
        result = run(fft.program(samples=1 << 12))
        assert result.stats.tasks_created > 300

    def test_cutoff_reduces_tasks(self):
        orig = run(fft.program(samples=1 << 14))
        opt = run(fft.program_optimized(samples=1 << 14, cutoff_depth=3))
        assert opt.stats.tasks_created < orig.stats.tasks_created / 4

    def test_original_has_low_parallel_benefit(self):
        """Fig. 7 left: several grains with low benefit."""
        result = run(fft.program(samples=1 << 13))
        graph = build_grain_graph(result.trace)
        assert low_benefit_fraction(graph) > 0.3

    def test_optimized_has_good_parallel_benefit(self):
        """Fig. 7 right: grains show good benefit after optimization."""
        result = run(fft.program_optimized(samples=1 << 16, cutoff_depth=3))
        graph = build_grain_graph(result.trace)
        assert low_benefit_fraction(graph) < 0.25

    def test_poor_mhu_remains_after_optimization(self):
        """Fig. 8: a majority of grains still underuse the hierarchy."""
        from repro.metrics.memory import memory_report

        result = run(fft.program_optimized(samples=1 << 16, cutoff_depth=3))
        graph = build_grain_graph(result.trace)
        report = memory_report(graph)
        assert report.poor_mhu_fraction(2.0) > 0.5

    def test_fig7_definitions_present(self):
        result = run(fft.program(samples=1 << 12))
        graph = build_grain_graph(result.trace)
        definitions = {g.definition for g in graph.grains.values()}
        assert "fft.c:4680(fft_aux)" in definitions
        assert "fft.c:3522(fft_twiddle_gen)" in definitions
        assert "fft.c:2329(fft_unshuffle)" in definitions

    def test_optimization_improves_makespan(self):
        orig = run(fft.program(samples=1 << 14))
        opt = run(fft.program_optimized(samples=1 << 14, cutoff_depth=3))
        assert opt.makespan_cycles < orig.makespan_cycles

    def test_power_of_two_required(self):
        import pytest

        with pytest.raises(ValueError):
            fft.program(samples=1000)
