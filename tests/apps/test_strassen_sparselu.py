"""Tests for the Strassen and 359.botsspar reproductions (Secs. 4.3.5, 4.3.2)."""


from repro.apps import sparselu, strassen
from repro.core.builder import build_grain_graph
from repro.metrics.scatter import scatter
from repro.metrics.work_deviation import work_deviation
from repro.runtime.api import run_program
from repro.runtime.flavors import MIR


def run(program, threads=48, flavor=MIR):
    return run_program(program, flavor=flavor, num_threads=threads)


class TestStrassenCutoffBug:
    def test_58_grain_shallow_graph(self):
        """Fig. 11a: the 2048 input yields exactly 58 grains."""
        result = run(strassen.program(matrix=2048, sc=128))
        graph = build_grain_graph(result.trace)
        assert graph.num_grains == 58

    def test_sc_has_no_effect_in_original(self):
        """"All graphs are shallow and look the same" for any SC."""
        counts = {
            sc: run(strassen.program(matrix=2048, sc=sc)).stats.tasks_created
            for sc in (32, 128, 512)
        }
        assert len(set(counts.values())) == 1

    def test_fixed_honors_sc(self):
        """Fig. 11b: ~2801 grains when the hard-coded cutoff is removed."""
        result = run(strassen.program_fixed(matrix=2048, sc=128))
        graph = build_grain_graph(result.trace)
        assert 2800 <= graph.num_grains <= 2810

    def test_fixed_sc_controls_depth(self):
        small_sc = run(strassen.program_fixed(matrix=1024, sc=64))
        large_sc = run(strassen.program_fixed(matrix=1024, sc=256))
        assert small_sc.stats.tasks_created > large_sc.stats.tasks_created

    def test_fix_improves_makespan(self):
        orig = run(strassen.program(matrix=1024, sc=64))
        fixed = run(strassen.program_fixed(matrix=1024, sc=64))
        assert fixed.makespan_cycles < orig.makespan_cycles


class TestStrassenScatter:
    def test_central_queue_scatters_siblings(self):
        """Fig. 11c/d: central-queue scheduling scatters sibling tasks."""
        program = strassen.program_fixed(matrix=512, sc=64)
        ws = run(program, flavor=MIR)
        cq = run(strassen.program_fixed(matrix=512, sc=64),
                 flavor=MIR.with_scheduler("central"))
        topo_threshold = 16.0  # same-socket distance

        def scattered_fraction(result):
            graph = build_grain_graph(result.trace)
            result_sc = scatter(graph)
            flagged = result_sc.scattered(topo_threshold)
            return len(flagged) / max(1, len(result_sc.per_grain))

        assert scattered_fraction(cq) > scattered_fraction(ws)

    def test_central_queue_slower(self):
        """Sec. 4.3.5: Strassen performs poorly (10x vs ~20x) with a
        central queue-based task scheduler.  The effect needs leaf
        working sets that caches can actually retain, so the LLC-resident
        1024/64 configuration is used."""
        ws = run(strassen.program_fixed(matrix=1024, sc=64), flavor=MIR)
        cq = run(strassen.program_fixed(matrix=1024, sc=64),
                 flavor=MIR.with_scheduler("central"))
        assert cq.makespan_cycles > ws.makespan_cycles


class TestSparseLU:
    def test_two_interleaved_phases(self):
        """Fig. 6a: fwd/bdiv phase and bmod phase per elimination step."""
        result = run(sparselu.program(nb=5, block=32))
        graph = build_grain_graph(result.trace)
        definitions = {g.definition for g in graph.grains.values()}
        assert "sparselu.c:229(fwd)" in definitions
        assert "sparselu.c:235(bdiv)" in definitions
        assert "sparselu.c:246(bmod)" in definitions

    def test_bmod_dominates_instance_count(self):
        """The pin-pointing step: bmod is the most frequent definition."""
        from repro.metrics.summary import per_definition_summary

        result = run(sparselu.program(nb=12, block=32))
        graph = build_grain_graph(result.trace)
        rows = per_definition_summary(graph)
        by_count = max(rows, key=lambda r: r.count)
        assert "bmod" in by_count.definition

    def test_parallelism_decreases_over_steps(self):
        """"gradually decreasing parallelism": later elimination steps
        spawn fewer tasks."""
        pattern = sparselu.sparsity_pattern(12)
        first_step = sum(1 for j in range(1, 12) if pattern[0][j])
        result = run(sparselu.program(nb=12, block=32))
        # Simply verify the triangular shrink in the trace: creates per
        # wave shrink.  Count bmod creates before/after the midpoint.
        creates = [
            e for e in result.trace
            if e.kind == "task_create" and "bmod" in e.definition
        ]
        midpoint = result.makespan_cycles // 2
        early = sum(1 for c in creates if c.time < midpoint)
        late = len(creates) - early
        assert early > late

    def test_interchange_reduces_inflation(self):
        """Fig. 6c/d: loop interchange reduces work inflation."""
        def inflated(make):
            multi = run(make(nb=10, block=48))
            single = run(make(nb=10, block=48), threads=1)
            return work_deviation(
                build_grain_graph(multi.trace), build_grain_graph(single.trace)
            ).inflated_fraction(1.2)

        assert inflated(sparselu.program_interchanged) < inflated(
            sparselu.program
        )

    def test_interchange_improves_makespan(self):
        orig = run(sparselu.program(nb=10, block=48))
        fixed = run(sparselu.program_interchanged(nb=10, block=48))
        assert fixed.makespan_cycles < orig.makespan_cycles

    def test_sparsity_pattern_deterministic_with_diagonal(self):
        a = sparselu.sparsity_pattern(16)
        b = sparselu.sparsity_pattern(16)
        assert a == b
        assert all(a[i][i] for i in range(16))
