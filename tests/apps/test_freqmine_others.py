"""Tests for Freqmine (Sec. 4.3.4) and the Sec. 4.3.6 round-up apps."""

from repro.apps import freqmine, others
from repro.binpack import minimum_cores_for_graph
from repro.core.builder import build_grain_graph
from repro.core.grains import GrainKind
from repro.metrics.load_balance import load_balance
from repro.metrics.parallel_benefit import low_benefit_fraction
from repro.runtime.api import run_program
from repro.runtime.flavors import MIR

FPGF2_LOOP_ID = 3  # scan=0, build=1, fpgf instances = 2, 3, 4


def run(program, threads=48):
    return run_program(program, flavor=MIR, num_threads=threads)


class TestFreqmine:
    def test_fig9_grain_count(self):
        """Fig. 9: the graph contains 6985 grains."""
        result = run(freqmine.program())
        graph = build_grain_graph(result.trace)
        assert graph.num_grains == 6985

    def test_fpgf_has_1292_chunks(self):
        """Fig. 10: the second FPGF instance contains 1292 chunks."""
        result = run(freqmine.program())
        graph = build_grain_graph(result.trace)
        chunks = [
            g for g in graph.grains.values()
            if g.kind is GrainKind.CHUNK and g.loop_id == FPGF2_LOOP_ID
        ]
        assert len(chunks) == 1292

    def test_load_balance_bad_on_48_good_on_7(self):
        """Fig. 10: LB ~35.5 on 48 cores improves to ~1.06 on 7."""
        g48 = build_grain_graph(run(freqmine.program()).trace)
        lb48 = load_balance(g48, loop_id=FPGF2_LOOP_ID)
        g7 = build_grain_graph(run(freqmine.program(), threads=7).trace)
        lb7 = load_balance(g7, loop_id=FPGF2_LOOP_ID)
        assert lb48.value > 20
        assert lb7.value < 1.5

    def test_seven_cores_suffice(self):
        """Table 1: the num_threads=7 fix keeps the makespan."""
        full = run(freqmine.program())
        seven = run(freqmine.program_seven_cores())
        assert seven.makespan_cycles < full.makespan_cycles * 1.12

    def test_binpack_finds_seven(self):
        graph = build_grain_graph(run(freqmine.program()).trace)
        result = minimum_cores_for_graph(graph, loop_id=FPGF2_LOOP_ID)
        assert result.num_bins == 7

    def test_large_iterations_irregularly_placed(self):
        costs = [freqmine.fpgf_iteration_cycles(i) for i in range(1292)]
        large = [i for i, c in enumerate(costs) if c > 20 * freqmine.SMALL_CYCLES]
        assert len(large) >= 8
        gaps = [b - a for a, b in zip(large, large[1:])]
        assert len(set(gaps)) > 3  # not evenly spaced
        assert large[0] > 10 and large[-1] < 1285  # spread across the range

    def test_most_grains_small_poor_benefit(self):
        """Fig. 9b: most grains are small with poor parallel benefit."""
        graph = build_grain_graph(run(freqmine.program()).trace)
        assert low_benefit_fraction(graph) > 0.4


class TestOthers:
    def test_nqueens_scales_and_is_clean(self):
        result = run(others.nqueens(n=10, cutoff=2), threads=16)
        single = run(others.nqueens(n=10, cutoff=2), threads=1)
        assert single.makespan_cycles / result.makespan_cycles > 4
        graph = build_grain_graph(result.trace)
        assert low_benefit_fraction(graph) < 0.3

    def test_fib_cutoff_controls_leaf_work(self):
        shallow = run(others.fib(n=16, cutoff=4), threads=8)
        deep = run(others.fib(n=16, cutoff=8), threads=8)
        assert deep.stats.tasks_created > shallow.stats.tasks_created

    def test_uts_has_poor_parallel_benefit(self):
        result = run(others.uts(expected_nodes=800), threads=16)
        graph = build_grain_graph(result.trace)
        assert low_benefit_fraction(graph) > 0.5

    def test_uts_tree_is_imbalanced(self):
        result = run(others.uts(expected_nodes=800), threads=16)
        graph = build_grain_graph(result.trace)
        depths = [g.depth for g in graph.grains.values()]
        assert max(depths) > 5

    def test_blackscholes_poor_mhu_chunks(self):
        from repro.metrics.memory import memory_report

        result = run(others.blackscholes(options=8000, chunk=64))
        graph = build_grain_graph(result.trace)
        report = memory_report(graph)
        assert report.poor_mhu_fraction(2.0) > 0.5

    def test_botsalgn_all_metrics_good(self):
        result = run(others.botsalgn(sequences=96))
        graph = build_grain_graph(result.trace)
        assert low_benefit_fraction(graph) < 0.1

    def test_smithwa_runs_both_blocks(self):
        result = run(others.smithwa(size=10))
        graph = build_grain_graph(result.trace)
        definitions = {g.definition for g in graph.grains.values()}
        assert any("mergeAlignment" in d for d in definitions)
        assert any("verifyData" in d for d in definitions)

    def test_imagick_unthrottled_loops_low_benefit(self):
        from repro.metrics.summary import per_definition_summary

        result = run(others.imagick(rows=240))
        graph = build_grain_graph(result.trace)
        rows = {r.definition: r for r in per_definition_summary(graph)}
        shear = rows["magick_shear.c:1694(XShearImage)"]
        resize = rows["magick_resize.c:2215(HorizontalFilter)"]
        assert shear.low_benefit_fraction > resize.low_benefit_fraction

    def test_bodytrack_calc_weights_is_the_exception(self):
        from repro.metrics.summary import per_definition_summary

        result = run(others.bodytrack(particles=1000, rows=120))
        graph = build_grain_graph(result.trace)
        rows = {r.definition: r for r in per_definition_summary(graph)}
        weights = rows["ParticleFilterOMP.h:64(ParticleFilterOMP::CalcWeights)"]
        filters = rows["FlexImageFilter.h:114(FlexFilterRowVOMP)"]
        assert weights.low_benefit_fraction < filters.low_benefit_fraction

    def test_fib_serial_helper(self):
        assert others.fib_serial(10) == 55
