"""Tests for shared value types, the micro apps, and the CLI."""

import pytest

from repro.common import SourceLocation, UNKNOWN_LOCATION
from repro.apps import micro
from repro.apps.common import (
    DeterministicRandom,
    flops_cycles,
    linear_cycles,
    nlogn_cycles,
)


class TestSourceLocation:
    def test_str_with_function(self):
        loc = SourceLocation("sparselu.c", 246, "bmod")
        assert str(loc) == "sparselu.c:246(bmod)"

    def test_str_without_function(self):
        assert str(SourceLocation("a.c", 10)) == "a.c:10"

    def test_parse_roundtrip(self):
        for loc in (
            SourceLocation("sparselu.c", 246, "bmod"),
            SourceLocation("fp_tree.cpp", 1437, "FP_tree::FP_growth_first"),
            SourceLocation("a.c", 10),
        ):
            assert SourceLocation.parse(str(loc)) == loc

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            SourceLocation.parse("nonsense")

    def test_ordering_and_hash(self):
        a = SourceLocation("a.c", 1)
        b = SourceLocation("a.c", 2)
        assert a < b
        assert len({a, b, SourceLocation("a.c", 1)}) == 2

    def test_unknown_location(self):
        assert UNKNOWN_LOCATION.line == 0


class TestCostHelpers:
    def test_flops_cycles_positive(self):
        assert flops_cycles(0) == 1
        assert flops_cycles(100, flops_per_cycle=2.0) == 50

    def test_nlogn_monotone(self):
        values = [nlogn_cycles(n) for n in (2, 16, 256, 4096)]
        assert values == sorted(values)

    def test_linear(self):
        assert linear_cycles(100, per_element=2.0) == 200

    def test_rng_shuffle_permutes(self):
        rng = DeterministicRandom(1)
        items = list(range(30))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRandom(1).randint(5, 4)


class TestMicroApps:
    def test_serial_only_single_grain(self):
        from helpers import run_and_graph, small_machine

        _, graph = run_and_graph(
            micro.serial_only(cycles=5000), machine=small_machine(2), threads=2
        )
        assert graph.num_grains == 1
        assert graph.grains["t:0"].exec_time == 5000

    def test_fire_and_forget_task_count(self):
        from helpers import run_and_graph, small_machine

        _, graph = run_and_graph(
            micro.fire_and_forget(depth=4), machine=small_machine(2), threads=2
        )
        # 2^5 - 1 sweep tasks + root.
        assert graph.num_grains == 32

    def test_fig3a_labels(self):
        from helpers import run_and_graph, small_machine

        _, graph = run_and_graph(
            micro.fig3a(), machine=small_machine(2), threads=2
        )
        labels = {g.label for g in graph.grains.values()}
        assert {"foo", "bar", "baz"} <= labels


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "freqmine" in out
        assert "kdtree-fixed" in out

    def test_analyze_small(self, capsys, tmp_path):
        from repro.cli import main

        svg = tmp_path / "g.svg"
        code = main(
            ["analyze", "fig3b", "--threads", "4", "--no-reference",
             "--svg", str(svg), "--view", "definition"]
        )
        assert code == 0
        assert svg.exists()
        out = capsys.readouterr().out
        assert "load balance" in out

    def test_unknown_program(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["analyze", "does-not-exist"])

    def test_speedups(self, capsys):
        from repro.cli import main

        assert main(["speedups", "fig3a", "--threads", "4"]) == 0
        assert "fig3a" in capsys.readouterr().out
