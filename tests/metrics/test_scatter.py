"""Tests for the scatter metric (Sec. 3.2, Fig. 11c/d)."""

import pytest

from repro.core.grains import Grain, GrainKind
from repro.core.nodes import GrainGraph
from repro.machine.topology import opteron6172
from repro.metrics.scatter import scatter, topology_from_meta
from repro.profiler.trace import TraceMetadata


def graph_with_siblings(cores):
    """A graph whose sibling grains executed on the given cores."""
    graph = GrainGraph(
        meta=TraceMetadata(
            num_threads=48, num_cores_total=48, cores_per_socket=12,
            num_numa_nodes=8, machine="amd-opteron-6172",
        )
    )
    parent = Grain(gid="t:0", kind=GrainKind.TASK)
    parent.intervals = [(0, 10, 0)]
    graph.grains["t:0"] = parent
    for i, core in enumerate(cores):
        g = Grain(
            gid=f"t:0/{i}", kind=GrainKind.TASK, sibling_group="t:0",
            parent_gid="t:0",
        )
        g.intervals = [(0, 100, core)]
        graph.grains[g.gid] = g
    return graph


class TestScatterValues:
    def test_same_node_siblings_have_local_scatter(self):
        graph = graph_with_siblings([0, 1, 2, 3])  # all node 0
        result = scatter(graph)
        assert result.per_group["t:0"] == 10  # LOCAL_DISTANCE

    def test_cross_socket_siblings_scatter_high(self):
        graph = graph_with_siblings([0, 12, 24, 36])  # one per socket
        result = scatter(graph)
        assert result.per_group["t:0"] == 22  # cross-socket entry

    def test_median_is_robust_to_one_outlier(self):
        # Five siblings close together, one far away.
        graph = graph_with_siblings([0, 1, 2, 3, 4, 47])
        result = scatter(graph)
        assert result.per_group["t:0"] == 10

    def test_single_grain_group_scatter_zero(self):
        graph = graph_with_siblings([5])
        assert scatter(graph).per_group["t:0"] == 0.0

    def test_per_grain_inherits_group_value(self):
        graph = graph_with_siblings([0, 24])
        result = scatter(graph)
        assert result.per_grain["t:0/0"] == result.per_group["t:0"]
        assert result.per_grain["t:0/1"] == result.per_group["t:0"]

    def test_core_id_convention(self):
        graph = graph_with_siblings([0, 10])
        result = scatter(graph, convention="core_id")
        assert result.per_group["t:0"] == 10.0  # |0 - 10|

    def test_unknown_convention_rejected(self):
        graph = graph_with_siblings([0, 1])
        with pytest.raises(ValueError):
            scatter(graph, convention="chebyshev")

    def test_scattered_filter_uses_threshold(self):
        graph = graph_with_siblings([0, 24, 47])
        result = scatter(graph)
        topo = opteron6172()
        flagged = result.scattered(topo.same_socket_distance)
        assert set(flagged) == {"t:0/0", "t:0/1", "t:0/2"}


class TestTopologyFromMeta:
    def test_reconstruction_matches_paper_machine(self):
        meta = TraceMetadata(
            num_cores_total=48, cores_per_socket=12, num_numa_nodes=8,
        )
        topo = topology_from_meta(meta)
        assert topo.num_cores == 48
        assert topo.sockets == 4
        assert topo.num_nodes == 8

    def test_small_machine_reconstruction(self):
        meta = TraceMetadata(
            num_cores_total=4, cores_per_socket=4, num_numa_nodes=1,
        )
        topo = topology_from_meta(meta)
        assert topo.num_cores == 4
        assert topo.num_nodes == 1
