"""Tests for instantaneous parallelism (Sec. 3.2)."""

import pytest

from helpers import LOC, binary_tree, leaf, run_and_graph, small_machine

from repro.metrics.parallelism import (
    IntervalPreset,
    instantaneous_parallelism,
)
from repro.runtime.actions import Spawn, TaskWait, Work
from repro.runtime.api import Program
from repro.machine.cost import WorkRequest


class TestTimeline:
    def test_serial_program_parallelism_one(self):
        def main():
            yield Work(WorkRequest(cycles=10_000))

        _, graph = run_and_graph(
            Program("serial", main), machine=small_machine(2), threads=1
        )
        profile = instantaneous_parallelism(graph, interval=100)
        assert profile.peak == 1
        assert profile.mean == pytest.approx(1.0)

    def test_parallel_section_detected(self):
        def main():
            for _ in range(4):
                yield Spawn(leaf(100_000), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("par4", main), machine=small_machine(4), threads=4
        )
        profile = instantaneous_parallelism(graph, interval=1000)
        assert profile.peak >= 4

    def test_conservative_never_exceeds_cores(self):
        _, graph = run_and_graph(
            binary_tree(6, leaf_cycles=3000), machine=small_machine(4), threads=4
        )
        profile = instantaneous_parallelism(
            graph, interval=500, optimistic=False
        )
        assert profile.peak <= 4

    def test_optimistic_at_least_conservative(self):
        _, graph = run_and_graph(
            binary_tree(5, leaf_cycles=2000), machine=small_machine(4), threads=4
        )
        optimistic = instantaneous_parallelism(graph, interval=700)
        conservative = instantaneous_parallelism(
            graph, interval=700, optimistic=False
        )
        assert optimistic.mean >= conservative.mean

    def test_fraction_below(self):
        def main():
            yield Spawn(leaf(50_000), loc=LOC)  # serial tail
            yield TaskWait()

        _, graph = run_and_graph(
            Program("tail", main), machine=small_machine(4), threads=4
        )
        profile = instantaneous_parallelism(graph, interval=500)
        assert profile.fraction_below(4) > 0.9


class TestPerGrain:
    def test_grain_minimum_reported(self):
        def main():
            yield Spawn(leaf(100_000), loc=LOC)  # long, alone at the end
            yield Spawn(leaf(1000), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("mix", main), machine=small_machine(2), threads=2
        )
        profile = instantaneous_parallelism(graph, interval=500)
        # The long grain runs alone for most of its life.
        assert profile.per_grain["t:0/0"] == 1

    def test_all_grains_have_entries(self):
        _, graph = run_and_graph(
            binary_tree(4), machine=small_machine(2), threads=2
        )
        profile = instantaneous_parallelism(graph)
        assert set(profile.per_grain) == set(graph.grains)

    def test_grains_below_filter(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=4000), machine=small_machine(4), threads=4
        )
        profile = instantaneous_parallelism(graph, interval=200)
        below = profile.grains_below(4)
        assert all(profile.per_grain[g] < 4 for g in below)


class TestIntervalPresets:
    def test_presets_resolve(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=1234), machine=small_machine(2), threads=2
        )
        for preset in IntervalPreset:
            profile = instantaneous_parallelism(graph, interval=preset)
            assert profile.interval_cycles >= 1

    def test_min_grain_preset_smaller_than_median(self):
        _, graph = run_and_graph(
            binary_tree(4, leaf_cycles=9000), machine=small_machine(2), threads=2
        )
        small = instantaneous_parallelism(
            graph, interval=IntervalPreset.MIN_GRAIN_LENGTH
        )
        median = instantaneous_parallelism(
            graph, interval=IntervalPreset.MEDIAN_GRAIN_LENGTH
        )
        assert small.interval_cycles <= median.interval_cycles

    def test_invalid_interval_rejected(self):
        _, graph = run_and_graph(
            binary_tree(2), machine=small_machine(2), threads=2
        )
        with pytest.raises(ValueError):
            instantaneous_parallelism(graph, interval=0)
