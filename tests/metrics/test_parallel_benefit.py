"""Tests for the parallel-benefit metric (Sec. 3.2)."""

import math

from helpers import LOC, leaf, run_and_graph, small_machine

from repro.core.grains import Grain, GrainKind
from repro.metrics.parallel_benefit import (
    low_benefit_fraction,
    parallel_benefit,
    parallel_benefit_all,
)
from repro.runtime.actions import Spawn, TaskWait
from repro.runtime.api import Program


def grain_with(exec_time, creation, sync):
    g = Grain(gid="t:0/0", kind=GrainKind.TASK,
              creation_cycles=creation, sync_share_cycles=sync)
    g.intervals = [(0, exec_time, 0)]
    return g


class TestFormula:
    def test_execution_over_cost(self):
        g = grain_with(exec_time=1000, creation=400, sync=100)
        assert parallel_benefit(g) == 2.0

    def test_below_one_flags_wasteful_grain(self):
        g = grain_with(exec_time=100, creation=400, sync=100)
        assert parallel_benefit(g) < 1.0

    def test_zero_cost_is_infinite(self):
        g = grain_with(exec_time=100, creation=0, sync=0)
        assert math.isinf(parallel_benefit(g))

    def test_cost_includes_both_components(self):
        """Parallelization cost = creation + parent's per-sibling sync."""
        g = grain_with(exec_time=900, creation=200, sync=100)
        assert g.parallelization_cost == 300
        assert parallel_benefit(g) == 3.0


class TestOnRealPrograms:
    def test_big_grains_have_high_benefit(self):
        def main():
            for _ in range(4):
                yield Spawn(leaf(200_000), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("big", main), machine=small_machine(4), threads=4
        )
        values = parallel_benefit_all(graph)
        children = {g: v for g, v in values.items() if g.count("/") == 1}
        assert all(v > 10 for v in children.values())

    def test_tiny_grains_have_low_benefit(self):
        def main():
            for _ in range(4):
                yield Spawn(leaf(50), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("tiny", main), machine=small_machine(4), threads=4
        )
        fraction = low_benefit_fraction(graph, threshold=1.0)
        assert fraction >= 0.5  # most grains below threshold

    def test_root_grain_infinite_benefit(self):
        def main():
            yield Spawn(leaf(100), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("r", main), machine=small_machine(2), threads=2
        )
        assert math.isinf(parallel_benefit_all(graph)["t:0"])

    def test_empty_graph_fraction(self):
        from repro.core.nodes import GrainGraph

        assert low_benefit_fraction(GrainGraph()) == 0.0
