"""Tests for work deviation / inflation (Sec. 3.2)."""

import pytest

from helpers import binary_tree, run_and_graph, small_machine

from repro.core.builder import build_grain_graph
from repro.machine import Machine
from repro.machine.cost import Access, WorkRequest
from repro.machine.memory import FirstTouch
from repro.metrics.work_deviation import work_deviation
from repro.runtime.actions import Alloc, Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.common import SourceLocation

LOC = SourceLocation("dev.c", 1, "t")


def memory_hungry_program(n=16):
    """Tasks hammering one first-touch region: inflates under concurrency."""

    def child(rid):
        def body():
            yield Work(
                WorkRequest(
                    cycles=2_000,
                    accesses=(Access(rid, 1 << 17, pattern=0.3),),
                )
            )

        return body

    def main():
        region = yield Alloc("hot", 1 << 26, FirstTouch(0))
        for _ in range(n):
            yield Spawn(child(region.region_id), loc=LOC)
        yield TaskWait()

    return Program("hungry", main)


class TestJoin:
    def test_compute_only_grains_have_deviation_one(self):
        program = binary_tree(4, leaf_cycles=1000)
        multi, g_multi = run_and_graph(program, machine=small_machine(4), threads=4)
        single, g_single = run_and_graph(program, machine=small_machine(4), threads=1)
        report = work_deviation(g_multi, g_single)
        assert report.deviation  # non-empty
        for gid, value in report.deviation.items():
            assert value == pytest.approx(1.0)

    def test_root_with_zero_exec_skipped(self):
        program = binary_tree(2)
        _, g_multi = run_and_graph(program, machine=small_machine(2), threads=2)
        _, g_single = run_and_graph(program, machine=small_machine(2), threads=1)
        report = work_deviation(g_multi, g_single)
        assert "t:0" not in report.deviation
        assert report.unmatched >= 1

    def test_join_is_by_grain_identity(self):
        program = binary_tree(3)
        _, g_multi = run_and_graph(program, machine=small_machine(4), threads=4)
        _, g_single = run_and_graph(program, machine=small_machine(4), threads=1)
        report = work_deviation(g_multi, g_single)
        assert set(report.deviation) <= set(g_single.grains)


class TestInflation:
    def test_contended_memory_inflates(self):
        """Work inflation appears under concurrency on one NUMA node."""
        program = memory_hungry_program(24)
        multi = run_program(program, machine=Machine.paper_testbed(), num_threads=24)
        single = run_program(program, machine=Machine.paper_testbed(), num_threads=1)
        report = work_deviation(
            build_grain_graph(multi.trace), build_grain_graph(single.trace)
        )
        assert report.median() > 1.1
        assert report.inflated_fraction(1.2) > 0.5

    def test_threshold_refinement(self):
        """The botsspar move: lowering the threshold exposes more."""
        program = memory_hungry_program(24)
        multi = run_program(program, machine=Machine.paper_testbed(), num_threads=24)
        single = run_program(program, machine=Machine.paper_testbed(), num_threads=1)
        report = work_deviation(
            build_grain_graph(multi.trace), build_grain_graph(single.trace)
        )
        assert len(report.inflated(1.2)) >= len(report.inflated(2.0))

    def test_empty_report(self):
        from repro.core.nodes import GrainGraph

        report = work_deviation(GrainGraph(), GrainGraph())
        assert report.median() == 1.0
        assert report.inflated_fraction() == 0.0
