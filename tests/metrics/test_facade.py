"""Tests for the one-call MetricSet facade."""

import math

from helpers import binary_tree, run_and_graph, small_machine

from repro.metrics.facade import MetricSet


class TestMetricSet:
    def setup_method(self):
        program = binary_tree(4, leaf_cycles=2000)
        _, self.graph = run_and_graph(
            program, machine=small_machine(4), threads=4
        )
        _, self.reference = run_and_graph(
            program, machine=small_machine(4), threads=1
        )
        self.metrics = MetricSet.compute(self.graph, reference=self.reference)

    def test_per_grain_complete(self):
        assert set(self.metrics.per_grain) == set(self.graph.grains)

    def test_all_fields_populated(self):
        gm = self.metrics.per_grain["t:0/0"]
        assert gm.exec_time > 0
        assert gm.parallel_benefit > 0
        assert gm.instantaneous_parallelism >= 1
        assert gm.scatter >= 0.0
        assert gm.work_deviation is not None

    def test_critical_path_grains_marked(self):
        on_path = [g for g in self.metrics.per_grain.values() if g.on_critical_path]
        assert on_path

    def test_without_reference_no_deviation(self):
        metrics = MetricSet.compute(self.graph)
        assert metrics.deviation is None
        assert all(
            g.work_deviation is None for g in metrics.per_grain.values()
        )

    def test_benefit_matches_standalone(self):
        from repro.metrics.parallel_benefit import parallel_benefit_all

        standalone = parallel_benefit_all(self.graph)
        for gid, gm in self.metrics.per_grain.items():
            if math.isfinite(standalone[gid]):
                assert gm.parallel_benefit == standalone[gid]

    def test_graph_level_results_present(self):
        assert self.metrics.load_balance.value >= 0
        assert self.metrics.parallelism.peak >= 1
        assert self.metrics.critical_path.length_cycles > 0
