"""Tests for the critical-path metric."""

from helpers import LOC, binary_tree, leaf, run_and_graph, small_machine

from repro.machine.cost import WorkRequest
from repro.metrics.critical_path import critical_path
from repro.runtime.actions import Spawn, TaskWait, Work
from repro.runtime.api import Program


class TestCriticalPath:
    def test_never_exceeds_makespan(self):
        result, graph = run_and_graph(
            binary_tree(5), machine=small_machine(4), threads=4
        )
        cp = critical_path(graph)
        assert 0 < cp.length_cycles <= result.makespan_cycles

    def test_serial_program_cp_equals_makespan_work(self):
        def main():
            yield Work(WorkRequest(cycles=5000))

        result, graph = run_and_graph(
            Program("serial", main), machine=small_machine(2), threads=1
        )
        cp = critical_path(graph)
        assert cp.length_cycles == 5000

    def test_path_follows_longest_child(self):
        def main():
            yield Spawn(leaf(100), loc=LOC)
            yield Spawn(leaf(90_000), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("skew", main), machine=small_machine(2), threads=2
        )
        cp = critical_path(graph)
        assert "t:0/1" in cp.grain_ids(graph)  # the heavy child
        assert cp.length_cycles >= 90_000

    def test_path_is_connected(self):
        _, graph = run_and_graph(
            binary_tree(4), machine=small_machine(2), threads=2
        )
        cp = critical_path(graph)
        succs = {
            nid: {dst for dst, _ in graph.successors(nid)}
            for nid in graph.nodes
        }
        for a, b in zip(cp.node_ids, cp.node_ids[1:]):
            assert b in succs[a]

    def test_edge_set_matches_path(self):
        _, graph = run_and_graph(
            binary_tree(3), machine=small_machine(2), threads=2
        )
        cp = critical_path(graph)
        assert len(cp.edge_set) == len(cp.node_ids) - 1

    def test_deterministic(self):
        _, graph = run_and_graph(
            binary_tree(4), machine=small_machine(2), threads=2
        )
        assert critical_path(graph).node_ids == critical_path(graph).node_ids

    def test_empty_graph(self):
        from repro.core.nodes import GrainGraph

        cp = critical_path(GrainGraph())
        assert cp.length_cycles == 0
        assert cp.node_ids == []
