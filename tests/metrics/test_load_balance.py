"""Tests for the load-balance metric (Sec. 3.2, Fig. 3g)."""

import pytest

from helpers import loop_program, run_and_graph, small_machine

from repro.metrics.load_balance import chains, load_balance
from repro.runtime.loops import Schedule


class TestChains:
    def test_loop_chains_are_per_thread(self):
        _, graph = run_and_graph(
            loop_program(iterations=20, chunk=4, threads=2),
            machine=small_machine(2),
            threads=2,
        )
        loop_chains = chains(graph, loop_id=0)
        assert len(loop_chains) == 2
        # Fig. 3b split: thread 0 runs 3 chunks, thread 1 runs 2.
        assert sorted(len(c) for c in loop_chains) == [2, 3]

    def test_chains_ordered_by_time(self):
        _, graph = run_and_graph(
            loop_program(iterations=12, chunk=2, threads=2),
            machine=small_machine(2),
            threads=2,
        )
        for chain in chains(graph, loop_id=0):
            starts = [g.first_start for g in chain]
            assert starts == sorted(starts)

    def test_task_grains_are_singleton_chains(self):
        from helpers import binary_tree

        _, graph = run_and_graph(
            binary_tree(3), machine=small_machine(2), threads=2
        )
        assert all(len(c) == 1 for c in chains(graph))


class TestLoadBalance:
    def test_uniform_loop_is_balanced(self):
        _, graph = run_and_graph(
            loop_program(iterations=40, chunk=1, threads=4,
                         cycles_of=lambda i: 1000),
            machine=small_machine(4),
            threads=4,
        )
        lb = load_balance(graph, loop_id=0)
        assert lb.value == pytest.approx(0.1, abs=0.05)  # one grain vs chains
        assert lb.num_chains == 4

    def test_fig3g_definition(self):
        """LB = longest grain / median chain length, computed by hand for
        a 2-thread loop with one heavy chunk."""
        heavy = {0}

        def cost(i):
            return 50_000 if i in heavy else 1000

        _, graph = run_and_graph(
            loop_program(iterations=8, chunk=1, threads=2,
                         schedule=Schedule.DYNAMIC, cycles_of=cost),
            machine=small_machine(2),
            threads=2,
        )
        lb = load_balance(graph, loop_id=0)
        chain_sums = sorted(lb.chain_lengths)
        expected_median = (chain_sums[0] + chain_sums[1]) / 2
        assert lb.median_chain_cycles == pytest.approx(expected_median)
        assert lb.longest_grain_cycles == 50_000
        assert lb.value == pytest.approx(50_000 / expected_median)

    def test_skew_raises_load_balance(self):
        def skewed(i):
            return 100_000 if i == 7 else 500

        _, graph = run_and_graph(
            loop_program(iterations=64, chunk=1, threads=4,
                         schedule=Schedule.DYNAMIC, cycles_of=skewed),
            machine=small_machine(4),
            threads=4,
        )
        lb = load_balance(graph, loop_id=0)
        assert lb.value > 4.0
        assert not lb.balanced

    def test_fewer_threads_improve_balance(self):
        """The Freqmine effect (Fig. 10): the same skewed loop is balanced
        on fewer cores because every chain absorbs more small work."""
        def skewed(i):
            return 60_000 if i in (5, 33) else 800

        def run(threads):
            _, graph = run_and_graph(
                loop_program(iterations=128, chunk=1, threads=threads,
                             schedule=Schedule.DYNAMIC, cycles_of=skewed),
                machine=small_machine(8),
                threads=8,
            )
            return load_balance(graph, loop_id=0).value

        assert run(2) < run(8) / 2

    def test_empty_graph(self):
        from repro.core.nodes import GrainGraph

        lb = load_balance(GrainGraph())
        assert lb.value == 1.0
        assert lb.num_chains == 0

    def test_longest_grain_identified(self):
        def skewed(i):
            return 70_000 if i == 3 else 100

        _, graph = run_and_graph(
            loop_program(iterations=16, chunk=1, threads=2,
                         schedule=Schedule.DYNAMIC, cycles_of=skewed),
            machine=small_machine(2),
            threads=2,
        )
        lb = load_balance(graph, loop_id=0)
        assert "3-4" in lb.longest_grain  # iteration range [3, 4)
