"""Tests for per-definition summaries and memory metrics."""

import math

from helpers import LOC, run_and_graph, small_machine

from repro.common import SourceLocation
from repro.machine.cost import Access, WorkRequest
from repro.machine.memory import FirstTouch
from repro.metrics.memory import memory_report
from repro.metrics.summary import (
    format_definition_table,
    per_definition_summary,
)
from repro.runtime.actions import Alloc, Spawn, TaskWait, Work
from repro.runtime.api import Program

LOC_A = SourceLocation("app.c", 10, "alpha")
LOC_B = SourceLocation("app.c", 20, "beta")


def two_definition_program():
    def alpha():
        yield Work(WorkRequest(cycles=10_000))

    def beta():
        yield Work(WorkRequest(cycles=50))

    def main():
        for _ in range(3):
            yield Spawn(alpha, loc=LOC_A)
        for _ in range(5):
            yield Spawn(beta, loc=LOC_B)
        yield TaskWait()

    return Program("two_defs", main)


class TestDefinitionSummary:
    def test_counts_per_definition(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        rows = {r.definition: r for r in per_definition_summary(graph)}
        assert rows["app.c:10(alpha)"].count == 3
        assert rows["app.c:20(beta)"].count == 5

    def test_ordered_by_work_share(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        rows = per_definition_summary(graph)
        assert rows[0].definition == "app.c:10(alpha)"
        assert rows[0].work_share > 0.9

    def test_low_benefit_concentrated_in_tiny_definition(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        rows = {r.definition: r for r in per_definition_summary(graph)}
        assert rows["app.c:20(beta)"].low_benefit_fraction == 1.0
        assert rows["app.c:10(alpha)"].low_benefit_fraction == 0.0

    def test_work_shares_sum_to_one(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        assert sum(r.work_share for r in per_definition_summary(graph)) == 1.0

    def test_table_formatting(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        text = format_definition_table(per_definition_summary(graph))
        assert "alpha" in text
        assert "definition" in text.splitlines()[0]

    def test_inflation_column(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        deviation = {gid: 3.0 for gid in graph.grains}
        rows = per_definition_summary(graph, deviation=deviation)
        assert all(r.inflated_count == r.count for r in rows)


class TestMemoryReport:
    def test_compute_only_grains_have_infinite_mhu(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        report = memory_report(graph)
        assert all(math.isinf(v) for v in report.mhu.values())
        assert report.poor_mhu_fraction() == 0.0

    def test_memory_bound_grains_flagged(self):
        def hog(rid):
            def body():
                yield Work(
                    WorkRequest(
                        cycles=100,
                        accesses=(Access(rid, 1 << 18, pattern=0.3),),
                    )
                )

            return body

        def main():
            region = yield Alloc("r", 1 << 24, FirstTouch(0))
            for _ in range(4):
                yield Spawn(hog(region.region_id), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("hogs", main), machine=None, threads=8
        )
        report = memory_report(graph)
        flagged = report.poor_mhu(2.0)
        assert len(flagged) == 4
        assert all(v < 2.0 for v in flagged.values())

    def test_miss_ratio_populated(self):
        def main():
            region = yield Alloc("r", 1 << 20, FirstTouch(0))
            yield Work(
                WorkRequest(cycles=10, accesses=(Access(region.region_id, 4096),))
            )

        _, graph = run_and_graph(Program("m", main), machine=None, threads=1)
        report = memory_report(graph)
        assert report.miss_ratio["t:0"] > 0.0

    def test_median_mhu_finite_only(self):
        _, graph = run_and_graph(
            two_definition_program(), machine=small_machine(2), threads=2
        )
        assert math.isinf(memory_report(graph).median_mhu())
