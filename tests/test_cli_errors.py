"""User-input errors must exit 2 with one friendly line on stderr —
never a raw traceback (the `--flavor NOPE` bugfix)."""

import pytest

from repro.cli import main


def expect_exit_2(argv, capsys, fragment):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert err.startswith("grain-graphs: error:"), err
    assert fragment in err
    assert "Traceback" not in err
    return err


class TestUnknownFlavor:
    def test_analyze(self, capsys):
        err = expect_exit_2(
            ["analyze", "fib", "--flavor", "NOPE"], capsys, "NOPE"
        )
        assert err.count("\n") == 1  # exactly one line
        assert "MIR" in err  # lists the valid choices

    def test_lint(self, capsys):
        expect_exit_2(["lint", "fib", "--flavor", "NOPE"], capsys, "NOPE")

    def test_study_matrix_point(self, capsys):
        expect_exit_2(
            ["study", "--matrix", "fib:NOPE:4"], capsys, "NOPE"
        )

    def test_bench_matrix_point(self, capsys):
        expect_exit_2(
            ["bench", "--matrix", "fig3a:NOPE:2"], capsys, "NOPE"
        )

    def test_flavor_error_precedes_any_simulation(self, capsys):
        from repro.runtime.engine import engine_invocations

        before = engine_invocations()
        expect_exit_2(
            ["study", "--matrix", "fig3a:MIR:2,fig3a:NOPE:2"], capsys, "NOPE"
        )
        assert engine_invocations() == before


class TestUnknownProgram:
    def test_analyze(self, capsys):
        expect_exit_2(["analyze", "nosuch"], capsys, "nosuch")

    def test_lint(self, capsys):
        expect_exit_2(["lint", "nosuch"], capsys, "nosuch")

    def test_check(self, capsys):
        expect_exit_2(["check", "nosuch"], capsys, "nosuch")

    def test_speedups(self, capsys):
        expect_exit_2(["speedups", "nosuch"], capsys, "nosuch")

    def test_study(self, capsys):
        expect_exit_2(
            ["study", "--matrix", "nosuch:MIR:2"], capsys, "nosuch"
        )

    def test_bench(self, capsys):
        expect_exit_2(
            ["bench", "--matrix", "nosuch:MIR:2"], capsys, "nosuch"
        )


class TestMalformedStudyInput:
    def test_bad_matrix_spec(self, capsys):
        expect_exit_2(["study", "--matrix", "a:b:c:d"], capsys, "a:b:c:d")

    def test_empty_matrix(self, capsys):
        expect_exit_2(["study", "--matrix", ","], capsys, "empty")

    def test_check_without_programs(self, capsys):
        expect_exit_2(["check"], capsys, "--all")
