import sys
from pathlib import Path

# Make tests/helpers.py importable as `helpers` from nested test dirs.
sys.path.insert(0, str(Path(__file__).parent))
