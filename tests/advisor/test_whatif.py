"""Causal what-if projection: the three pinned guarantees.

1. *Identity*: at ``k=1`` the projection reproduces the baseline
   :func:`repro.staticc.bracket` byte-for-byte on every registered
   program — the identity weights drive the same critical-path dynamic
   program with the same tie-breaks, so any drift is a real bug in one
   of the two paths.
2. *Monotonicity*: projected span, work, and pessimistic bound never
   increase with ``k``; the projected win never decreases.
3. *Purity*: projecting never touches the discrete-event engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advisor import (
    AdvisorError,
    known_targets,
    parse_what_if,
    project,
    resolve_target,
)
from repro.apps.registry import PROGRAMS, resolve_small
from repro.runtime.engine import engine_invocations
from repro.runtime.flavors import GCC, ICC, MIR
from repro.staticc import bracket, expand_program


class TestIdentityProjection:
    def test_k1_reproduces_bracket_for_every_program(self):
        """The acceptance pin: k=1 over '*' equals bracket() exactly."""
        before = engine_invocations()
        for name in sorted(PROGRAMS):
            model = expand_program(resolve_small(name))
            base = bracket(model, MIR, 8)
            proj = project(model, MIR, 8, "*", k=1.0)
            assert proj.bounds == base, name
            assert proj.work_cycles == model.work_cycles, name
            assert proj.win_cycles == 0, name
            assert proj.speedup_bracket == (1.0, 1.0), name
        assert engine_invocations() == before

    @pytest.mark.parametrize("flavor", [MIR, ICC, GCC])
    @pytest.mark.parametrize("threads", [1, 8, 48])
    def test_k1_matches_across_flavors_and_teams(self, flavor, threads):
        model = expand_program(resolve_small("sort"))
        base = bracket(model, flavor, threads)
        proj = project(model, flavor, threads, "*", k=1.0)
        assert proj.bounds == base
        assert proj.flavor == flavor.name

    def test_k1_per_grain_target_is_also_identity(self):
        model = expand_program(resolve_small("fig3a"))
        base = bracket(model, MIR, 8)
        proj = project(model, MIR, 8, "fig3.c:4(bar)", k=1.0)
        assert proj.bounds == base


class TestMonotonicity:
    @settings(deadline=None, max_examples=20)
    @given(
        name=st.sampled_from(["fib", "fig3a", "fig3b", "sort"]),
        k1=st.floats(1.0, 16.0),
        k2=st.floats(1.0, 16.0),
    )
    def test_projections_monotone_in_k(self, name, k1, k2):
        if k1 > k2:
            k1, k2 = k2, k1
        model = expand_program(resolve_small(name))
        lo = project(model, MIR, 8, "*", k=k1)
        hi = project(model, MIR, 8, "*", k=k2)
        assert hi.span_lower <= lo.span_lower
        assert hi.work_cycles <= lo.work_cycles
        assert hi.work_upper <= lo.work_upper
        assert hi.win_cycles >= lo.win_cycles
        assert hi.span_speedup >= lo.span_speedup
        assert hi.work_speedup >= lo.work_speedup

    def test_critical_path_reroutes_instead_of_scaling_linearly(self):
        """Scaling one task k× shifts the longest path to the *other*
        branch — the projected span drops, but by less than k (the
        causal-profiler effect the weights override exists for)."""
        model = expand_program(resolve_small("fig3a"))
        target = next(
            t for t in known_targets(model) if "bar" in t
        )
        base = bracket(model, MIR, 2)
        proj = project(model, MIR, 2, target, k=4.0)
        assert proj.span_lower < base.span_lower
        assert proj.span_lower > base.span_lower / 4.0


class TestParseWhatIf:
    def test_good_specs(self):
        assert parse_what_if("solve=4") == ("solve", 4.0)
        assert parse_what_if(" matrix = 2.5 ") == ("matrix", 2.5)

    def test_nested_equals_splits_at_first(self):
        with pytest.raises(AdvisorError):
            parse_what_if("a=b=1")  # 'b=1' is not a number

    @pytest.mark.parametrize(
        "spec", ["", "solve", "=4", "solve=", "solve=fast"]
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(AdvisorError):
            parse_what_if(spec)

    @pytest.mark.parametrize("spec", ["solve=0", "solve=0.5", "solve=-2"])
    def test_k_below_one_rejected(self, spec):
        with pytest.raises(AdvisorError, match=">= 1"):
            parse_what_if(spec)


class TestResolveTarget:
    def test_star_covers_every_compute_grain(self):
        model = expand_program(resolve_small("fib"))
        scenario = resolve_target(model, "*")
        assert scenario.node_ids
        proj = project(model, MIR, 8, scenario, k=10.0)
        assert proj.scaled_nodes == len(scenario.node_ids)

    def test_task_definition_scales_all_instances(self):
        model = expand_program(resolve_small("fib"))
        definition = next(
            t.definition
            for t in model.tasks.values()
            if t.definition and t.path[1:]
        )
        scenario = resolve_target(model, definition)
        assert len(scenario.node_ids) > 1

    def test_unknown_target_lists_known_names(self):
        model = expand_program(resolve_small("fib"))
        with pytest.raises(AdvisorError) as excinfo:
            resolve_target(model, "nosuch")
        message = str(excinfo.value)
        assert "nosuch" in message
        assert "*" in message
        assert "fib.c:33(fib)" in message

    def test_every_known_target_resolves_everywhere(self):
        """The friendly error only suggests names that actually work."""
        for name in sorted(PROGRAMS):
            model = expand_program(resolve_small(name))
            for target in known_targets(model):
                scenario = resolve_target(model, target)
                assert scenario.target == target, (name, target)
