"""``grain-graphs advise``: exit codes, JSON, purity, and the shared
``--fail-on`` plumbing it now shares with ``lint``/``check``."""

import json

import pytest

from repro.advisor import AdvisorReport
from repro.apps.registry import PROGRAMS, resolve_small
from repro.cli import main
from repro.lint import Severity
from repro.runtime.engine import engine_invocations


def expect_exit_2(argv, capsys, fragment):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert err.startswith("grain-graphs: error:"), err
    assert fragment in err
    assert "Traceback" not in err
    return err


class TestAdviseCommand:
    def test_program_with_findings_exits_zero_by_default(self, capsys):
        assert main(["advise", "fig3b"]) == 0
        out = capsys.readouterr().out
        assert "do-all" in out
        assert "ranked by projected win" in out

    def test_fail_on_info_gates_on_pattern_findings(self):
        assert main(["advise", "fig3b", "--fail-on", "info"]) == 1

    def test_all_programs_exit_zero_at_default_gate(self):
        # pattern.* findings are INFO across the board; even `racy`
        # advises green at the default --fail-on error.
        assert main(["advise", "--all"]) == 0

    def test_never_invokes_engine(self):
        before = engine_invocations()
        main(["advise", "--all", "--threads", "8"])
        assert engine_invocations() == before

    def test_what_if_appears_in_output(self, capsys):
        assert main(
            ["advise", "fig3a", "--what-if", "fig3.c:4(bar)=4"]
        ) == 0
        out = capsys.readouterr().out
        assert "what-if fig3.c:4(bar)=4" in out
        assert "speedup" in out

    def test_json_roundtrips(self, capsys):
        assert main(
            ["advise", "fig3b", "--json", "--what-if", "*=2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "fig3b"
        assert payload["recommendations"]
        rec = payload["recommendations"][0]
        assert rec["rank"] == 1
        assert rec["rule_id"].startswith("pattern.")
        [what_if] = payload["what_ifs"]
        assert what_if["k"] == 2.0
        assert (
            what_if["projected"]["span_lower"]
            <= what_if["baseline"]["span_lower"]
        )

    def test_json_multiple_programs_is_a_list(self, capsys):
        assert main(["advise", "fig3a", "fig3b", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert [p["program"] for p in parsed] == ["fig3a", "fig3b"]

    def test_json_k1_what_if_matches_baseline(self, capsys):
        """The CLI-level identity pin: --what-if '*=1' projects the
        baseline bracket unchanged."""
        assert main(["advise", "sort", "--json", "--what-if", "*=1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        [what_if] = payload["what_ifs"]
        assert what_if["projected"] == what_if["baseline"]
        assert what_if["win_cycles"] == 0

    def test_ranking_is_by_descending_win(self, capsys):
        assert main(["advise", "--all", "--json"]) == 0
        for payload in json.loads(capsys.readouterr().out):
            wins = [r["win_cycles"] for r in payload["recommendations"]]
            assert wins == sorted(wins, reverse=True), payload["program"]


class TestAdviseErrors:
    def test_no_programs_rejected(self, capsys):
        expect_exit_2(["advise"], capsys, "--all")

    def test_unknown_program_rejected(self, capsys):
        expect_exit_2(["advise", "nosuch"], capsys, "nosuch")

    def test_unknown_flavor_rejected(self, capsys):
        expect_exit_2(
            ["advise", "fig3b", "--flavor", "NOPE"], capsys, "NOPE"
        )

    def test_malformed_what_if_rejected(self, capsys):
        expect_exit_2(
            ["advise", "fig3b", "--what-if", "oops"], capsys, "TARGET=K"
        )

    def test_what_if_factor_below_one_rejected(self, capsys):
        expect_exit_2(
            ["advise", "fig3b", "--what-if", "*=0.5"], capsys, ">= 1"
        )

    def test_unknown_what_if_target_lists_known(self, capsys):
        err = expect_exit_2(
            ["advise", "fig3a", "--what-if", "nosuch=2"], capsys, "nosuch"
        )
        assert "known targets" in err
        assert "fig3.c:4(bar)" in err


class TestSharedFailOnPlumbing:
    """The dedup satellite: lint, check, and advise share one label
    parser and one exit-code mapping."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["advise", "fig3b", "--fail-on", "bogus"],
            ["check", "fig3b", "--fail-on", "bogus"],
            ["lint", "fig3b", "--fail-on", "bogus"],
        ],
        ids=["advise", "check", "lint"],
    )
    def test_unknown_label_is_a_friendly_exit_2(self, argv, capsys):
        err = expect_exit_2(argv, capsys, "bogus")
        assert "info" in err  # lists the valid labels

    def test_bad_label_precedes_any_analysis(self, capsys):
        before = engine_invocations()
        expect_exit_2(
            ["lint", "fig3b", "--fail-on", "bogus"], capsys, "bogus"
        )
        assert engine_invocations() == before

    def test_every_severity_label_accepted_by_advise(self):
        for severity in Severity:
            code = main(["advise", "fig3b", "--fail-on", severity.label])
            assert code == (1 if severity is Severity.INFO else 0)


class TestWorkflowIntegration:
    def test_profile_program_advise_attaches_report(self):
        from repro.workflow import profile_program

        study = profile_program(
            resolve_small("fig3b"), num_threads=2, advise=True
        )
        assert isinstance(study.advisor_report, AdvisorReport)
        assert study.advisor_report.num_threads == 2
        titles = [a.title for a in study.advice]
        assert any("pattern" in t for t in titles)

    def test_profile_program_default_skips_advisor(self):
        from repro.workflow import profile_program

        study = profile_program(resolve_small("fig3b"), num_threads=2)
        assert study.advisor_report is None

    def test_static_check_model_is_reused(self):
        """With static_check and advise both on, the advisor reuses the
        checked model instead of re-expanding (no advisor.expand span)."""
        from repro.obs import registry as obs
        from repro.workflow import profile_program

        obs.reset()
        previous = obs.set_enabled(True)
        try:
            profile_program(
                resolve_small("fig3b"),
                num_threads=2,
                static_check=True,
                advise=True,
            )
            names = set(obs.snapshot().spans)
        finally:
            obs.set_enabled(previous)
            obs.reset()
        assert "advisor.run" in names
        assert "advisor.patterns" in names
        assert "advisor.expand" not in names

    def test_analyze_cli_advise_flag(self, capsys):
        assert main(
            ["analyze", "fig3b", "--threads", "2", "--advise",
             "--no-reference"]
        ) == 0
        out = capsys.readouterr().out
        assert "ADVICE:" in out
