"""Pattern detectors: one synthetic program per pattern, plus the
registry-wide determinism and engine-purity pins.

Only ``micro.racy`` declares footprints among the registered apps, so
pipeline/task-parallelism/geometric get purpose-built programs whose
stage structure (``TaskWait``-separated root fragments, footprinted
loops) exercises exactly one detector each — and the mutual-exclusivity
argument (a RAW dependence implies non-disjointness) gets pinned both
ways.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advisor import advise_program, detect_patterns
from repro.advisor.patterns import (
    PATTERN_RULES,
    PatternKind,
    detect_do_all,
    detect_geometric,
    detect_pipeline,
    detect_reduction,
    detect_task_parallelism,
)
from repro.apps.registry import PROGRAMS, resolve_small
from repro.common import SourceLocation
from repro.lint.diagnostics import Severity
from repro.machine.cost import Access, WorkRequest
from repro.runtime.actions import Alloc, Footprint, ParallelFor, TaskWait, Work
from repro.runtime.api import Program
from repro.runtime.engine import engine_invocations
from repro.runtime.loops import LoopSpec
from repro.staticc import check_program, expand_program

LOC = SourceLocation("synth.c", 1, "main")


def pipeline_program() -> Program:
    """Three heavy root stages chained a -> b -> c by RAW dataflow."""

    def main():
        yield Alloc("a", 1024)
        yield Alloc("b", 1024)
        yield Alloc("c", 1024)
        yield TaskWait()
        yield Work(WorkRequest(cycles=5000), writes=("a",))
        yield TaskWait()
        yield Work(WorkRequest(cycles=3000), reads=("a",), writes=("b",))
        yield TaskWait()
        yield Work(WorkRequest(cycles=2000), reads=("b",), writes=("c",))

    return Program("synth-pipeline", main)


def independent_stages_program() -> Program:
    """Two heavy root stages with declared, disjoint footprints."""

    def main():
        yield Alloc("a", 1024)
        yield Alloc("b", 1024)
        yield TaskWait()
        yield Work(WorkRequest(cycles=6000), reads=("a",), writes=("a",))
        yield TaskWait()
        yield Work(WorkRequest(cycles=4000), reads=("b",), writes=("b",))

    return Program("synth-independent", main)


def undeclared_stages_program() -> Program:
    """Two heavy root stages with no footprints at all: vacuously
    disjoint, which the finding must caveat."""

    def main():
        yield Work(WorkRequest(cycles=3000))
        yield TaskWait()
        yield Work(WorkRequest(cycles=2000))

    return Program("synth-undeclared", main)


def geometric_program(iterations: int = 4) -> Program:
    """Each iteration writes its own 256-byte block of one region."""

    def main():
        yield ParallelFor(
            LoopSpec(
                iterations=iterations,
                chunk_size=1,
                body=lambda i: WorkRequest(
                    cycles=2000,
                    accesses=(Access(region_id=0, nbytes=256),),
                ),
                footprint=lambda s, e: (
                    (),
                    (Footprint("grid", s * 256, e * 256),),
                ),
                loc=SourceLocation("synth.c", 10, "grid"),
            )
        )

    return Program("synth-geometric", main)


def blocked_loop_program() -> Program:
    """Every iteration writes the same 8 bytes: not a do-all."""

    def main():
        yield ParallelFor(
            LoopSpec(
                iterations=4,
                chunk_size=1,
                body=lambda i: WorkRequest(cycles=2000),
                footprint=lambda s, e: ((), (Footprint("acc", 0, 8),)),
                loc=SourceLocation("synth.c", 20, "acc_loop"),
            )
        )

    return Program("synth-blocked-loop", main)


class TestPipeline:
    def test_raw_chain_detected_with_win_and_blocking(self):
        model = expand_program(pipeline_program())
        findings = detect_pipeline(model)
        assert len(findings) == 1
        f = findings[0]
        assert f.pattern is PatternKind.PIPELINE
        assert f.win_cycles == 5000  # (5000+3000+2000) - max(5000)
        assert f.speedup_factor == 10000 / 5000
        assert "'a'" in f.blocking and "'b'" in f.blocking
        assert len(f.affected_nodes) == 3

    def test_raw_chain_is_not_task_parallel(self):
        model = expand_program(pipeline_program())
        assert detect_task_parallelism(model) == []


class TestTaskParallelism:
    def test_disjoint_stages_detected(self):
        model = expand_program(independent_stages_program())
        findings = detect_task_parallelism(model)
        assert len(findings) == 1
        f = findings[0]
        assert f.pattern is PatternKind.TASK_PARALLELISM
        assert f.win_cycles == 4000  # (6000+4000) - max(6000)
        assert f.blocking == ""
        assert "caveat" not in f.detail

    def test_disjoint_stages_are_not_a_pipeline(self):
        model = expand_program(independent_stages_program())
        assert detect_pipeline(model) == []

    def test_undeclared_footprints_caveated(self):
        model = expand_program(undeclared_stages_program())
        findings = detect_task_parallelism(model)
        assert len(findings) == 1
        assert "asserted, not proven" in findings[0].detail


class TestGeometric:
    def test_disjoint_block_writes_detected(self):
        model = expand_program(geometric_program())
        findings = detect_geometric(model)
        assert len(findings) == 1
        f = findings[0]
        assert f.pattern is PatternKind.GEOMETRIC
        assert "'grid'" in f.detail
        assert f.win_cycles > 0  # cost-model accesses charge stalls

    def test_geometric_loop_is_also_a_clean_do_all(self):
        model = expand_program(geometric_program())
        [f] = detect_do_all(model)
        assert f.blocking == ""

    def test_locality_win_stays_inside_the_work_bound(self):
        """The NUMA win is charged against the pessimistic stall term,
        so it can never exceed the work bound's overhead headroom."""
        from repro.runtime.flavors import MIR
        from repro.staticc import bracket

        model = expand_program(geometric_program())
        for threads in (2, 8, 48):
            [f] = detect_geometric(model, None, threads)
            bounds = bracket(model, MIR, threads)
            headroom = bounds.work_upper - model.work_cycles
            assert f.win_cycles <= headroom, threads

    def test_shared_write_range_is_not_geometric(self):
        model = expand_program(blocked_loop_program())
        assert detect_geometric(model) == []


class TestDoAll:
    def test_cross_iteration_conflict_blocks_the_loop(self):
        model = expand_program(blocked_loop_program())
        [f] = detect_do_all(model)
        assert f.win_cycles == 0
        assert "'acc'" in f.blocking
        assert "NOT" in f.detail

    def test_binding_team_cap_quantified(self):
        model = expand_program(resolve_small("fig3b"))
        findings = detect_do_all(model, None, 8)
        capped = [f for f in findings if "raising the team cap" in f.benefit]
        assert capped and capped[0].win_cycles > 0


class TestReduction:
    def test_racy_accumulation_detected(self):
        model = expand_program(resolve_small("racy"))
        findings = detect_reduction(model)
        assert len(findings) == 1
        f = findings[0]
        assert f.pattern is PatternKind.REDUCTION
        assert "write/write" in f.blocking
        assert f.win_cycles > 0
        assert "privatize" in f.fix_hint

    def test_ordered_variant_has_no_reduction(self):
        model = expand_program(resolve_small("racy-fixed"))
        assert detect_reduction(model) == []


class TestLintIntegration:
    def test_pattern_passes_run_in_static_check(self):
        _, report = check_program(resolve_small("fig3b"))
        ran = {rule for rule, _ in report.passes_run}
        assert set(PATTERN_RULES) <= ran
        pattern_diags = [
            d for d in report.diagnostics
            if d.rule_id.startswith("pattern.")
        ]
        assert pattern_diags
        assert all(d.severity is Severity.INFO for d in pattern_diags)

    def test_check_exit_semantics_unchanged_by_patterns(self):
        """pattern.* findings are INFO: a clean program still gates
        green at --fail-on error/warning."""
        _, report = check_program(resolve_small("fig3b"))
        assert not report.at_or_above(Severity.WARNING)


class TestDeterminismAndPurity:
    @settings(deadline=None, max_examples=12)
    @given(name=st.sampled_from(sorted(PROGRAMS)))
    def test_detectors_deterministic_over_registry(self, name):
        first = detect_patterns(expand_program(resolve_small(name)))
        second = detect_patterns(expand_program(resolve_small(name)))
        assert first == second

    def test_advising_every_program_never_invokes_engine(self):
        before = engine_invocations()
        for name in sorted(PROGRAMS):
            advise_program(resolve_small(name), num_threads=8)
        assert engine_invocations() == before
