"""Tests for the working-set cache model."""

import pytest

from repro.machine.caches import LINE_SIZE, CacheConfig, CacheModel
from repro.machine.topology import opteron6172, small_smp


def make_model(private=1024, llc=4096, cores=2):
    return CacheModel(
        small_smp(cores), CacheConfig(private_bytes=private, llc_bytes=llc)
    )


class TestBasicBehaviour:
    def test_cold_access_misses_to_memory(self):
        model = make_model()
        result = model.access(0, region_id=1, nbytes=512)
        assert result.private_hit_lines == 0
        assert result.llc_hit_lines == 0
        assert result.memory_lines == -(-512 // LINE_SIZE)

    def test_repeated_access_hits_private(self):
        model = make_model()
        model.access(0, 1, 512)
        result = model.access(0, 1, 512)
        assert result.private_hit_lines == -(-512 // LINE_SIZE)
        assert result.memory_lines == 0

    def test_zero_bytes_is_noop(self):
        model = make_model()
        result = model.access(0, 1, 0)
        assert result.total_lines == 0

    def test_pattern_scales_hits(self):
        model = make_model()
        model.access(0, 1, 512)
        result = model.access(0, 1, 512, pattern=0.5)
        # Half the potential private hits are forfeited.
        assert result.private_hit_lines == -(-256 // LINE_SIZE)
        assert result.total_lines >= result.private_hit_lines

    def test_invalid_pattern_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.access(0, 1, 64, pattern=0.0)
        with pytest.raises(ValueError):
            model.access(0, 1, 64, pattern=1.5)


class TestCapacityAndEviction:
    def test_oversized_access_capped_at_capacity(self):
        model = make_model(private=1024, llc=2048)
        model.access(0, 1, 4096)
        assert model.private_resident(0, 1) == 1024

    def test_lru_eviction(self):
        model = make_model(private=1024, llc=8192)
        model.access(0, 1, 600)
        model.access(0, 2, 600)  # evicts region 1 (600 + 600 > 1024)
        assert model.private_resident(0, 1) == 0
        assert model.private_resident(0, 2) == 600

    def test_mru_region_survives(self):
        model = make_model(private=1024, llc=8192)
        model.access(0, 1, 400)
        model.access(0, 2, 400)
        model.access(0, 1, 400)  # touch region 1 again -> MRU
        model.access(0, 3, 400)  # evicts LRU region 2
        assert model.private_resident(0, 2) == 0
        assert model.private_resident(0, 1) == 400


class TestSharedLLC:
    def test_llc_shared_within_socket(self):
        topo = opteron6172()
        model = CacheModel(topo, CacheConfig(private_bytes=128, llc_bytes=1 << 20))
        model.access(0, 1, 4096)  # core 0 warms socket 0's LLC
        result = model.access(1, 1, 4096)  # same socket
        assert result.llc_hit_lines > 0
        assert result.memory_lines == 0

    def test_llc_not_shared_across_sockets(self):
        topo = opteron6172()
        model = CacheModel(topo, CacheConfig(private_bytes=128, llc_bytes=1 << 20))
        model.access(0, 1, 4096)
        result = model.access(12, 1, 4096)  # core on socket 1
        assert result.llc_hit_lines == 0
        assert result.memory_lines > 0

    def test_flush_clears_everything(self):
        model = make_model()
        model.access(0, 1, 512)
        model.flush()
        result = model.access(0, 1, 512)
        assert result.private_hit_lines == 0


class TestPrivacy:
    def test_private_cache_is_per_core(self):
        model = make_model(private=1024, llc=64)  # tiny LLC
        model.access(0, 1, 512)
        result = model.access(1, 1, 512)
        assert result.private_hit_lines == 0
