"""Tests for the analytic cost model."""

import pytest

from repro.machine import Machine, CostParams
from repro.machine.caches import LINE_SIZE
from repro.machine.cost import Access, WorkRequest
from repro.machine.memory import FirstTouch, RoundRobin


def paper_machine():
    return Machine.paper_testbed()


class TestPureCompute:
    def test_no_accesses_means_no_stalls(self):
        machine = paper_machine()
        outcome = machine.cost.charge(0, WorkRequest(cycles=1000))
        assert outcome.duration == 1000
        assert outcome.counters.stall_cycles == 0
        assert outcome.counters.compute_cycles == 1000

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            WorkRequest(cycles=-1)

    def test_access_validation(self):
        with pytest.raises(ValueError):
            Access(region_id=0, nbytes=-1)
        with pytest.raises(ValueError):
            Access(region_id=0, nbytes=64, pattern=0.0)


class TestMemoryCosts:
    def test_local_access_cheaper_than_remote(self):
        machine = paper_machine()
        local = machine.allocate("local", 1 << 20, FirstTouch(0))
        remote = machine.allocate("remote", 1 << 20, FirstTouch(7))
        req_local = WorkRequest(
            cycles=100, accesses=(Access(local.region_id, 1 << 16),)
        )
        req_remote = WorkRequest(
            cycles=100, accesses=(Access(remote.region_id, 1 << 16),)
        )
        # Core 0 lives on node 0; the remote region is on node 7.
        cost_local = machine.cost.charge(0, req_local).duration
        machine2 = machine.fresh()
        machine2.allocate("local", 1 << 20, FirstTouch(0))
        remote2 = machine2.allocate("remote", 1 << 20, FirstTouch(7))
        cost_remote = machine2.cost.charge(
            0, WorkRequest(cycles=100, accesses=(Access(remote2.region_id, 1 << 16),))
        ).duration
        assert cost_remote > cost_local

    def test_warm_cache_eliminates_stalls(self):
        machine = paper_machine()
        region = machine.allocate("r", 1 << 16, FirstTouch(0))
        req = WorkRequest(cycles=100, accesses=(Access(region.region_id, 4096),))
        cold = machine.cost.charge(0, req)
        warm = machine.cost.charge(0, req)
        assert warm.counters.stall_cycles < cold.counters.stall_cycles

    def test_counters_track_lines(self):
        machine = paper_machine()
        region = machine.allocate("r", 1 << 20, FirstTouch(0))
        nbytes = 64 * 100
        outcome = machine.cost.charge(
            0, WorkRequest(cycles=10, accesses=(Access(region.region_id, nbytes),))
        )
        assert outcome.counters.accesses == nbytes // LINE_SIZE
        assert outcome.counters.llc_misses == nbytes // LINE_SIZE  # all cold

    def test_remote_lines_counted_for_remote_region(self):
        machine = paper_machine()
        region = machine.allocate("r", 1 << 20, FirstTouch(5))
        outcome = machine.cost.charge(
            0, WorkRequest(cycles=10, accesses=(Access(region.region_id, 6400),))
        )
        assert outcome.counters.remote_lines > 0

    def test_duration_is_cycles_plus_stalls(self):
        machine = paper_machine()
        region = machine.allocate("r", 1 << 20, FirstTouch(0))
        outcome = machine.cost.charge(
            0, WorkRequest(cycles=500, accesses=(Access(region.region_id, 1 << 14),))
        )
        assert outcome.duration == 500 + outcome.counters.stall_cycles
        assert outcome.counters.cycles == outcome.duration


class TestContentionCoupling:
    def test_contended_node_raises_cost(self):
        machine = paper_machine()
        region = machine.allocate("r", 1 << 24, FirstTouch(0))
        req = WorkRequest(
            cycles=100, accesses=(Access(region.region_id, 1 << 18, pattern=0.3),)
        )
        baseline = machine.cost.charge(12, req).duration
        # Load node 0 heavily, then re-charge from a core with cold cache.
        machine.contention.register([10.0] + [0.0] * 7)
        machine.caches.flush()
        contended = machine.cost.charge(24, req).duration
        assert contended > baseline

    def test_node_weights_follow_placement(self):
        machine = paper_machine()
        rr = machine.allocate("rr", 1 << 20, RoundRobin())
        weights = machine.cost.node_weights([Access(rr.region_id, 4096)])
        assert len(weights) == 8
        assert sum(weights) == pytest.approx(1.0)
        assert max(weights) - min(weights) < 0.01

    def test_node_weights_empty_for_pure_compute(self):
        machine = paper_machine()
        assert machine.cost.node_weights([]) == [0.0] * 8


class TestParams:
    def test_mlp_must_be_positive(self):
        with pytest.raises(ValueError):
            CostParams(mlp=0)

    def test_machine_fresh_resets_state(self):
        machine = paper_machine()
        machine.allocate("r", 1024)
        machine.contention.register([1.0] + [0.0] * 7)
        fresh = machine.fresh()
        assert len(fresh.memory) == 0
        assert fresh.contention.load(0) == 0.0

    def test_seconds_conversion(self):
        machine = paper_machine()
        assert machine.seconds(2_100_000_000) == pytest.approx(1.0)
