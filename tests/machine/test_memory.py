"""Tests for memory regions and page placement."""

import pytest

from repro.machine.memory import (
    PAGE_SIZE,
    FirstTouch,
    MemoryMap,
    MemoryRegion,
    NodePinned,
    Placement,
    RoundRobin,
)


class TestRegions:
    def test_region_pages_round_up(self):
        region = MemoryRegion(0, "r", PAGE_SIZE + 1, FirstTouch(0))
        assert region.num_pages == 2

    def test_tiny_region_has_one_page(self):
        region = MemoryRegion(0, "r", 10, FirstTouch(0))
        assert region.num_pages == 1

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(0, "r", 0, FirstTouch(0))


class TestFirstTouch:
    def test_all_pages_on_touch_node(self):
        mm = MemoryMap(num_nodes=4)
        region = mm.allocate("a", 1 << 20, FirstTouch(2))
        fractions = mm.node_fractions(region.region_id)
        assert fractions == [0.0, 0.0, 1.0, 0.0]

    def test_default_placement_is_first_touch_node0(self):
        mm = MemoryMap(num_nodes=4)
        region = mm.allocate("a", 1 << 20)
        assert mm.node_fractions(region.region_id)[0] == 1.0

    def test_home_node(self):
        mm = MemoryMap(num_nodes=4)
        region = mm.allocate("a", 1 << 20, FirstTouch(3))
        assert mm.home_node(region.region_id) == 3


class TestRoundRobin:
    def test_even_split(self):
        mm = MemoryMap(num_nodes=4)
        region = mm.allocate("a", 8 * PAGE_SIZE, RoundRobin())
        assert mm.node_fractions(region.region_id) == [0.25] * 4

    def test_uneven_split_gives_extra_to_low_nodes(self):
        mm = MemoryMap(num_nodes=4)
        region = mm.allocate("a", 5 * PAGE_SIZE, RoundRobin())
        fractions = mm.node_fractions(region.region_id)
        assert fractions[0] == pytest.approx(2 / 5)
        assert fractions[1] == pytest.approx(1 / 5)

    def test_fractions_sum_to_one(self):
        mm = MemoryMap(num_nodes=8)
        region = mm.allocate("a", 1234567, RoundRobin())
        assert sum(mm.node_fractions(region.region_id)) == pytest.approx(1.0)


class TestNodePinned:
    def test_pinned_node(self):
        mm = MemoryMap(num_nodes=4)
        region = mm.allocate("a", 1 << 16, NodePinned(1))
        assert mm.node_fractions(region.region_id) == [0.0, 1.0, 0.0, 0.0]

    def test_describe(self):
        assert "pinned" in NodePinned(1).describe()
        assert "first-touch" in FirstTouch(0).describe()
        assert RoundRobin().describe() == "RoundRobin"


class TestMemoryMap:
    def test_ids_are_dense(self):
        mm = MemoryMap(num_nodes=2)
        a = mm.allocate("a", 100)
        b = mm.allocate("b", 100)
        assert (a.region_id, b.region_id) == (0, 1)

    def test_contains_and_len(self):
        mm = MemoryMap(num_nodes=2)
        a = mm.allocate("a", 100)
        assert a.region_id in mm
        assert 99 not in mm
        assert len(mm) == 1

    def test_iteration_yields_regions(self):
        mm = MemoryMap(num_nodes=2)
        mm.allocate("a", 100)
        mm.allocate("b", 200)
        assert [r.name for r in mm] == ["a", "b"]

    def test_region_lookup(self):
        mm = MemoryMap(num_nodes=2)
        a = mm.allocate("a", 100)
        assert mm.region(a.region_id).name == "a"

    def test_bad_placement_fractions_rejected(self):
        class Broken(Placement):
            def node_fractions(self, region, num_nodes):
                return [0.5] * num_nodes  # sums to > 1

        mm = MemoryMap(num_nodes=4)
        with pytest.raises(ValueError):
            mm.allocate("x", 100, Broken())
