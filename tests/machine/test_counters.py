"""Tests for PAPI-like counter sets."""

import math

from repro.machine.counters import CounterSet


class TestArithmetic:
    def test_add_creates_new(self):
        a = CounterSet(cycles=10, stall_cycles=4)
        b = CounterSet(cycles=5, stall_cycles=1)
        c = a + b
        assert c.cycles == 15
        assert c.stall_cycles == 5
        assert a.cycles == 10  # unchanged

    def test_iadd_mutates(self):
        a = CounterSet(cycles=10)
        a += CounterSet(cycles=3, l1_misses=2)
        assert a.cycles == 13
        assert a.l1_misses == 2

    def test_copy_is_independent(self):
        a = CounterSet(cycles=7)
        b = a.copy()
        b.cycles = 0
        assert a.cycles == 7


class TestSerialization:
    def test_dict_roundtrip(self):
        a = CounterSet(
            cycles=100, compute_cycles=60, stall_cycles=40,
            l1_misses=5, llc_misses=2, remote_lines=1, accesses=20,
        )
        assert CounterSet.from_dict(a.to_dict()) == a

    def test_from_dict_ignores_unknown_keys(self):
        c = CounterSet.from_dict({"cycles": 5, "bogus": 1})
        assert c.cycles == 5


class TestDerived:
    def test_mhu_ratio(self):
        c = CounterSet(compute_cycles=100, stall_cycles=50)
        assert c.memory_hierarchy_utilization == 2.0

    def test_mhu_without_stalls_is_infinite(self):
        c = CounterSet(compute_cycles=100, stall_cycles=0)
        assert math.isinf(c.memory_hierarchy_utilization)

    def test_mhu_below_paper_threshold_detectable(self):
        c = CounterSet(compute_cycles=10, stall_cycles=20)
        assert c.memory_hierarchy_utilization < 2.0

    def test_miss_ratio(self):
        c = CounterSet(l1_misses=5, accesses=20)
        assert c.miss_ratio == 0.25

    def test_miss_ratio_no_accesses(self):
        assert CounterSet().miss_ratio == 0.0
