"""Tests for the machine topology and NUMA distance table."""

import pytest

from repro.machine.topology import (
    LOCAL_DISTANCE,
    MachineTopology,
    opteron6172,
    small_smp,
)


class TestOpteron6172:
    def test_paper_machine_has_48_cores(self):
        topo = opteron6172()
        assert topo.num_cores == 48
        assert topo.sockets == 4
        assert topo.cores_per_socket == 12

    def test_two_numa_nodes_per_socket(self):
        topo = opteron6172()
        assert topo.num_nodes == 8
        assert topo.cores_per_node == 6

    def test_nominal_frequency(self):
        assert opteron6172().frequency_hz == 2_100_000_000


class TestPlacementLookups:
    def setup_method(self):
        self.topo = opteron6172()

    def test_socket_of_core_boundaries(self):
        assert self.topo.socket_of_core(0) == 0
        assert self.topo.socket_of_core(11) == 0
        assert self.topo.socket_of_core(12) == 1
        assert self.topo.socket_of_core(47) == 3

    def test_node_of_core(self):
        assert self.topo.node_of_core(0) == 0
        assert self.topo.node_of_core(5) == 0
        assert self.topo.node_of_core(6) == 1
        assert self.topo.node_of_core(47) == 7

    def test_cores_of_node_partition_all_cores(self):
        seen = []
        for node in range(self.topo.num_nodes):
            seen.extend(self.topo.cores_of_node(node))
        assert sorted(seen) == list(range(48))

    def test_cores_of_socket(self):
        assert list(self.topo.cores_of_socket(1)) == list(range(12, 24))

    def test_out_of_range_core_raises(self):
        with pytest.raises(ValueError):
            self.topo.socket_of_core(48)
        with pytest.raises(ValueError):
            self.topo.node_of_core(-1)


class TestDistances:
    def setup_method(self):
        self.topo = opteron6172()

    def test_local_distance(self):
        assert self.topo.node_distance(3, 3) == LOCAL_DISTANCE

    def test_same_socket_distance(self):
        # Nodes 0 and 1 share socket 0.
        assert self.topo.node_distance(0, 1) == self.topo.same_socket_distance

    def test_cross_socket_distance(self):
        assert self.topo.node_distance(0, 7) == self.topo.cross_socket_distance

    def test_distance_symmetry(self):
        for a in range(self.topo.num_nodes):
            for b in range(self.topo.num_nodes):
                assert self.topo.node_distance(a, b) == self.topo.node_distance(b, a)

    def test_core_distance_uses_node_table(self):
        assert self.topo.core_distance(0, 5) == LOCAL_DISTANCE  # same node
        assert self.topo.core_distance(0, 6) == self.topo.same_socket_distance
        assert self.topo.core_distance(0, 47) == self.topo.cross_socket_distance

    def test_core_id_distance_convention(self):
        assert self.topo.core_id_distance(3, 10) == 7
        assert self.topo.core_id_distance(10, 3) == 7

    def test_distance_matrix_shape_and_diagonal(self):
        matrix = self.topo.distance_matrix()
        assert len(matrix) == 8
        assert all(matrix[i][i] == LOCAL_DISTANCE for i in range(8))


class TestValidation:
    def test_rejects_indivisible_nodes(self):
        with pytest.raises(ValueError):
            MachineTopology(sockets=1, cores_per_socket=5, nodes_per_socket=2)

    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            MachineTopology(sockets=0)

    def test_small_smp_single_node(self):
        topo = small_smp(4)
        assert topo.num_cores == 4
        assert topo.num_nodes == 1
        assert topo.core_distance(0, 3) == LOCAL_DISTANCE

    def test_describe_mentions_cores(self):
        assert "48 cores" in opteron6172().describe()
