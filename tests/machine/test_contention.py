"""Tests for the memory-controller contention model."""

import pytest

from repro.machine.contention import ContentionModel


class TestRegistration:
    def test_register_withdraw_roundtrip(self):
        model = ContentionModel(num_nodes=2, alpha=0.1)
        model.register([1.0, 0.0])
        assert model.load(0) == pytest.approx(1.0)
        model.withdraw([1.0, 0.0])
        assert model.load(0) == pytest.approx(0.0)

    def test_weights_accumulate(self):
        model = ContentionModel(num_nodes=2, alpha=0.1)
        model.register([0.5, 0.5])
        model.register([0.5, 0.5])
        assert model.load(0) == pytest.approx(1.0)

    def test_over_withdraw_raises(self):
        model = ContentionModel(num_nodes=1, alpha=0.1)
        model.register([0.5])
        with pytest.raises(RuntimeError):
            model.withdraw([1.0])


class TestMultiplier:
    def test_single_requester_no_penalty(self):
        model = ContentionModel(num_nodes=1, alpha=0.1)
        model.register([1.0])
        assert model.multiplier(0) == 1.0

    def test_linear_growth(self):
        model = ContentionModel(num_nodes=1, alpha=0.1)
        for _ in range(5):
            model.register([1.0])
        assert model.multiplier(0) == pytest.approx(1.0 + 0.1 * 4)

    def test_idle_node_multiplier_is_one(self):
        model = ContentionModel(num_nodes=2, alpha=0.5)
        assert model.multiplier(1) == 1.0

    def test_alpha_zero_disables_contention(self):
        model = ContentionModel(num_nodes=1, alpha=0.0)
        for _ in range(100):
            model.register([1.0])
        assert model.multiplier(0) == 1.0

    def test_spreading_weights_lowers_multiplier(self):
        """The round-robin effect: the same total demand spread over all
        nodes yields a far lower per-node multiplier than concentrated on
        one node (the Sort optimization's mechanism)."""
        concentrated = ContentionModel(num_nodes=8, alpha=0.06)
        spread = ContentionModel(num_nodes=8, alpha=0.06)
        for _ in range(48):
            concentrated.register([1.0] + [0.0] * 7)
            spread.register([1 / 8] * 8)
        assert concentrated.multiplier(0) == pytest.approx(1 + 0.06 * 47)
        assert spread.multiplier(0) == pytest.approx(1 + 0.06 * 5, abs=1e-6)
        assert spread.multiplier(0) < concentrated.multiplier(0) / 2


class TestValidation:
    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            ContentionModel(num_nodes=1, alpha=-0.1)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ContentionModel(num_nodes=0)

    def test_reset(self):
        model = ContentionModel(num_nodes=2, alpha=0.1)
        model.register([1.0, 1.0])
        model.reset()
        assert model.load(0) == 0.0
        assert model.load(1) == 0.0

    def test_float_drift_never_goes_negative(self):
        model = ContentionModel(num_nodes=1, alpha=0.1)
        for _ in range(1000):
            model.register([1 / 3])
        for _ in range(1000):
            model.withdraw([1 / 3])
        assert model.load(0) >= 0.0
        assert model.multiplier(0) == 1.0
