"""Tests for the structural validator: it must reject malformed graphs."""

import pytest

from helpers import binary_tree, run_and_graph, small_machine

from repro.core.nodes import EdgeKind, GrainGraph, NodeKind
from repro.core.validate import StructureError, validate_graph


def tiny_valid_graph():
    g = GrainGraph()
    f0 = g.new_node(NodeKind.FRAGMENT, start=0, end=10, grain_id="t:0", tid=0)
    fork = g.new_node(NodeKind.FORK, start=10, end=12, tid=0)
    child = g.new_node(
        NodeKind.FRAGMENT, start=12, end=30, grain_id="t:0/0", tid=1, frag_seq=0
    )
    f1 = g.new_node(NodeKind.FRAGMENT, start=12, end=14, grain_id="t:0", tid=0)
    join = g.new_node(NodeKind.JOIN, start=14, end=31, tid=0)
    f2 = g.new_node(NodeKind.FRAGMENT, start=31, end=35, grain_id="t:0", tid=0)
    g.add_edge(f0.node_id, fork.node_id, EdgeKind.CONTINUATION)
    g.add_edge(fork.node_id, child.node_id, EdgeKind.CREATION)
    g.add_edge(fork.node_id, f1.node_id, EdgeKind.CONTINUATION)
    g.add_edge(f1.node_id, join.node_id, EdgeKind.CONTINUATION)
    g.add_edge(child.node_id, join.node_id, EdgeKind.JOIN)
    g.add_edge(join.node_id, f2.node_id, EdgeKind.CONTINUATION)
    from repro.core.grains import Grain, GrainKind

    for gid, tid in (("t:0", 0), ("t:0/0", 1)):
        grain = Grain(gid=gid, kind=GrainKind.TASK, tid=tid)
        g.grains[gid] = grain
    g.grains["t:0"].intervals = [(0, 10, 0), (12, 14, 0), (31, 35, 0)]
    g.grains["t:0/0"].intervals = [(12, 30, 1)]
    return g


class TestAccepts:
    def test_handcrafted_graph_passes(self):
        validate_graph(tiny_valid_graph())

    def test_real_graph_passes(self):
        _, graph = run_and_graph(binary_tree(4), machine=small_machine(2), threads=2)
        validate_graph(graph)


class TestRejects:
    def test_cycle_detected(self):
        g = tiny_valid_graph()
        # Add a back edge to create a cycle.
        g.add_edge(5, 0, EdgeKind.CONTINUATION)
        with pytest.raises(StructureError, match="cycle"):
            validate_graph(g)

    def test_fork_with_two_creations(self):
        g = tiny_valid_graph()
        extra = g.new_node(
            NodeKind.FRAGMENT, start=12, end=13, grain_id="t:0/0", tid=1, frag_seq=1
        )
        g.add_edge(1, extra.node_id, EdgeKind.CREATION)
        with pytest.raises(StructureError, match="creation edges"):
            validate_graph(g)

    def test_fork_without_creation(self):
        g = GrainGraph()
        f = g.new_node(NodeKind.FRAGMENT, start=0, end=1, grain_id="t:0", tid=0)
        fork = g.new_node(NodeKind.FORK, tid=0)
        g.add_edge(f.node_id, fork.node_id, EdgeKind.CONTINUATION)
        from repro.core.grains import Grain, GrainKind

        g.grains["t:0"] = Grain(gid="t:0", kind=GrainKind.TASK)
        with pytest.raises(StructureError):
            validate_graph(g)

    def test_join_needs_incoming(self):
        g = tiny_valid_graph()
        g.new_node(NodeKind.JOIN, tid=0)  # dangling join
        with pytest.raises(StructureError, match="join"):
            validate_graph(g)

    def test_continuation_across_contexts(self):
        g = tiny_valid_graph()
        g.add_edge(3, 2, EdgeKind.CONTINUATION)  # t:0 fragment -> t:0/0
        with pytest.raises(StructureError):
            validate_graph(g)

    def test_join_edge_from_fork_rejected(self):
        g = tiny_valid_graph()
        g.add_edge(1, 4, EdgeKind.JOIN)
        with pytest.raises(StructureError, match="join edge"):
            validate_graph(g)

    def test_chunk_must_continue_to_bookkeeping(self):
        g = GrainGraph()
        fork = g.new_node(NodeKind.FORK, team_fork=True, loop_id=0)
        bk = g.new_node(NodeKind.BOOKKEEPING, start=0, end=1, loop_id=0, thread=0)
        chunk = g.new_node(
            NodeKind.CHUNK, start=1, end=5, grain_id="c:0:0:0-1",
            loop_id=0, thread=0,
        )
        join = g.new_node(NodeKind.JOIN, loop_id=0)
        g.add_edge(fork.node_id, bk.node_id, EdgeKind.CREATION)
        g.add_edge(bk.node_id, chunk.node_id, EdgeKind.CONTINUATION)
        g.add_edge(chunk.node_id, join.node_id, EdgeKind.CONTINUATION)  # wrong
        from repro.core.grains import Grain, GrainKind

        g.grains["c:0:0:0-1"] = Grain(gid="c:0:0:0-1", kind=GrainKind.CHUNK)
        with pytest.raises(StructureError, match="book-keeping"):
            validate_graph(g)

    def test_overlapping_grain_intervals(self):
        g = tiny_valid_graph()
        g.grains["t:0"].intervals = [(0, 10, 0), (5, 14, 0)]
        with pytest.raises(StructureError, match="overlap"):
            validate_graph(g)

    def test_grain_node_without_record(self):
        g = tiny_valid_graph()
        del g.grains["t:0/0"]
        with pytest.raises(StructureError, match="grain"):
            validate_graph(g)
