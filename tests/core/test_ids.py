"""Tests for schedule-independent grain identities."""

import pytest

from repro.core.ids import (
    chunk_gid,
    is_chunk_gid,
    is_task_gid,
    loop_key,
    parse_chunk_gid,
    parse_task_gid,
    task_gid,
)


class TestTaskIds:
    def test_root_path(self):
        assert task_gid((0,)) == "t:0"

    def test_nested_path(self):
        assert task_gid((0, 3, 1)) == "t:0/3/1"

    def test_roundtrip(self):
        for path in [(0,), (0, 1), (0, 5, 2, 7)]:
            assert parse_task_gid(task_gid(path)) == path

    def test_parse_rejects_chunk_id(self):
        with pytest.raises(ValueError):
            parse_task_gid("c:0:1:2-3")

    def test_predicates(self):
        assert is_task_gid("t:0/1")
        assert not is_task_gid("c:0:0:0-4")


class TestChunkIds:
    def test_format_includes_all_parts(self):
        gid = chunk_gid(3, 2, 10, 20)
        assert gid == "c:3:2:10-20"

    def test_roundtrip(self):
        assert parse_chunk_gid(chunk_gid(1, 0, 4, 8)) == (1, 0, 4, 8)

    def test_loop_key(self):
        assert loop_key(0, 2) == "L:0:2"

    def test_predicates(self):
        assert is_chunk_gid("c:0:0:0-4")
        assert not is_chunk_gid("t:0")

    def test_parse_rejects_task_id(self):
        with pytest.raises(ValueError):
            parse_chunk_gid("t:0/1")

    def test_distinct_ranges_distinct_ids(self):
        a = chunk_gid(0, 0, 0, 4)
        b = chunk_gid(0, 0, 4, 8)
        c = chunk_gid(0, 1, 0, 4)  # same range, next loop instance
        assert len({a, b, c}) == 3
