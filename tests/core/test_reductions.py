"""Tests for graph reductions (Fig. 3d-e, h)."""

from helpers import binary_tree, run_and_graph, small_machine

from repro.apps import micro
from repro.core.nodes import EdgeKind, NodeKind
from repro.core.reductions import reduce_graph
from repro.core.validate import validate_graph
from repro.machine.counters import CounterSet


class TestFragmentReduction:
    def test_one_node_per_task_grain(self):
        _, graph = run_and_graph(
            micro.fig3a(), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph, forks=False, bookkeeping=False)
        fragments = [
            n for n in reduced.nodes.values() if n.kind is NodeKind.FRAGMENT
        ]
        assert len(fragments) == graph.num_grains

    def test_group_aggregates_duration(self):
        """Grouped nodes retain weights of members and aggregate them."""
        _, graph = run_and_graph(
            micro.fig3a(), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph, forks=False, bookkeeping=False)
        foo_node = next(
            n for n in reduced.nodes.values() if n.grain_id == "t:0/0"
        )
        assert foo_node.duration == graph.grains["t:0/0"].exec_time
        assert len(foo_node.members) == graph.grains["t:0/0"].n_fragments

    def test_counters_aggregate(self):
        _, graph = run_and_graph(
            binary_tree(3), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        total_before = CounterSet()
        for node in graph.grain_nodes():
            if node.counters:
                total_before += node.counters
        total_after = CounterSet()
        for node in reduced.nodes.values():
            if node.kind is NodeKind.FRAGMENT and node.counters:
                total_after += node.counters
        assert total_after.cycles == total_before.cycles

    def test_reduced_graph_is_dag(self):
        _, graph = run_and_graph(
            binary_tree(5), threads=4, machine=small_machine(4)
        )
        reduced, _ = reduce_graph(graph)
        validate_graph(reduced)


class TestForkReduction:
    def test_sibling_forks_combine(self):
        """Fig. 3e: foo's two forks (bar, baz) become one fork node."""
        _, graph = run_and_graph(
            micro.fig3a(), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        foo_forks = [
            n
            for n in reduced.nodes.values()
            if n.kind is NodeKind.FORK and n.is_group
        ]
        assert len(foo_forks) == 1
        creations = [
            kind
            for _, kind in reduced.successors(foo_forks[0].node_id)
            if kind is EdgeKind.CREATION
        ]
        assert len(creations) == 2

    def test_forks_to_different_joins_stay_separate(self):
        """Tasks synced at different taskwaits keep distinct fork groups."""
        from repro.runtime.actions import Spawn, TaskWait
        from repro.runtime.api import Program
        from helpers import LOC, leaf

        def main():
            yield Spawn(leaf(100), loc=LOC)
            yield TaskWait()
            yield Spawn(leaf(100), loc=LOC)
            yield TaskWait()

        _, graph = run_and_graph(
            Program("two_waits", main), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        forks = [n for n in reduced.nodes.values() if n.kind is NodeKind.FORK]
        assert len(forks) == 2


class TestBookkeepingGrouping:
    def test_one_group_per_thread(self):
        """Fig. 3h: all book-keeping nodes group per thread."""
        _, graph = run_and_graph(
            micro.fig3b(), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        groups = [
            n for n in reduced.nodes.values() if n.kind is NodeKind.BOOKKEEPING
        ]
        assert len(groups) == 2
        assert all(g.is_group for g in groups)

    def test_chunks_hang_as_siblings(self):
        _, graph = run_and_graph(
            micro.fig3b(), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        for node in reduced.nodes.values():
            if node.kind is NodeKind.BOOKKEEPING:
                chunk_children = [
                    dst
                    for dst, _ in reduced.successors(node.node_id)
                    if reduced.nodes[dst].kind is NodeKind.CHUNK
                ]
                # Thread 0 dispatched 3 chunks, thread 1 dispatched 2.
                assert len(chunk_children) in (2, 3)

    def test_chunk_count_preserved(self):
        _, graph = run_and_graph(
            micro.fig3b(), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        assert reduced.node_count(NodeKind.CHUNK) == 5

    def test_group_duration_sums_bookkeeping(self):
        _, graph = run_and_graph(
            micro.fig3b(), threads=2, machine=small_machine(2)
        )
        total = sum(
            n.duration
            for n in graph.nodes.values()
            if n.kind is NodeKind.BOOKKEEPING
        )
        reduced, _ = reduce_graph(graph)
        total_reduced = sum(
            n.duration
            for n in reduced.nodes.values()
            if n.kind is NodeKind.BOOKKEEPING
        )
        assert total_reduced == total


class TestReport:
    def test_reduction_shrinks_graph(self):
        _, graph = run_and_graph(
            binary_tree(6), threads=4, machine=small_machine(4)
        )
        reduced, report = reduce_graph(graph)
        assert report.nodes_after < report.nodes_before
        assert report.node_ratio < 0.8
        assert report.nodes_before == len(graph.nodes)
        assert report.nodes_after == len(reduced.nodes)

    def test_grain_table_shared(self):
        _, graph = run_and_graph(
            binary_tree(4), threads=2, machine=small_machine(2)
        )
        reduced, _ = reduce_graph(graph)
        assert reduced.grains is graph.grains

    def test_disabled_reductions_keep_graph(self):
        _, graph = run_and_graph(
            binary_tree(4), threads=2, machine=small_machine(2)
        )
        same, report = reduce_graph(
            graph, fragments=False, forks=False, bookkeeping=False
        )
        assert report.nodes_after == report.nodes_before
        assert report.edges_after == report.edges_before
