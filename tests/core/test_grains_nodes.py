"""Tests for Grain record properties and the GrainGraph container."""

import pytest

from repro.core.grains import Grain, GrainKind
from repro.core.nodes import EdgeKind, GrainGraph, NodeKind


def grain(intervals):
    g = Grain(gid="t:0/1", kind=GrainKind.TASK)
    g.intervals = intervals
    return g


class TestGrainProperties:
    def test_exec_time_sums_intervals(self):
        g = grain([(0, 10, 0), (20, 25, 1)])
        assert g.exec_time == 15

    def test_first_start_last_end(self):
        g = grain([(20, 25, 1), (0, 10, 0)])
        assert g.first_start == 0
        assert g.last_end == 25

    def test_cores_in_first_use_order(self):
        g = grain([(20, 25, 1), (0, 10, 3), (30, 31, 3)])
        assert g.cores == (3, 1)

    def test_primary_core_by_cycles(self):
        g = grain([(0, 100, 2), (100, 101, 5)])
        assert g.primary_core == 2

    def test_overlaps(self):
        g = grain([(10, 20, 0)])
        assert g.overlaps(15, 30)
        assert g.overlaps(0, 11)
        assert not g.overlaps(20, 30)  # half-open interval
        assert not g.overlaps(0, 10)

    def test_empty_grain_defaults(self):
        g = grain([])
        assert g.exec_time == 0
        assert g.first_start == 0
        assert g.primary_core == 0

    def test_parallelization_cost(self):
        g = grain([(0, 10, 0)])
        g.creation_cycles = 100
        g.sync_share_cycles = 50.0
        assert g.parallelization_cost == 150.0

    def test_describe_mentions_gid(self):
        assert "t:0/1" in grain([(0, 5, 0)]).describe()


class TestGrainGraphContainer:
    def test_node_ids_dense(self):
        g = GrainGraph()
        a = g.new_node(NodeKind.FORK)
        b = g.new_node(NodeKind.JOIN)
        assert (a.node_id, b.node_id) == (0, 1)

    def test_edge_endpoints_validated(self):
        g = GrainGraph()
        g.new_node(NodeKind.FORK)
        with pytest.raises(KeyError):
            g.add_edge(0, 99, EdgeKind.CREATION)

    def test_adjacency(self):
        g = GrainGraph()
        a = g.new_node(NodeKind.FRAGMENT, grain_id="t:0")
        b = g.new_node(NodeKind.FORK)
        g.add_edge(a.node_id, b.node_id, EdgeKind.CONTINUATION)
        assert g.successors(a.node_id) == [(b.node_id, EdgeKind.CONTINUATION)]
        assert g.predecessors(b.node_id) == [(a.node_id, EdgeKind.CONTINUATION)]
        assert g.out_degree(a.node_id) == 1
        assert g.in_degree(a.node_id) == 0

    def test_counts_by_kind(self):
        g = GrainGraph()
        g.new_node(NodeKind.FRAGMENT)
        g.new_node(NodeKind.FRAGMENT)
        g.new_node(NodeKind.JOIN)
        assert g.node_count() == 3
        assert g.node_count(NodeKind.FRAGMENT) == 2
        assert g.node_count(NodeKind.CHUNK) == 0

    def test_remove_nodes(self):
        g = GrainGraph()
        a = g.new_node(NodeKind.FRAGMENT)
        b = g.new_node(NodeKind.FORK)
        c = g.new_node(NodeKind.FRAGMENT)
        g.add_edge(a.node_id, b.node_id, EdgeKind.CONTINUATION)
        g.add_edge(b.node_id, c.node_id, EdgeKind.CREATION)
        g.remove_nodes({b.node_id})
        assert b.node_id not in g.nodes
        assert g.edge_count() == 0
        assert g.successors(a.node_id) == []

    def test_topological_order_respects_edges(self):
        g = GrainGraph()
        nodes = [g.new_node(NodeKind.FRAGMENT) for _ in range(4)]
        g.add_edge(0, 2, EdgeKind.CONTINUATION)
        g.add_edge(1, 2, EdgeKind.CONTINUATION)
        g.add_edge(2, 3, EdgeKind.CONTINUATION)
        order = g.topological_order()
        assert order.index(2) > order.index(0)
        assert order.index(3) > order.index(2)

    def test_cycle_detection(self):
        g = GrainGraph()
        g.new_node(NodeKind.FRAGMENT)
        g.new_node(NodeKind.FRAGMENT)
        g.add_edge(0, 1, EdgeKind.CONTINUATION)
        g.add_edge(1, 0, EdgeKind.CONTINUATION)
        with pytest.raises(ValueError):
            g.topological_order()

    def test_group_node_duration_override(self):
        g = GrainGraph()
        node = g.new_node(
            NodeKind.FRAGMENT, start=0, end=10,
            members=(1, 2, 3), duration_override=123,
        )
        assert node.duration == 123
        assert node.is_group

    def test_span_duration(self):
        g = GrainGraph()
        node = g.new_node(NodeKind.FRAGMENT, start=5, end=25)
        assert node.duration == 20
        empty = g.new_node(NodeKind.FORK)
        assert empty.duration == 0

    def test_summary_string(self):
        g = GrainGraph()
        g.new_node(NodeKind.FRAGMENT)
        text = g.summary()
        assert "1 fragment" in text
