"""Tests for bitset DAG reachability over grain graphs."""

import pytest

from helpers import run_and_graph, small_machine, spawn_n_and_wait

from repro.core.reachability import Reachability


def _graph():
    _, graph = run_and_graph(
        spawn_n_and_wait(3), machine=small_machine()
    )
    return graph


def _fragments_by_grain(graph):
    frags = {}
    for node in graph.grain_nodes():
        frags.setdefault(node.grain_id, []).append(node)
    for nodes in frags.values():
        nodes.sort(key=lambda n: n.start)
    return frags


class TestReachability:
    def test_parent_reaches_children_not_vice_versa(self):
        graph = _graph()
        frags = _fragments_by_grain(graph)
        root_first = frags["t:0"][0]
        reach = Reachability(
            graph, {n.node_id for n in graph.grain_nodes()}
        )
        for grain_id, nodes in frags.items():
            if grain_id == "t:0":
                continue
            assert reach.reaches(root_first.node_id, nodes[0].node_id)
            assert not reach.reaches(nodes[0].node_id, root_first.node_id)

    def test_siblings_are_unordered(self):
        graph = _graph()
        frags = _fragments_by_grain(graph)
        children = sorted(gid for gid in frags if gid != "t:0")
        reach = Reachability(
            graph, {n.node_id for n in graph.grain_nodes()}
        )
        a = frags[children[0]][0]
        b = frags[children[1]][0]
        assert not reach.ordered(a.node_id, b.node_id)

    def test_taskwait_orders_final_fragment_after_children(self):
        graph = _graph()
        frags = _fragments_by_grain(graph)
        root_last = frags["t:0"][-1]
        reach = Reachability(
            graph, {n.node_id for n in graph.grain_nodes()}
        )
        for grain_id, nodes in frags.items():
            if grain_id == "t:0":
                continue
            assert reach.reaches(nodes[-1].node_id, root_last.node_id)

    def test_non_source_query_raises(self):
        graph = _graph()
        some = next(iter(graph.grain_nodes()))
        reach = Reachability(graph, {some.node_id})
        with pytest.raises(KeyError):
            reach.reaches(-1, some.node_id)

    def test_every_node_reaches_itself(self):
        graph = _graph()
        sources = {n.node_id for n in graph.grain_nodes()}
        reach = Reachability(graph, sources)
        for node_id in sources:
            assert reach.reaches(node_id, node_id)
