"""Tests for grain-graph construction from loop traces (Fig. 3g/h)."""

from helpers import loop_program, run_and_graph, small_machine

from repro.apps import micro
from repro.core.ids import chunk_gid
from repro.core.nodes import EdgeKind, NodeKind
from repro.core.validate import validate_graph


class TestFig3bStructure:
    """20 iterations, chunk 4, two threads -> 5 chunks (Fig. 3b/g)."""

    def setup_method(self):
        _, self.graph = run_and_graph(
            micro.fig3b(), threads=2, machine=small_machine(2)
        )

    def test_validates(self):
        validate_graph(self.graph)

    def test_five_chunks(self):
        assert self.graph.node_count(NodeKind.CHUNK) == 5

    def test_chunk_iteration_ranges(self):
        ranges = sorted(
            n.iter_range
            for n in self.graph.nodes.values()
            if n.kind is NodeKind.CHUNK
        )
        assert ranges == [(0, 4), (4, 8), (8, 12), (12, 16), (16, 20)]

    def test_bookkeeping_per_thread(self):
        """Thread 0 dispatches 3 chunks + final empty = 4 book-keeping
        nodes; thread 1 dispatches 2 + final = 3."""
        by_thread = {}
        for node in self.graph.nodes.values():
            if node.kind is NodeKind.BOOKKEEPING:
                by_thread.setdefault(node.thread, []).append(node)
        assert len(by_thread[0]) == 4
        assert len(by_thread[1]) == 3

    def test_chunks_always_continue_to_bookkeeping(self):
        for node in self.graph.nodes.values():
            if node.kind is NodeKind.CHUNK:
                successors = self.graph.successors(node.node_id)
                assert len(successors) == 1
                assert (
                    self.graph.nodes[successors[0][0]].kind
                    is NodeKind.BOOKKEEPING
                )

    def test_single_loop_join(self):
        joins = [
            n for n in self.graph.nodes.values()
            if n.kind is NodeKind.JOIN and n.loop_id is not None
        ]
        assert len(joins) == 1

    def test_team_fork_feeds_both_threads(self):
        forks = [
            n for n in self.graph.nodes.values()
            if n.kind is NodeKind.FORK and n.team_fork
        ]
        assert len(forks) == 1
        creations = [
            dst
            for dst, kind in self.graph.successors(forks[0].node_id)
            if kind is EdgeKind.CREATION
        ]
        assert len(creations) == 2  # one chain per team thread

    def test_chunk_grain_ids(self):
        expected = {chunk_gid(0, 0, s, s + 4) for s in range(0, 20, 4)}
        chunk_grains = {
            gid for gid, g in self.graph.grains.items() if gid.startswith("c:")
        }
        assert chunk_grains == expected

    def test_chunk_grain_properties(self):
        grain = self.graph.grains[chunk_gid(0, 0, 0, 4)]
        assert grain.exec_time == 4 * 250
        assert grain.creation_cycles > 0  # book-keeping cost
        assert grain.sibling_group == "L:0:0"
        assert grain.iter_range == (0, 4)


class TestMultipleLoops:
    def test_loop_seq_distinguishes_instances(self):
        from repro.machine.cost import WorkRequest
        from repro.runtime.actions import ParallelFor
        from repro.runtime.api import Program
        from repro.runtime.loops import LoopSpec

        def main():
            for _ in range(2):
                yield ParallelFor(
                    LoopSpec(
                        iterations=4,
                        chunk_size=2,
                        body=lambda i: WorkRequest(cycles=100),
                        num_threads=2,
                    )
                )

        _, graph = run_and_graph(
            Program("two_loops", main), threads=2, machine=small_machine(2)
        )
        validate_graph(graph)
        keys = {g.sibling_group for g in graph.grains.values() if g.loop_id is not None}
        assert keys == {"L:0:0", "L:0:1"}

    def test_loops_embedded_in_root_context(self):
        _, graph = run_and_graph(
            micro.fig3b(), threads=2, machine=small_machine(2)
        )
        root = graph.grains["t:0"]
        # Root has a fragment before and after the loop.
        assert root.n_fragments == 2

    def test_empty_iteration_space(self):
        _, graph = run_and_graph(
            loop_program(iterations=0, chunk=None, threads=2),
            threads=2,
            machine=small_machine(2),
        )
        validate_graph(graph)
        assert graph.node_count(NodeKind.CHUNK) == 0
