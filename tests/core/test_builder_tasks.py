"""Tests for grain-graph construction from task traces (Sec. 3.1)."""

from helpers import binary_tree, run_and_graph, small_machine

from repro.apps import micro
from repro.core.nodes import EdgeKind, NodeKind
from repro.core.validate import validate_graph


class TestFig3aStructure:
    """The paper's Fig. 3a/3c example: foo creates bar and baz."""

    def setup_method(self):
        _, self.graph = run_and_graph(
            micro.fig3a(), threads=2, machine=small_machine(2)
        )

    def test_validates(self):
        validate_graph(self.graph)

    def test_grain_count(self):
        # root, foo, bar, baz
        assert self.graph.num_grains == 4

    def test_foo_has_four_fragments(self):
        """foo: [work][fork bar][work][fork baz][work][join][work] ->
        fragments split at the two forks and the join."""
        foo = self.graph.grains["t:0/0"]
        assert foo.n_fragments == 4

    def test_fork_count(self):
        # main forks foo; foo forks bar and baz.
        assert self.graph.node_count(NodeKind.FORK) == 3

    def test_join_count(self):
        # foo's taskwait and main's taskwait.
        assert self.graph.node_count(NodeKind.JOIN) == 2

    def test_creation_edges_target_first_fragments(self):
        for edge in self.graph.edges:
            if edge.kind is EdgeKind.CREATION:
                dst = self.graph.nodes[edge.dst]
                assert dst.kind is NodeKind.FRAGMENT
                assert dst.frag_seq == 0

    def test_join_edges_from_last_fragments(self):
        for edge in self.graph.edges:
            if edge.kind is EdgeKind.JOIN:
                src = self.graph.nodes[edge.src]
                grain = self.graph.grains[src.grain_id]
                assert src.frag_seq == grain.n_fragments - 1

    def test_children_sync_at_parents_join(self):
        joins = [
            n for n in self.graph.nodes.values() if n.kind is NodeKind.JOIN
        ]
        foo_join = next(n for n in joins if n.tid == 1)
        incoming_grains = {
            self.graph.nodes[src].grain_id
            for src, kind in self.graph.predecessors(foo_join.node_id)
            if kind is EdgeKind.JOIN
        }
        assert incoming_grains == {"t:0/0/0", "t:0/0/1"}  # bar and baz

    def test_is_dag(self):
        order = self.graph.topological_order()
        assert len(order) == len(self.graph.nodes)


class TestGrainProperties:
    def test_exec_time_sums_fragments(self):
        _, graph = run_and_graph(
            micro.fig3a(bar_cycles=3000, baz_cycles=2000),
            threads=2,
            machine=small_machine(2),
        )
        assert graph.grains["t:0/0/0"].exec_time == 3000  # bar
        assert graph.grains["t:0/0/1"].exec_time == 2000  # baz

    def test_creation_cycles_recorded(self):
        _, graph = run_and_graph(
            micro.fig3a(), threads=2, machine=small_machine(2)
        )
        for gid in ("t:0/0", "t:0/0/0", "t:0/0/1"):
            assert graph.grains[gid].creation_cycles > 0

    def test_sync_share_divides_wait_among_siblings(self):
        _, graph = run_and_graph(
            micro.fig3a(), threads=1, machine=small_machine(2)
        )
        bar = graph.grains["t:0/0/0"]
        baz = graph.grains["t:0/0/1"]
        assert bar.sync_share_cycles == baz.sync_share_cycles
        assert bar.sync_share_cycles >= 0

    def test_sibling_group_is_parent(self):
        _, graph = run_and_graph(
            micro.fig3a(), threads=2, machine=small_machine(2)
        )
        assert graph.grains["t:0/0/0"].sibling_group == "t:0/0"
        assert graph.grains["t:0/0/1"].sibling_group == "t:0/0"

    def test_depth_recorded(self):
        _, graph = run_and_graph(
            binary_tree(4), threads=2, machine=small_machine(2)
        )
        assert max(g.depth for g in graph.grains.values()) == 5  # root task + 4


class TestFireAndForget:
    def test_orphans_join_the_implicit_barrier(self):
        _, graph = run_and_graph(
            micro.fire_and_forget(depth=3), threads=2, machine=small_machine(2)
        )
        validate_graph(graph)
        implicit = [
            n
            for n in graph.nodes.values()
            if n.kind is NodeKind.JOIN and n.implicit
        ]
        assert len(implicit) == 1
        join_sources = {
            graph.nodes[src].grain_id
            for src, kind in graph.predecessors(implicit[0].node_id)
            if kind is EdgeKind.JOIN
        }
        # All 2^4 - 1 sweep tasks sync at the barrier.
        assert len(join_sources) == 15

    def test_every_non_root_grain_has_a_join_edge(self):
        _, graph = run_and_graph(
            micro.fire_and_forget(depth=4), threads=3, machine=small_machine(3)
        )
        joined = {
            graph.nodes[e.src].grain_id
            for e in graph.edges
            if e.kind is EdgeKind.JOIN
        }
        non_root = {gid for gid in graph.grains if gid != "t:0"}
        assert joined == non_root


class TestScale:
    def test_binary_tree_counts(self):
        _, graph = run_and_graph(
            binary_tree(6), threads=4, machine=small_machine(4)
        )
        validate_graph(graph)
        # 2^7 - 1 tree tasks + root = 128 grains.
        assert graph.num_grains == 128
        assert graph.node_count(NodeKind.FORK) == 127

    def test_intervals_within_makespan(self):
        result, graph = run_and_graph(
            binary_tree(5), threads=4, machine=small_machine(4)
        )
        for grain in graph.grains.values():
            for start, end, core in grain.intervals:
                assert 0 <= start <= end <= result.makespan_cycles
                assert 0 <= core < 4
