"""Tests for graph comparison, the zoombox, and summary-node collapsing."""

import pytest

from helpers import binary_tree, run_and_graph, small_machine

from repro.apps import others
from repro.core.compare import compare_graphs
from repro.core.validate import validate_graph
from repro.core.zoom import collapse_subtree, zoom_subtree, zoom_time_window


class TestCompare:
    def test_identical_runs_match_fully(self):
        program = binary_tree(4)
        _, a = run_and_graph(program, machine=small_machine(2), threads=2)
        _, b = run_and_graph(program, machine=small_machine(2), threads=2)
        comparison = compare_graphs(a, b)
        assert comparison.match_fraction == 1.0
        assert comparison.median_ratio() == pytest.approx(1.0)
        assert not comparison.regressions(1.01)

    def test_different_thread_counts_match_by_identity(self):
        program = binary_tree(4, leaf_cycles=1000)
        _, a = run_and_graph(program, machine=small_machine(4), threads=1)
        _, b = run_and_graph(program, machine=small_machine(4), threads=4)
        comparison = compare_graphs(a, b)
        assert comparison.match_fraction == 1.0

    def test_cutoff_change_shows_up_as_only_in_a(self):
        """Fig. 7's 'not all grains are created in the optimized
        program': the deeper-cutoff run has grains the other lacks."""
        _, deep = run_and_graph(
            others.fib(n=12, cutoff=8), machine=small_machine(2), threads=2
        )
        _, shallow = run_and_graph(
            others.fib(n=12, cutoff=4), machine=small_machine(2), threads=2
        )
        comparison = compare_graphs(deep, shallow)
        assert comparison.only_in_a  # grains the cutoff removed
        assert not comparison.only_in_b
        assert comparison.match_fraction < 1.0

    def test_regressions_ranked_worst_first(self):
        program = binary_tree(3, leaf_cycles=1000)
        _, a = run_and_graph(program, machine=small_machine(2), threads=2)
        _, b = run_and_graph(program, machine=small_machine(2), threads=2)
        # Inflate one grain artificially.
        grain = b.grains["t:0/0/0"]
        grain.intervals = [(s, s + 2 * (e - s), c) for s, e, c in grain.intervals]
        comparison = compare_graphs(a, b)
        regressions = comparison.regressions(1.5)
        assert regressions and regressions[0].gid == "t:0/0/0"

    def test_summary_text(self):
        program = binary_tree(3)
        _, a = run_and_graph(program, machine=small_machine(2), threads=2)
        _, b = run_and_graph(program, machine=small_machine(2), threads=2)
        text = compare_graphs(a, b).summary()
        assert "matched" in text


class TestZoom:
    def setup_method(self):
        _, self.graph = run_and_graph(
            binary_tree(4, leaf_cycles=500), machine=small_machine(2), threads=2
        )

    def test_subtree_zoom_keeps_descendants_only(self):
        inset = zoom_subtree(self.graph, "t:0/0/0")
        assert set(inset.grains) == {
            gid for gid in self.graph.grains if gid.startswith("t:0/0/0")
        }
        assert len(inset.nodes) < len(self.graph.nodes)

    def test_subtree_zoom_is_renderable(self, tmp_path):
        from repro.core.svg import render_svg

        inset = zoom_subtree(self.graph, "t:0/0/0")
        render_svg(inset, tmp_path / "inset.svg", title="zoombox")

    def test_time_window_zoom(self):
        makespan = max(g.last_end for g in self.graph.grains.values())
        inset = zoom_time_window(self.graph, 0, makespan // 4)
        assert 0 < len(inset.nodes) < len(self.graph.nodes)
        for node in inset.nodes.values():
            if node.start is not None:
                assert node.start < makespan // 4

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            zoom_time_window(self.graph, 10, 10)

    def test_unknown_subtree_rejected(self):
        with pytest.raises(ValueError):
            zoom_subtree(self.graph, "t:9/9")


class TestCollapse:
    def test_subtree_becomes_one_summary_node(self):
        _, graph = run_and_graph(
            binary_tree(5, leaf_cycles=500), machine=small_machine(2), threads=2
        )
        before_exec = sum(
            g.exec_time for gid, g in graph.grains.items()
            if gid.startswith("t:0/0/0")
        )
        collapsed = collapse_subtree(graph, "t:0/0/0")
        summary = collapsed.grains["t:0/0/0"]
        assert summary.exec_time == before_exec
        assert "<summary of" in summary.definition
        assert len(collapsed.nodes) < len(graph.nodes)

    def test_collapsed_graph_is_acyclic_and_connected_to_rest(self):
        _, graph = run_and_graph(
            binary_tree(5), machine=small_machine(2), threads=2
        )
        collapsed = collapse_subtree(graph, "t:0/0/0")
        collapsed.topological_order()  # raises on cycles
        summary_node = next(
            n for n in collapsed.nodes.values()
            if n.grain_id == "t:0/0/0" and n.is_group
        )
        assert collapsed.in_degree(summary_node.node_id) >= 1
        assert collapsed.out_degree(summary_node.node_id) >= 1

    def test_other_grains_untouched(self):
        _, graph = run_and_graph(
            binary_tree(4), machine=small_machine(2), threads=2
        )
        collapsed = collapse_subtree(graph, "t:0/0/0")
        assert "t:0/0/1" in collapsed.grains
        assert collapsed.grains["t:0/0/1"].exec_time == graph.grains[
            "t:0/0/1"
        ].exec_time


class TestFloorplan:
    def test_deterministic_per_thread_count(self):
        from repro.runtime import MIR, run_program

        for threads in (1, 4):
            a = run_program(
                others.floorplan(cells=10, cutoff=5),
                flavor=MIR, num_threads=threads,
            )
            b = run_program(
                others.floorplan(cells=10, cutoff=5),
                flavor=MIR, num_threads=threads,
            )
            assert a.stats.tasks_created == b.stats.tasks_created

    def test_shape_can_change_with_thread_count(self):
        """The paper: Floorplan's graph shape changes for different
        thread counts because pruning depends on execution order."""
        from repro.runtime import MIR, run_program

        counts = {
            threads: run_program(
                others.floorplan(cells=12, cutoff=6),
                flavor=MIR, num_threads=threads,
            ).stats.tasks_created
            for threads in (1, 48)
        }
        assert counts[1] != counts[48]

    def test_graph_builds_and_validates(self):
        _, graph = run_and_graph(
            others.floorplan(cells=10, cutoff=5),
            machine=small_machine(4), threads=4,
        )
        validate_graph(graph)
