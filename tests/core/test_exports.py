"""Tests for layout, GraphML, dot, and SVG exports."""

import xml.dom.minidom

import networkx as nx

from helpers import binary_tree, run_and_graph, small_machine

from repro.apps import micro
from repro.core.dot import write_dot
from repro.core.graphml import write_graphml
from repro.core.layout import crossing_count, layered_layout
from repro.core.reductions import reduce_graph
from repro.core.svg import render_svg


class TestLayout:
    def test_every_node_positioned(self):
        _, graph = run_and_graph(binary_tree(4), machine=small_machine(2), threads=2)
        layout = layered_layout(graph)
        assert set(layout.positions) == set(graph.nodes)

    def test_edges_point_downward(self):
        """Depth layering: every edge goes to a strictly deeper layer."""
        _, graph = run_and_graph(binary_tree(4), machine=small_machine(2), threads=2)
        layout = layered_layout(graph)
        for edge in graph.edges:
            assert layout.positions[edge.dst][1] > layout.positions[edge.src][1]

    def test_fork_join_tree_is_planar(self):
        """"Edges never cross" for pure fork/join structures."""
        _, graph = run_and_graph(binary_tree(5), machine=small_machine(2), threads=2)
        layout = layered_layout(graph)
        assert crossing_count(graph, layout) == 0

    def test_fig3a_planar(self):
        _, graph = run_and_graph(micro.fig3a(), machine=small_machine(2), threads=2)
        assert crossing_count(graph, layered_layout(graph)) == 0

    def test_empty_graph(self):
        from repro.core.nodes import GrainGraph

        layout = layered_layout(GrainGraph())
        assert layout.positions == {}


class TestGraphML:
    def test_networkx_reads_output(self, tmp_path):
        _, graph = run_and_graph(binary_tree(3), machine=small_machine(2), threads=2)
        path = write_graphml(graph, tmp_path / "g.graphml")
        loaded = nx.read_graphml(path)
        assert loaded.number_of_nodes() == len(graph.nodes)
        assert loaded.number_of_edges() == len(graph.edges)

    def test_node_attributes_present(self, tmp_path):
        _, graph = run_and_graph(micro.fig3a(), machine=small_machine(2), threads=2)
        loaded = nx.read_graphml(write_graphml(graph, tmp_path / "g.graphml"))
        kinds = {data["kind"] for _, data in loaded.nodes(data=True)}
        assert {"fragment", "fork", "join"} <= kinds
        grain_ids = {
            data.get("grain_id")
            for _, data in loaded.nodes(data=True)
            if data.get("grain_id")
        }
        assert "t:0/0" in grain_ids

    def test_edge_kinds_preserved(self, tmp_path):
        _, graph = run_and_graph(micro.fig3a(), machine=small_machine(2), threads=2)
        loaded = nx.read_graphml(write_graphml(graph, tmp_path / "g.graphml"))
        kinds = {data["kind"] for _, _, data in loaded.edges(data=True)}
        assert kinds == {"creation", "join", "continuation"}

    def test_yed_shape_extension_present(self, tmp_path):
        _, graph = run_and_graph(micro.fig3b(), machine=small_machine(2), threads=2)
        text = write_graphml(graph, tmp_path / "g.graphml").read_text()
        assert "y:ShapeNode" in text
        assert "y:Geometry" in text
        assert 'type="diamond"' in text  # book-keeping nodes

    def test_loop_graph_roundtrip(self, tmp_path):
        _, graph = run_and_graph(micro.fig3b(), machine=small_machine(2), threads=2)
        loaded = nx.read_graphml(write_graphml(graph, tmp_path / "g.graphml"))
        chunk_nodes = [
            n for n, d in loaded.nodes(data=True) if d["kind"] == "chunk"
        ]
        assert len(chunk_nodes) == 5


class TestDotAndSvg:
    def test_dot_output_parses_structurally(self, tmp_path):
        _, graph = run_and_graph(micro.fig3a(), machine=small_machine(2), threads=2)
        text = write_dot(graph, tmp_path / "g.dot").read_text()
        assert text.startswith("digraph")
        assert text.count("->") == len(graph.edges)

    def test_svg_is_valid_xml(self, tmp_path):
        _, graph = run_and_graph(micro.fig3a(), machine=small_machine(2), threads=2)
        path = render_svg(graph, tmp_path / "g.svg", title="fig3a")
        doc = xml.dom.minidom.parse(str(path))
        assert doc.documentElement.tagName == "svg"

    def test_svg_contains_grain_rectangles(self, tmp_path):
        _, graph = run_and_graph(micro.fig3b(), machine=small_machine(2), threads=2)
        text = render_svg(graph, tmp_path / "g.svg").read_text()
        assert text.count("<rect") >= 6  # background + chunks + fragments

    def test_svg_renders_reduced_graph(self, tmp_path):
        _, graph = run_and_graph(binary_tree(4), machine=small_machine(2), threads=2)
        reduced, _ = reduce_graph(graph)
        path = render_svg(reduced, tmp_path / "r.svg")
        xml.dom.minidom.parse(str(path))

    def test_critical_path_highlight(self, tmp_path):
        from repro.metrics import critical_path

        _, graph = run_and_graph(micro.fig3a(), machine=small_machine(2), threads=2)
        cp = critical_path(graph)
        text = render_svg(
            graph, tmp_path / "g.svg", critical_nodes=cp.nodes
        ).read_text()
        assert "#d62728" in text  # the critical red
