"""Cache behavior: miss/hit, fingerprint invalidation, pool equivalence.

The contracts under test:

- a cold point misses, simulates, and stores; a warm point hits and
  skips the engine entirely (checked against the process-global
  ``engine_invocations`` counter);
- changing the code fingerprint — what editing ``src/repro`` does —
  invalidates every prior artifact;
- a ``--jobs 4`` matrix run produces results identical to ``--jobs 1``,
  trace-byte for trace-byte and metric for metric.
"""

import json

import pytest

from repro.apps.registry import resolve, resolve_small
from repro.exec import (
    MatrixPoint,
    RunCache,
    RunKey,
    StudyRunner,
    TraceExecutor,
    get_default_cache,
    set_default_cache,
)
from repro.runtime.engine import engine_invocations
from repro.runtime.flavors import MIR
from tests.exec.test_roundtrip import metric_digest


def test_cold_miss_then_warm_hit(tmp_path):
    cache = RunCache(tmp_path)
    program = resolve_small("fib")

    executor = TraceExecutor(cache=cache)
    cold = executor.run(program, MIR, 8)
    assert cache.stats.trace_misses == 1
    assert cache.stats.trace_stores == 1
    assert executor.simulated == 1

    warm_cache = RunCache(tmp_path)
    warm_executor = TraceExecutor(cache=warm_cache)
    before = engine_invocations()
    warm = warm_executor.run(program, MIR, 8)
    assert engine_invocations() == before  # zero engine invocations
    assert warm_cache.stats.trace_hits == 1
    assert warm_executor.simulated == 0
    assert warm.makespan_cycles == cold.makespan_cycles
    assert warm.trace.dumps_jsonl() == cold.trace.dumps_jsonl()
    assert warm.stats == cold.stats  # engine RunStats survive the sidecar


def test_executor_memoizes_within_instance(tmp_path):
    executor = TraceExecutor()  # no cache: memo only
    program = resolve_small("fig3a")
    first = executor.run(program, MIR, 8)
    assert executor.run(program, MIR, 8) is first
    assert executor.simulated == 1


def test_code_fingerprint_change_invalidates(tmp_path):
    program = resolve_small("fig3a")
    cache = RunCache(tmp_path, fingerprint="aaaa")
    TraceExecutor(cache=cache).run(program, MIR, 8)
    assert cache.stats.trace_misses == 1

    same = RunCache(tmp_path, fingerprint="aaaa")
    TraceExecutor(cache=same).run(program, MIR, 8)
    assert (same.stats.trace_hits, same.stats.trace_misses) == (1, 0)

    edited = RunCache(tmp_path, fingerprint="bbbb")
    TraceExecutor(cache=edited).run(program, MIR, 8)
    assert (edited.stats.trace_hits, edited.stats.trace_misses) == (0, 1)


def test_digest_identical_for_none_and_explicit_defaults(tmp_path):
    """The spurious-miss bugfix: ``machine_config=None`` and an explicit
    paper-testbed config are the same simulation and must share one
    digest — and therefore one cache entry and one engine invocation."""
    from repro.machine import MachineConfig
    from repro.profiler.recorder import ProfilerConfig

    program = resolve_small("fib")
    implicit = RunKey.for_run(program, MIR, 8, fingerprint="f")
    explicit = RunKey.for_run(
        program, MIR, 8,
        machine_config=MachineConfig.paper_testbed(),
        profiler=ProfilerConfig(),
        fingerprint="f",
    )
    assert implicit == explicit
    assert implicit.digest() == explicit.digest()

    # end to end: the explicit-defaults run is a warm hit, not a re-run
    TraceExecutor(cache=RunCache(tmp_path)).run(program, MIR, 8)
    cache = RunCache(tmp_path)
    executor = TraceExecutor(
        cache=cache,
        machine_config=MachineConfig.paper_testbed(),
        profiler=ProfilerConfig(),
    )
    before = engine_invocations()
    executor.run(program, MIR, 8)
    assert engine_invocations() == before
    assert (cache.stats.trace_hits, cache.stats.trace_misses) == (1, 0)


def test_digest_distinguishes_non_default_machine_and_profiler():
    from repro.machine import MachineConfig
    from repro.profiler.recorder import ProfilerConfig

    program = resolve_small("fib")
    base = RunKey.for_run(program, MIR, 8, fingerprint="f")
    testbed = MachineConfig.paper_testbed()
    other_machine = RunKey.for_run(
        program, MIR, 8, fingerprint="f",
        machine_config=MachineConfig(
            topology=testbed.topology, cache=testbed.cache,
            cost=testbed.cost, contention_alpha=0.5,
        ),
    )
    other_profiler = RunKey.for_run(
        program, MIR, 8, fingerprint="f",
        profiler=ProfilerConfig(overhead_cycles_per_event=7),
    )
    assert other_machine.digest() != base.digest()
    assert other_profiler.digest() != base.digest()


def test_run_key_digest_covers_every_field():
    base = dict(
        program="p", input_summary="i", flavor="MIR", threads=8,
        machine="m", profiler="", fingerprint="f",
    )
    digests = {RunKey(**base).digest()}
    for field_name, changed in [
        ("program", "q"), ("input_summary", "j"), ("flavor", "GCC"),
        ("threads", 9), ("machine", "n"), ("profiler", "x"),
        ("fingerprint", "g"),
    ]:
        digests.add(RunKey(**{**base, field_name: changed}).digest())
    assert len(digests) == 8, "every key field must affect the digest"


def test_corrupt_report_artifact_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    program = resolve_small("fig3a")
    key = cache.key_for(program, MIR, 8)
    path = cache._report_path(key, "deadbeef")
    path.write_bytes(b"not a pickle")
    assert cache.get_report(key, "deadbeef") is None
    assert cache.stats.report_misses == 1


def test_sidecar_records_key_and_stats(tmp_path):
    cache = RunCache(tmp_path)
    program = resolve_small("fig3a")
    executor = TraceExecutor(cache=cache)
    result = executor.run(program, MIR, 8)
    key = cache.key_for(program, MIR, 8)
    sidecar = json.loads(cache._meta_path(key).read_text())
    assert sidecar["key"]["program"] == program.name
    assert sidecar["makespan_cycles"] == result.makespan_cycles
    assert sidecar["stats"]["tasks_created"] == result.stats.tasks_created


def test_default_cache_install_and_restore(tmp_path):
    assert get_default_cache() is None
    cache = RunCache(tmp_path)
    previous = set_default_cache(cache)
    try:
        assert previous is None
        assert get_default_cache() is cache
    finally:
        set_default_cache(previous)
    assert get_default_cache() is None


# ---------------------------------------------------------------------------
# Matrix runner: pool equivalence and reference dedup
# ---------------------------------------------------------------------------
MATRIX = [
    MatrixPoint.of("fig3a", "MIR", 8),
    MatrixPoint.of("fig3a", "GCC", 8),
    MatrixPoint.of("fig3b", "MIR", 2),
    MatrixPoint.of("racy", "MIR", 2),
    MatrixPoint.of("racy-fixed", "MIR", 2),
    MatrixPoint.of("fib", "MIR", 4, n=16, cutoff=8),
    MatrixPoint.of("fib", "ICC", 4, n=16, cutoff=8),
    MatrixPoint.of("nqueens", "MIR", 4, n=6),
]


def test_jobs4_matrix_identical_to_jobs1(tmp_path):
    serial_runner = StudyRunner(cache=RunCache(tmp_path / "serial"), jobs=1)
    serial = serial_runner.run_matrix(MATRIX)

    before = engine_invocations()
    pool_runner = StudyRunner(cache=RunCache(tmp_path / "pool"), jobs=4)
    parallel = pool_runner.run_matrix(MATRIX)
    assert engine_invocations() == before, "pool work must leave the parent"
    assert pool_runner.simulated == serial_runner.simulated

    for a, b in zip(serial, parallel):
        assert a.result.trace.dumps_jsonl() == b.result.trace.dumps_jsonl()
        assert metric_digest(a) == metric_digest(b)


def test_jobs4_cache_stats_aggregate_to_serial_totals(tmp_path):
    """Worker-process cache counters must be absorbed by the parent:
    a ``--jobs 4`` run reports the same hit/miss/store totals as
    ``--jobs 1``, not just the ones the parent process happened to see."""
    from dataclasses import asdict

    serial_cache = RunCache(tmp_path / "serial")
    serial_runner = StudyRunner(cache=serial_cache, jobs=1)
    serial_runner.run_matrix(MATRIX)

    pool_cache = RunCache(tmp_path / "pool")
    StudyRunner(cache=pool_cache, jobs=4).run_matrix(MATRIX)

    assert asdict(pool_cache.stats) == asdict(serial_cache.stats)
    # every cold point (matrix + dedup'd references) missed then stored
    assert pool_cache.stats.trace_misses == serial_runner.simulated
    assert pool_cache.stats.trace_stores == pool_cache.stats.trace_misses


def test_matrix_deduplicates_reference_runs(tmp_path):
    runner = StudyRunner(cache=RunCache(tmp_path), jobs=1)
    before = engine_invocations()
    studies = runner.run_matrix(
        [MatrixPoint.of("fig3a", "MIR", 8), MatrixPoint.of("fig3a", "MIR", 4)]
    )
    # 2 matrix points + ONE shared (fig3a, MIR, 1) reference = 3 runs.
    assert engine_invocations() - before == 3
    assert runner.simulated == 3
    assert all(s.reference is not None for s in studies)
    ref_a, ref_b = (s.reference.trace.dumps_jsonl() for s in studies)
    assert ref_a == ref_b


def test_matrix_warm_rerun_zero_invocations(tmp_path):
    cache_dir = tmp_path / "cache"
    points = [MatrixPoint.of("fig3a", "MIR", 8), MatrixPoint.of("racy", "MIR", 2)]
    cold = StudyRunner(cache=RunCache(cache_dir), jobs=1).run_matrix(points)

    warm_runner = StudyRunner(cache=RunCache(cache_dir), jobs=1)
    before = engine_invocations()
    warm = warm_runner.run_matrix(points)
    assert engine_invocations() == before
    assert warm_runner.simulated == 0
    for a, b in zip(cold, warm):
        assert metric_digest(a) == metric_digest(b)


def test_matrix_point_parse():
    assert MatrixPoint.parse("sort") == MatrixPoint("sort", "MIR", 48)
    assert MatrixPoint.parse("sort:gcc") == MatrixPoint("sort", "GCC", 48)
    assert MatrixPoint.parse("sort:GCC:8") == MatrixPoint("sort", "GCC", 8)
    assert MatrixPoint.parse(
        "sort", default_flavor="ICC", default_threads=4
    ) == MatrixPoint("sort", "ICC", 4)
    with pytest.raises(ValueError):
        MatrixPoint.parse("")
    with pytest.raises(ValueError):
        MatrixPoint.parse("a:b:c:d")


def test_matrix_point_resolves_kwargs():
    point = MatrixPoint.of("fib", "MIR", 4, n=16, cutoff=8)
    assert point.resolve().input_summary == resolve("fib", n=16, cutoff=8).input_summary
