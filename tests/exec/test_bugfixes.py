"""Regression tests for the exec-layer bug batch.

Four previously-shipped defects, each pinned here:

1. ``RunCache.store`` wrote the trace before its meta sidecar, so a
   concurrent reader could load a trace and fabricate all-zero
   ``RunStats`` from the missing sidecar.
2. ``CacheStats.absorb`` raised ``AttributeError`` on any counter name
   it didn't know, so a mixed-version pool worker killed the whole run.
3. ``MatrixPoint.parse("sort:GCC:")`` crashed with a raw
   ``int('')`` ValueError instead of falling back to defaults.
4. ``StudyRunner.run_matrix`` bumped ``simulated`` by ``len(missing)``
   *before* simulating, so a failing worker left the counter (and the
   ``exec.simulated`` obs story) overcounted.
"""

import pytest

from repro.apps.registry import resolve_small
from repro.exec import MatrixPoint, RunCache, StudyRunner, TraceExecutor
from repro.exec.cache import CacheStats
from repro.runtime.flavors import MIR


def _store_one(cache, tmp_program, threads=2):
    executor = TraceExecutor(cache=cache)
    program = resolve_small(tmp_program)
    result = executor.run(program, MIR, threads)
    key = cache.key_for(program, MIR, threads)
    return program, key, result


class TestStoreOrdering:
    def test_meta_sidecar_lands_before_the_trace(self, tmp_path, monkeypatch):
        from repro.exec import cache as cache_mod

        writes = []
        real = cache_mod._atomic_write

        def recording(path, data):
            writes.append(path.parent.name)
            real(path, data)

        monkeypatch.setattr(cache_mod, "_atomic_write", recording)
        cache = RunCache(tmp_path)
        _store_one(cache, "fib")
        assert writes == ["meta", "traces"]

    def test_reader_interleaved_mid_store_sees_a_miss(
        self, tmp_path, monkeypatch
    ):
        # Pause the store after its first file write and probe from a
        # second cache handle: the half-written artifact must read as a
        # miss (re-simulate), never as a trace with invented zero stats.
        from repro.exec import cache as cache_mod

        cache = RunCache(tmp_path)
        reader = RunCache(tmp_path)
        observed = []
        real = cache_mod._atomic_write
        state = {"key": None, "writes": 0}

        def interleaving(path, data):
            real(path, data)
            state["writes"] += 1
            if state["writes"] == 1:
                observed.append(reader.lookup(state["key"]))

        monkeypatch.setattr(cache_mod, "_atomic_write", interleaving)
        program = resolve_small("fib")
        state["key"] = cache.key_for(program, MIR, 2)
        TraceExecutor(cache=cache).run(program, MIR, 2)
        assert observed == [None]
        assert reader.stats.trace_misses == 1
        # Once both files are down the artifact is fully visible.
        done = reader.lookup(state["key"])
        assert done is not None
        assert done.stats.events_emitted > 0

    def test_trace_without_sidecar_is_a_miss_and_resimulates(self, tmp_path):
        # A crashed writer (or a cache from before the ordering fix) can
        # leave a bare trace file behind.
        cache = RunCache(tmp_path)
        program, key, _result = _store_one(cache, "fib")
        (tmp_path / "meta" / f"{key.digest()}.json").unlink()

        fresh = RunCache(tmp_path)
        assert fresh.lookup(key) is None
        assert fresh.stats.trace_misses == 1

        executor = TraceExecutor(cache=fresh)
        rerun = executor.run(program, MIR, 2)
        assert executor.simulated == 1  # engine ran again
        assert rerun.stats.events_emitted > 0  # real stats, not zeros


class TestCacheStatsAbsorb:
    def test_unknown_counter_folds_into_extra(self):
        stats = CacheStats()
        stats.absorb({"trace_hits": 2, "weird_new_counter": 5})
        assert stats.trace_hits == 2
        assert stats.extra == {"weird_new_counter": 5}
        stats.absorb({"weird_new_counter": 3})
        assert stats.extra == {"weird_new_counter": 8}

    def test_absorbing_an_instance_merges_its_extra_too(self):
        worker = CacheStats(trace_stores=1)
        worker.extra["unpicklable_reports"] = 2
        parent = CacheStats(trace_stores=4)
        parent.extra["unpicklable_reports"] = 1
        parent.absorb(worker)
        assert parent.trace_stores == 5
        assert parent.extra == {"unpicklable_reports": 3}

    def test_known_counters_never_leak_into_extra(self):
        stats = CacheStats()
        stats.absorb(CacheStats(trace_hits=1, report_misses=2))
        assert stats.trace_hits == 1
        assert stats.report_misses == 2
        assert stats.extra == {}


class TestMatrixPointParse:
    def test_empty_trailing_fields_fall_back_to_defaults(self):
        assert MatrixPoint.parse("sort:GCC:") == MatrixPoint(
            "sort", "GCC", 48
        )
        assert MatrixPoint.parse("sort::8") == MatrixPoint("sort", "MIR", 8)
        assert MatrixPoint.parse("sort:") == MatrixPoint("sort", "MIR", 48)

    def test_non_integer_threads_is_a_friendly_error(self):
        with pytest.raises(ValueError, match="THREADS must be an integer"):
            MatrixPoint.parse("sort:GCC:abc")

    def test_too_many_fields_points_at_matrixpoint_of(self):
        with pytest.raises(ValueError, match="MatrixPoint.of"):
            MatrixPoint.parse("a:b:c:d")

    def test_empty_spec_is_rejected(self):
        with pytest.raises(ValueError, match="empty matrix point"):
            MatrixPoint.parse("")
        with pytest.raises(ValueError, match="empty matrix point"):
            MatrixPoint.parse(":GCC:8")


class TestSimulatedCountsCompletions:
    def test_serial_engine_failure_counts_only_completed_runs(
        self, monkeypatch
    ):
        from repro.exec import runner as runner_mod

        real = runner_mod.run_program
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("engine crashed mid-matrix")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_program", flaky)
        runner = StudyRunner(jobs=1)
        with pytest.raises(RuntimeError, match="engine crashed"):
            runner.run_matrix(["fig3a:MIR:2"])  # + its 1-thread reference
        assert runner.simulated == 1  # one landed, the crashed one didn't

    def test_failing_pool_worker_leaves_counter_at_zero(
        self, tmp_path, monkeypatch
    ):
        from repro.exec import runner as runner_mod

        class CrashingPool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, payloads):
                raise RuntimeError("pool worker died")

        monkeypatch.setattr(
            runner_mod, "ProcessPoolExecutor", CrashingPool
        )
        runner = StudyRunner(cache=RunCache(tmp_path), jobs=2)
        with pytest.raises(RuntimeError, match="pool worker died"):
            runner.run_matrix(["fig3a:MIR:2"])
        assert runner.simulated == 0  # nothing completed, nothing counted
