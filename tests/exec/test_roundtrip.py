"""Trace JSONL round-trip fidelity and Study-from-cache equivalence.

Two layers of guarantee back the artifact cache:

1. ``Trace.dumps_jsonl`` -> ``Trace.loads_jsonl`` preserves every event
   field — including the memory-footprint payloads (``reads``/``writes``
   triples) that the race detector consumes — and the metadata line.
2. A ``Study`` assembled from a cached trace is metric-for-metric equal
   to the ``Study`` assembled right after the live simulation (property
   test over sampled programs, flavors, and thread counts).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import micro
from repro.apps.registry import resolve_small
from repro.exec import CachedRun, RunCache, result_from_cached
from repro.machine import Machine
from repro.profiler.trace import Trace
from repro.runtime.api import run_program
from repro.runtime.flavors import flavor_by_name
from repro.workflow import build_study


def _run(program, flavor="MIR", threads=8):
    return run_program(
        program,
        flavor=flavor_by_name(flavor),
        num_threads=threads,
        machine=Machine.paper_testbed(),
    )


def _roundtrip(trace: Trace) -> Trace:
    return Trace.loads_jsonl(trace.dumps_jsonl())


def metric_digest(study) -> dict:
    """Everything a figure could read off a Study, in comparable form."""
    metrics = study.report.metrics
    return {
        "makespan": study.makespan_cycles,
        "speedup": study.speedup,
        "critical_path": metrics.critical_path.length_cycles,
        "load_balance": metrics.load_balance.value,
        "parallelism_peak": metrics.parallelism.peak,
        "parallelism_mean": metrics.parallelism.mean,
        "benefit": metrics.benefit,
        "per_grain": metrics.per_grain,
        "problems": study.report.problems,
        "summary": study.report.summary(),
        "advice": [str(a) for a in study.advice],
    }


# ---------------------------------------------------------------------------
# 1. Event-field fidelity
# ---------------------------------------------------------------------------
def test_task_events_roundtrip_exactly():
    result = _run(resolve_small("fib"), threads=4)
    loaded = _roundtrip(result.trace)
    assert loaded.meta == result.trace.meta
    assert len(loaded.events) == len(result.trace.events)
    for original, reloaded in zip(result.trace.events, loaded.events):
        assert type(original) is type(reloaded)
        assert original == reloaded


def test_loop_events_roundtrip_exactly():
    result = _run(micro.fig3b(), threads=2)
    loaded = _roundtrip(result.trace)
    assert loaded.events == result.trace.events
    # The loop path must actually be exercised for this to mean anything.
    assert loaded.num_chunks > 0


def test_memory_footprints_survive_roundtrip():
    """The PR-1 reads/writes payloads must come back intact."""
    result = _run(micro.racy(), threads=2)
    loaded = _roundtrip(result.trace)
    originals = [
        e for frags in result.trace.fragments_by_task.values() for e in frags
    ]
    reloaded = [
        e for frags in loaded.fragments_by_task.values() for e in frags
    ]
    assert originals == reloaded
    footprints = [e for e in originals if e.reads or e.writes]
    assert footprints, "racy must record memory footprints"
    for event in footprints:
        match = next(
            e for e in reloaded if (e.tid, e.seq) == (event.tid, event.seq)
        )
        assert match.reads == event.reads
        assert match.writes == event.writes


def test_dump_load_jsonl_file(tmp_path):
    result = _run(micro.fig3a(), threads=4)
    path = tmp_path / "trace.jsonl"
    result.trace.dump_jsonl(path)
    assert Trace.load_jsonl(path).events == result.trace.events


# ---------------------------------------------------------------------------
# 2. Study-from-cache == cold Study (property test)
# ---------------------------------------------------------------------------
SAMPLED_PROGRAMS = ["fig3a", "fig3b", "racy", "racy-fixed", "fib", "nqueens"]


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(SAMPLED_PROGRAMS),
    flavor=st.sampled_from(["MIR", "GCC", "ICC"]),
    threads=st.sampled_from([1, 2, 8]),
)
def test_study_from_cached_trace_equals_cold_study(
    tmp_path_factory, name, flavor, threads
):
    cache = RunCache(tmp_path_factory.mktemp("exec-cache"))
    program = resolve_small(name)
    result = _run(program, flavor, threads)
    reference = _run(program, flavor, 1) if threads != 1 else None
    cold = build_study(program, result, reference=reference)

    key = cache.key_for(program, flavor_by_name(flavor), threads)
    cache.store(key, result)
    cached = cache.lookup(key)
    assert cached is not None
    assert cached.trace.dumps_jsonl() == result.trace.dumps_jsonl()
    assert cached.stats == result.stats

    rebuilt_reference = None
    if reference is not None:
        rebuilt_reference = result_from_cached(
            CachedRun(_roundtrip(reference.trace), reference.stats)
        )
    rebuilt = build_study(
        program,
        result_from_cached(cached),
        reference=rebuilt_reference,
    )
    assert metric_digest(rebuilt) == metric_digest(cold)
