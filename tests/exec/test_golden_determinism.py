"""Golden-determinism regression: identical config => identical bytes.

The ``repro.exec`` cache is content-addressed by run configuration, so
its soundness rests on the simulator being a pure function of that
configuration: two runs of the same program under the same flavor,
thread count, and machine must serialize to *byte-identical* JSONL.
These tests pin that down for every registered CLI program (and across
all three runtime flavors for a representative subset), failing loudly
if anyone introduces unseeded randomness, wall-clock leakage, or
set/dict-iteration-order dependence into the engine, scheduler, cost
model, or apps.
"""

import pytest

from repro.apps.registry import PROGRAMS, resolve_small
from repro.machine import Machine
from repro.runtime.api import run_program
from repro.runtime.flavors import flavor_by_name

THREADS = 8


def _trace_bytes(name: str, flavor: str, threads: int = THREADS) -> str:
    result = run_program(
        resolve_small(name),
        flavor=flavor_by_name(flavor),
        num_threads=threads,
        machine=Machine.paper_testbed(),
    )
    return result.trace.dumps_jsonl()


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_trace_bytes_identical_across_runs(name):
    assert _trace_bytes(name, "MIR") == _trace_bytes(name, "MIR")


@pytest.mark.parametrize("name", ["fib", "sort", "fig3b", "kdtree"])
@pytest.mark.parametrize("flavor", ["MIR", "GCC", "ICC"])
def test_trace_bytes_identical_across_runs_all_flavors(name, flavor):
    assert _trace_bytes(name, flavor) == _trace_bytes(name, flavor)


def test_distinct_configs_produce_distinct_traces():
    """Sanity check that the comparison above is not vacuous."""
    assert _trace_bytes("fib", "MIR", 8) != _trace_bytes("fib", "MIR", 4)
    assert _trace_bytes("fib", "MIR") != _trace_bytes("fib", "GCC")
