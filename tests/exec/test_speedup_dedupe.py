"""Regression: ``speedup_table`` must not re-simulate shared runs.

Before the ``repro.exec`` rewiring, the Fig. 1 harness re-ran the
single-core ICC baseline even when it coincided with a requested matrix
point, and repeated calls (one per figure variant) re-simulated
everything from scratch.  These tests count actual engine invocations to
pin the deduplication down.
"""

from repro.apps.registry import resolve
from repro.exec import RunCache, TraceExecutor
from repro.runtime.engine import engine_invocations
from repro.runtime.flavors import GCC, ICC, MIR
from repro.workflow import profile_program, speedup_table


def _fib():
    return resolve("fib", n=16, cutoff=8)


def test_baseline_coinciding_with_matrix_point_runs_once():
    before = engine_invocations()
    rows = speedup_table([_fib()], flavors=(ICC,), num_threads=1)
    # baseline = (fib, ICC, 1) = the single matrix point: one run, not two.
    assert engine_invocations() - before == 1
    assert rows[0].speedup == 1.0


def test_one_baseline_shared_across_flavors():
    before = engine_invocations()
    rows = speedup_table([_fib()], flavors=(GCC, ICC, MIR), num_threads=8)
    # 1 shared ICC single-core baseline + 3 multi-thread runs.
    assert engine_invocations() - before == 4
    assert len(rows) == 3
    assert len({row.single_core_cycles for row in rows}) == 1


def test_shared_executor_dedupes_across_calls():
    executor = TraceExecutor()
    before = engine_invocations()
    first = speedup_table([_fib()], flavors=(MIR,), num_threads=8,
                          executor=executor)
    again = speedup_table([_fib()], flavors=(MIR,), num_threads=8,
                          executor=executor)
    assert engine_invocations() - before == 2  # baseline + MIR:8, once each
    assert [r.speedup for r in first] == [r.speedup for r in again]


def test_warm_cache_speedup_table_zero_invocations(tmp_path):
    cold = speedup_table([_fib()], flavors=(GCC, MIR), num_threads=8,
                         cache=RunCache(tmp_path))
    before = engine_invocations()
    warm = speedup_table([_fib()], flavors=(GCC, MIR), num_threads=8,
                         cache=RunCache(tmp_path))
    assert engine_invocations() == before
    assert [(r.flavor, r.speedup) for r in warm] == [
        (r.flavor, r.speedup) for r in cold
    ]


def test_profile_program_warm_cache_zero_invocations(tmp_path):
    program = _fib()
    cold = profile_program(program, num_threads=8, cache=RunCache(tmp_path))
    before = engine_invocations()
    warm = profile_program(program, num_threads=8, cache=RunCache(tmp_path))
    assert engine_invocations() == before
    assert warm.report.summary() == cold.report.summary()
    assert warm.speedup == cold.speedup
