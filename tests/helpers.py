"""Shared test helpers: tiny programs and run shortcuts."""

from __future__ import annotations

from repro.common import SourceLocation
from repro.core.builder import build_grain_graph
from repro.machine import Machine, MachineConfig, CacheConfig, CostParams
from repro.machine.cost import WorkRequest
from repro.machine.topology import small_smp
from repro.runtime.actions import ParallelFor, Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.runtime.flavors import MIR
from repro.runtime.loops import LoopSpec, Schedule

LOC = SourceLocation("test.c", 1, "t")


def small_machine(cores: int = 4) -> Machine:
    """A small single-socket machine for fast unit tests."""
    return Machine(
        MachineConfig(
            topology=small_smp(cores), cache=CacheConfig(), cost=CostParams()
        )
    )


def leaf(cycles: int = 1000, accesses=()):
    def body():
        yield Work(WorkRequest(cycles=cycles, accesses=tuple(accesses)))

    return body


def spawn_n_and_wait(n: int, cycles: int = 1000) -> Program:
    """Root spawns ``n`` leaves and taskwaits."""

    def main():
        for _ in range(n):
            yield Spawn(leaf(cycles), loc=LOC)
        yield TaskWait()

    return Program("spawn_n", main)


def binary_tree(depth: int, leaf_cycles: int = 500) -> Program:
    """Balanced binary task tree with taskwaits at every level."""

    def node(level: int):
        def body():
            if level == 0:
                yield Work(WorkRequest(cycles=leaf_cycles))
                return
            yield Spawn(node(level - 1), loc=LOC)
            yield Spawn(node(level - 1), loc=LOC)
            yield TaskWait()
            yield Work(WorkRequest(cycles=50))

        return body

    def main():
        yield Spawn(node(depth), loc=LOC)
        yield TaskWait()

    return Program("binary_tree", main)


def loop_program(
    iterations: int = 20,
    chunk: int | None = 4,
    threads: int | None = 2,
    schedule: Schedule = Schedule.STATIC,
    cycles_of=None,
) -> Program:
    cycles_of = cycles_of or (lambda i: 200)

    def main():
        yield ParallelFor(
            LoopSpec(
                iterations=iterations,
                chunk_size=chunk,
                num_threads=threads,
                schedule=schedule,
                body=lambda i: WorkRequest(cycles=cycles_of(i)),
                loc=SourceLocation("test.c", 20, "loop"),
            )
        )

    return Program("loop", main)


def run_and_graph(program: Program, flavor=MIR, threads: int = 4, machine=None):
    """Run a program and return (result, grain graph)."""
    result = run_program(
        program, flavor=flavor, num_threads=threads, machine=machine
    )
    return result, build_grain_graph(result.trace)
