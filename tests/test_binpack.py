"""Tests for the minimum-cores bin packer (the Gecode stand-in)."""

import pytest

from repro.binpack import (
    first_fit_decreasing,
    lower_bound_l2,
    minimum_cores,
    pack_feasible,
)


class TestLowerBoundL2:
    def test_at_least_area_bound(self):
        items = [7, 7, 7, 5, 5, 3, 2]
        capacity = 10
        area = -(-sum(items) // capacity)
        assert lower_bound_l2(items, capacity) >= area

    def test_big_items_counted_individually(self):
        # Three items over half capacity can never share bins; the area
        # bound alone would allow 2.
        assert lower_bound_l2([6, 6, 6], 10) == 3

    def test_threshold_term(self):
        # At threshold 4 the 7s' residual of 3 is useless to the 4s, so
        # the three 4s need ceil(12/10) = 2 extra bins: 5 total, which
        # is also the optimum (the plain area bound only gives 4).
        assert lower_bound_l2([7, 7, 7, 4, 4, 4], 10) == 5

    def test_never_exceeds_optimum(self):
        # FFD is optimal on these; the bound must not overshoot it.
        for items, capacity in [
            ([4, 4, 4, 6, 6], 12),
            ([5] * 10, 10),
            ([1] * 40, 50),
            ([50, 25, 25], 50),
        ]:
            bins = minimum_cores(items, capacity).num_bins
            assert lower_bound_l2(items, capacity) <= bins

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            lower_bound_l2([1], 0)

    def test_adversarial_infeasibility_is_fast(self):
        # The seed's blowup: ~40 mid-size items, tight capacity.  The L2
        # precheck must prove bins-1 infeasible without search.
        items = [26, 27, 28, 29] * 10
        capacity = 55
        result = minimum_cores(items, makespan=capacity)
        area = -(-sum(items) // capacity)
        ffd = first_fit_decreasing(items, capacity)
        assert area <= result.num_bins <= ffd.num_bins


class TestFFD:
    def test_simple_fit(self):
        result = first_fit_decreasing([5, 5, 5, 5], capacity=10)
        assert result.num_bins == 2
        assert result.max_load == 10

    def test_assignment_is_valid(self):
        items = [7, 3, 6, 2, 5, 4]
        result = first_fit_decreasing(items, capacity=9)
        loads = [0] * result.num_bins
        for index, b in enumerate(result.assignment):
            loads[b] += items[index]
        assert list(result.loads) == loads
        assert all(load <= 9 for load in loads)

    def test_oversized_item_rejected(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([11], capacity=10)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([1], capacity=0)


class TestExact:
    def test_feasible_packing_found(self):
        # FFD needs 3 bins for this classic instance; exact finds 2.
        items = [4, 4, 4, 6, 6]
        capacity = 12
        ffd = first_fit_decreasing(items, capacity)
        exact = pack_feasible(items, capacity, bins=2)
        assert exact is not None
        assert max(exact.loads) <= capacity

    def test_infeasible_returns_none(self):
        assert pack_feasible([6, 6, 6], capacity=10, bins=1) is None

    def test_area_bound_shortcut(self):
        assert pack_feasible([5] * 10, capacity=10, bins=4) is None

    def test_assignment_order_restored(self):
        items = [2, 9, 4]
        result = pack_feasible(items, capacity=11, bins=2)
        loads = [0, 0]
        for index, b in enumerate(result.assignment):
            loads[b] += items[index]
        assert sorted(loads) == sorted(result.loads)


class TestMinimumCores:
    def test_freqmine_shape(self):
        """A few huge grains plus lots of small ones: the minimum is the
        area bound when the big grains pack alongside small fill."""
        big = [100, 85, 70, 60, 50]
        small = [2] * 200
        result = minimum_cores(big + small, makespan=110)
        area = -(-sum(big + small) // 110)
        assert result.num_bins == area
        assert result.max_load <= 110

    def test_single_core_when_everything_fits(self):
        result = minimum_cores([10, 20, 30], makespan=100)
        assert result.num_bins == 1

    def test_one_bin_per_item_when_items_equal_makespan(self):
        result = minimum_cores([10, 10, 10], makespan=10)
        assert result.num_bins == 3

    def test_never_above_ffd(self):
        items = [13, 11, 7, 7, 5, 3, 2, 2]
        makespan = 16
        ffd = first_fit_decreasing(items, makespan)
        assert minimum_cores(items, makespan).num_bins <= ffd.num_bins

    def test_empty_input(self):
        assert minimum_cores([], makespan=10).num_bins == 0

    def test_bad_makespan(self):
        with pytest.raises(ValueError):
            minimum_cores([1], makespan=0)


class TestGraphIntegration:
    def test_minimum_cores_for_skewed_loop(self):
        from helpers import loop_program, run_and_graph, small_machine
        from repro.binpack import minimum_cores_for_graph
        from repro.runtime.loops import Schedule

        def skewed(i):
            return 120_000 if i == 5 else 1000

        _, graph = run_and_graph(
            loop_program(iterations=64, chunk=1, threads=8,
                         schedule=Schedule.DYNAMIC, cycles_of=skewed),
            machine=small_machine(8),
            threads=8,
        )
        result = minimum_cores_for_graph(graph, loop_id=0)
        # The big grain dominates the makespan; far fewer than 8 cores
        # preserve it.
        assert 1 <= result.num_bins < 8

    def test_unknown_loop_rejected(self):
        from helpers import binary_tree, run_and_graph, small_machine
        from repro.binpack import minimum_cores_for_graph

        _, graph = run_and_graph(
            binary_tree(3), machine=small_machine(2), threads=2
        )
        with pytest.raises(ValueError):
            minimum_cores_for_graph(graph, loop_id=0)
