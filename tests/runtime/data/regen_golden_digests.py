"""Regenerate ``golden_digests.json`` — run from the repo root::

    PYTHONPATH=src python tests/runtime/data/regen_golden_digests.py

The digests pin the engine's observable output (trace bytes, event
count, makespan, RunStats) for every program x {MIR, GCC} x {2, 8}
threads.  ``test_columnar_diff.py`` holds BOTH event-storage paths to
them, so regenerate only after an *intentional* trace-format or
simulation-semantics change, and say so in the commit message.

The digests are computed from the legacy row path (``columnar=False``)
— the reference the columnar path must reproduce.
"""

import hashlib
import json
import pathlib
import sys

from repro.apps.registry import PROGRAMS, resolve_small
from repro.profiler.recorder import ProfilerConfig
from repro.runtime.api import run_program
from repro.runtime.flavors import GCC, MIR

OUT = pathlib.Path(__file__).parent / "golden_digests.json"
FLAVORS = {"MIR": MIR, "GCC": GCC}
THREAD_COUNTS = (2, 8)


def main() -> int:
    digests = {}
    for name in sorted(PROGRAMS):
        for flavor_name, flavor in sorted(FLAVORS.items()):
            for threads in THREAD_COUNTS:
                result = run_program(
                    resolve_small(name),
                    flavor=flavor,
                    num_threads=threads,
                    profiler=ProfilerConfig(columnar=False),
                )
                text = result.trace.dumps_jsonl()
                digests[f"{name}|{flavor_name}|{threads}"] = {
                    "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
                    "events": len(result.trace),
                    "makespan_cycles": result.makespan_cycles,
                    "stats": dict(sorted(vars(result.stats).items())),
                }
                print(f"{name}|{flavor_name}|{threads}", file=sys.stderr)
    OUT.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {OUT}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
