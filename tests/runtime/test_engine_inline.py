"""Engine tests: undeferred (inlined) task execution and internal cutoffs."""

from dataclasses import replace

from helpers import LOC, small_machine, spawn_n_and_wait

from repro.machine.cost import WorkRequest
from repro.runtime.actions import Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.runtime.flavors import GCC, ICC, MIR


def if0_program(n=3):
    """Children spawned with if(0): always undeferred."""

    def child(i):
        def body():
            yield Work(WorkRequest(cycles=100 * (i + 1)))

        return body

    def main():
        for i in range(n):
            yield Spawn(child(i), loc=LOC, if_clause=False)
        yield TaskWait()

    return Program("if0", main)


class TestIfClause:
    def test_if0_children_are_inlined(self):
        result = run_program(if0_program(3), machine=small_machine(2), num_threads=2)
        assert result.stats.tasks_inlined == 3

    def test_inlined_children_are_still_grains(self):
        """The graph structure is robust under runtime inlining."""
        from repro.core.builder import build_grain_graph

        result = run_program(if0_program(3), machine=small_machine(2), num_threads=2)
        graph = build_grain_graph(result.trace)
        assert graph.num_grains == 4  # root + the three inlined children
        creates = [e for e in result.trace if e.kind == "task_create"]
        assert sum(1 for c in creates if c.inlined) == 3

    def test_inline_execution_is_serialized(self):
        """An undeferred child runs to completion before the parent
        continues: total time is the sum."""
        result = run_program(if0_program(3), machine=small_machine(4), num_threads=4)
        assert result.makespan_cycles >= 100 + 200 + 300

    def test_inline_children_sync_normally(self):
        result = run_program(if0_program(2), machine=small_machine(2), num_threads=2)
        synced = [
            tid
            for e in result.trace
            if e.kind == "taskwait_end"
            for tid in e.synced_tids
        ]
        assert sorted(synced) == [1, 2]

    def test_inlined_child_can_spawn_deferred_grandchildren(self):
        def grandchild():
            yield Work(WorkRequest(cycles=50))

        def child():
            yield Spawn(grandchild, loc=LOC)  # deferred (MIR never inlines)
            yield TaskWait()

        def main():
            yield Spawn(child, loc=LOC, if_clause=False)
            yield TaskWait()

        result = run_program(
            Program("nested_inline", main), machine=small_machine(2), num_threads=2
        )
        assert result.stats.tasks_created == 3
        assert result.stats.tasks_inlined == 1


class TestInternalCutoffs:
    def test_mir_defers_everything(self):
        result = run_program(
            spawn_n_and_wait(50, cycles=100),
            flavor=MIR,
            machine=small_machine(2),
            num_threads=2,
        )
        assert result.stats.tasks_inlined == 0

    def test_icc_pool_cutoff_inlines_floods(self):
        # 2 threads -> inline once 2 * throttle tasks are pending.
        result = run_program(
            spawn_n_and_wait(100, cycles=100),
            flavor=ICC,
            machine=small_machine(2),
            num_threads=2,
        )
        assert result.stats.tasks_inlined > 0

    def test_gcc_throttle_is_laxer_than_icc(self):
        kwargs = dict(machine=small_machine(2), num_threads=2)
        icc = run_program(
            spawn_n_and_wait(200, cycles=100), flavor=ICC,
            machine=small_machine(2), num_threads=2,
        )
        gcc = run_program(
            spawn_n_and_wait(200, cycles=100), flavor=GCC,
            machine=small_machine(2), num_threads=2,
        )
        assert icc.stats.tasks_inlined > gcc.stats.tasks_inlined

    def test_inlining_reduces_makespan_for_tiny_tasks(self):
        """The whole point of an internal cutoff: floods of tiny tasks run
        faster undeferred."""
        never = replace(ICC, throttle_per_thread=None, name="ICC-off")
        machine = small_machine(2)
        with_cutoff = run_program(
            spawn_n_and_wait(300, cycles=50), flavor=ICC,
            machine=machine, num_threads=2,
        )
        without = run_program(
            spawn_n_and_wait(300, cycles=50), flavor=never,
            machine=machine.fresh(), num_threads=2,
        )
        assert with_cutoff.makespan_cycles < without.makespan_cycles
