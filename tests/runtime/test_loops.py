"""Tests for loop specs and chunk dispatchers."""

import pytest

from repro.machine.cost import Access, WorkRequest
from repro.runtime.loops import (
    ChunkDispatcher,
    DynamicDispatcher,
    GuidedDispatcher,
    LoopSpec,
    Schedule,
    StaticDispatcher,
)


def spec(n=20, schedule=Schedule.STATIC, chunk=None, body=None, threads=None):
    return LoopSpec(
        iterations=n,
        body=body or (lambda i: WorkRequest(cycles=10)),
        schedule=schedule,
        chunk_size=chunk,
        num_threads=threads,
    )


def drain(dispatcher, team):
    """Collect every chunk per thread until the dispatcher runs dry."""
    chunks = {t: [] for t in range(team)}
    live = set(range(team))
    while live:
        for t in sorted(live):
            chunk = dispatcher.next_chunk(t)
            if chunk is None:
                live.discard(t)
            else:
                chunks[t].append(chunk)
    return chunks


def covered(chunks):
    iters = []
    for per_thread in chunks.values():
        for start, end in per_thread:
            iters.extend(range(start, end))
    return sorted(iters)


class TestStatic:
    def test_fig3b_five_chunks_of_four(self):
        """Fig. 3b: 20 iterations, chunk 4, two threads."""
        d = StaticDispatcher(spec(20, chunk=4), team_size=2)
        chunks = drain(d, 2)
        assert chunks[0] == [(0, 4), (8, 12), (16, 20)]
        assert chunks[1] == [(4, 8), (12, 16)]

    def test_no_chunk_size_gives_contiguous_blocks(self):
        d = StaticDispatcher(spec(10), team_size=3)
        chunks = drain(d, 3)
        assert chunks[0] == [(0, 4)]
        assert chunks[1] == [(4, 7)]
        assert chunks[2] == [(7, 10)]

    def test_full_coverage(self):
        d = StaticDispatcher(spec(23, chunk=3), team_size=4)
        assert covered(drain(d, 4)) == list(range(23))

    def test_empty_loop(self):
        d = StaticDispatcher(spec(0), team_size=2)
        assert d.next_chunk(0) is None


class TestDynamic:
    def test_default_chunk_is_one(self):
        d = DynamicDispatcher(spec(3, schedule=Schedule.DYNAMIC), team_size=2)
        assert d.next_chunk(0) == (0, 1)
        assert d.next_chunk(1) == (1, 2)
        assert d.next_chunk(0) == (2, 3)
        assert d.next_chunk(1) is None

    def test_shared_counter_in_grab_order(self):
        d = DynamicDispatcher(
            spec(10, schedule=Schedule.DYNAMIC, chunk=4), team_size=2
        )
        assert d.next_chunk(1) == (0, 4)
        assert d.next_chunk(0) == (4, 8)
        assert d.next_chunk(1) == (8, 10)  # trailing partial chunk

    def test_full_coverage(self):
        d = DynamicDispatcher(
            spec(17, schedule=Schedule.DYNAMIC, chunk=3), team_size=3
        )
        assert covered(drain(d, 3)) == list(range(17))


class TestGuided:
    def test_chunks_decrease(self):
        d = GuidedDispatcher(spec(100, schedule=Schedule.GUIDED), team_size=2)
        sizes = []
        while True:
            chunk = d.next_chunk(0)
            if chunk is None:
                break
            sizes.append(chunk[1] - chunk[0])
        assert sizes[0] > sizes[-1]
        assert sizes == sorted(sizes, reverse=True)

    def test_respects_min_chunk(self):
        d = GuidedDispatcher(
            spec(100, schedule=Schedule.GUIDED, chunk=8), team_size=2
        )
        chunks = drain(d, 2)
        sizes = [e - s for per in chunks.values() for s, e in per]
        assert all(size >= 8 for size in sizes[:-1])

    def test_full_coverage(self):
        d = GuidedDispatcher(spec(137, schedule=Schedule.GUIDED), team_size=4)
        assert covered(drain(d, 4)) == list(range(137))


class TestFactoryAndValidation:
    def test_factory_dispatch(self):
        assert isinstance(
            ChunkDispatcher.create(spec(5), 1), StaticDispatcher
        )
        assert isinstance(
            ChunkDispatcher.create(spec(5, schedule=Schedule.DYNAMIC), 1),
            DynamicDispatcher,
        )
        assert isinstance(
            ChunkDispatcher.create(spec(5, schedule=Schedule.GUIDED), 1),
            GuidedDispatcher,
        )

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            spec(-1)

    def test_zero_chunk_rejected(self):
        with pytest.raises(ValueError):
            spec(10, chunk=0)

    def test_zero_team_rejected(self):
        with pytest.raises(ValueError):
            StaticDispatcher(spec(10), team_size=0)

    def test_num_threads_validation(self):
        with pytest.raises(ValueError):
            spec(10, threads=0)


class TestMergedRequest:
    def test_cycles_sum(self):
        s = spec(10, body=lambda i: WorkRequest(cycles=i))
        merged = s.merged_request(2, 5)
        assert merged.cycles == 2 + 3 + 4

    def test_accesses_merge_by_region_and_pattern(self):
        def body(i):
            return WorkRequest(
                cycles=1,
                accesses=(
                    Access(0, 64, pattern=0.5),
                    Access(1, 32, pattern=1.0),
                ),
            )

        merged = spec(10, body=body).merged_request(0, 4)
        assert len(merged.accesses) == 2
        by_region = {a.region_id: a for a in merged.accesses}
        assert by_region[0].nbytes == 4 * 64
        assert by_region[0].pattern == 0.5
        assert by_region[1].nbytes == 4 * 32

    def test_different_patterns_stay_separate(self):
        def body(i):
            pattern = 0.5 if i % 2 else 1.0
            return WorkRequest(cycles=1, accesses=(Access(0, 64, pattern=pattern),))

        merged = spec(10, body=body).merged_request(0, 4)
        assert len(merged.accesses) == 2

    def test_definition_key_defaults_to_location(self):
        s = spec(5)
        assert s.definition_key() == str(s.loc)
