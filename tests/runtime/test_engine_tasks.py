"""Engine tests: task execution semantics."""

import pytest

from helpers import LOC, binary_tree, leaf, small_machine, spawn_n_and_wait

from repro.machine.cost import WorkRequest
from repro.runtime.actions import Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.runtime.flavors import MIR


class TestBasics:
    def test_empty_program_completes(self):
        def main():
            return
            yield  # pragma: no cover

        result = run_program(Program("empty", main), machine=small_machine())
        assert result.makespan_cycles == 0
        assert result.stats.tasks_created == 1  # the root

    def test_single_work_segment(self):
        def main():
            yield Work(WorkRequest(cycles=1234))

        result = run_program(Program("w", main), machine=small_machine())
        assert result.makespan_cycles == 1234

    def test_sequential_work_segments_add(self):
        def main():
            yield Work(WorkRequest(cycles=100))
            yield Work(WorkRequest(cycles=200))

        result = run_program(Program("w2", main), machine=small_machine())
        assert result.makespan_cycles == 300

    def test_spawn_returns_handle(self):
        seen = {}

        def child():
            yield Work(WorkRequest(cycles=10))

        def main():
            handle = yield Spawn(child, loc=LOC)
            seen["handle"] = handle
            yield TaskWait()
            seen["completed"] = handle.completed

        run_program(Program("h", main), machine=small_machine(), num_threads=2)
        assert seen["handle"].task.tid == 1
        assert seen["completed"] is True

    def test_results_flow_through_shared_state(self):
        out = {}

        def child():
            yield Work(WorkRequest(cycles=10))
            out["value"] = 42

        def main():
            yield Spawn(child, loc=LOC)
            yield TaskWait()
            out["after_wait"] = out.get("value")

        run_program(Program("r", main), machine=small_machine(), num_threads=2)
        assert out["after_wait"] == 42


class TestParallelism:
    def test_independent_tasks_overlap(self):
        program = spawn_n_and_wait(4, cycles=10_000)
        serial = run_program(program, machine=small_machine(4), num_threads=1)
        parallel = run_program(program, machine=small_machine(4), num_threads=4)
        assert parallel.makespan_cycles < serial.makespan_cycles / 2

    def test_more_threads_never_hurt_much(self):
        program = binary_tree(depth=5, leaf_cycles=5_000)
        times = {}
        for threads in (1, 2, 4):
            times[threads] = run_program(
                program, machine=small_machine(4), num_threads=threads
            ).makespan_cycles
        assert times[2] < times[1]
        assert times[4] <= times[2] * 1.1

    def test_work_conservation(self):
        """Total fragment time equals the serial work regardless of the
        thread count (no memory accesses -> no inflation)."""
        program = binary_tree(depth=4, leaf_cycles=777)
        from repro.core.builder import build_grain_graph

        busies = []
        for threads in (1, 3):
            result = run_program(
                program, machine=small_machine(4), num_threads=threads
            )
            graph = build_grain_graph(result.trace)
            busies.append(sum(g.exec_time for g in graph.grains.values()))
        assert busies[0] == busies[1]


class TestTaskwaitSemantics:
    def test_taskwait_waits_only_direct_children(self):
        order = []

        def grandchild():
            yield Work(WorkRequest(cycles=50_000))
            order.append("grandchild")

        def child():
            yield Spawn(grandchild, loc=LOC)
            yield Work(WorkRequest(cycles=10))
            order.append("child")
            # no taskwait: grandchild is an orphan synced at the barrier

        def main():
            yield Spawn(child, loc=LOC)
            yield TaskWait()
            order.append("after_wait")

        run_program(Program("tw", main), machine=small_machine(2), num_threads=1)
        # With one worker, LIFO order runs child fully, then the taskwait
        # completes before the long grandchild has to finish... the
        # grandchild may still run before 'after_wait' on one thread, so
        # assert only the guaranteed ordering:
        assert order.index("child") < order.index("after_wait")
        assert "grandchild" in order

    def test_multiple_taskwaits(self):
        def main():
            yield Spawn(leaf(100), loc=LOC)
            yield TaskWait()
            yield Spawn(leaf(100), loc=LOC)
            yield TaskWait()

        result = run_program(
            Program("tw2", main), machine=small_machine(2), num_threads=2
        )
        ends = [e for e in result.trace if e.kind == "taskwait_end"]
        assert len(ends) == 2
        assert all(len(e.synced_tids) == 1 for e in ends)

    def test_taskwait_with_no_children_is_fast(self):
        def main():
            yield TaskWait()
            yield Work(WorkRequest(cycles=10))

        result = run_program(Program("tw0", main), machine=small_machine())
        assert result.makespan_cycles < 2000


class TestFireAndForget:
    def test_orphans_sync_at_region_barrier(self):
        def child():
            yield Work(WorkRequest(cycles=5000))

        def main():
            yield Spawn(child, loc=LOC)
            yield Work(WorkRequest(cycles=10))
            # root body ends with the child outstanding

        result = run_program(
            Program("ff", main), machine=small_machine(2), num_threads=2
        )
        begins = [e for e in result.trace if e.kind == "taskwait_begin"]
        assert any(e.implicit for e in begins)
        # The makespan covers the orphan's execution.
        assert result.makespan_cycles >= 5000

    def test_deep_fire_and_forget_chain(self):
        def chain(depth):
            def body():
                yield Work(WorkRequest(cycles=100))
                if depth > 0:
                    yield Spawn(chain(depth - 1), loc=LOC)

            return body

        def main():
            yield Spawn(chain(20), loc=LOC)

        result = run_program(
            Program("chain", main), machine=small_machine(2), num_threads=2
        )
        assert result.stats.tasks_created == 22  # root + 21 chain tasks

    def test_all_tasks_synced_somewhere(self):
        def main():
            for _ in range(5):
                yield Spawn(leaf(100), loc=LOC)
            # no explicit wait

        result = run_program(
            Program("ff5", main), machine=small_machine(4), num_threads=4
        )
        synced = [
            tid
            for e in result.trace
            if e.kind == "taskwait_end"
            for tid in e.synced_tids
        ]
        assert sorted(synced) == [1, 2, 3, 4, 5]


class TestStats:
    def test_task_counts(self):
        result = run_program(
            spawn_n_and_wait(7), machine=small_machine(2), num_threads=2
        )
        assert result.stats.tasks_created == 8  # root + 7
        assert result.trace.num_tasks == 8

    def test_engine_runs_once(self):
        from repro.runtime.engine import Engine

        machine = small_machine()
        engine = Engine(machine, MIR, 1)
        engine.run(spawn_n_and_wait(1).body)
        with pytest.raises(RuntimeError):
            engine.run(spawn_n_and_wait(1).body)

    def test_thread_bounds_validated(self):
        with pytest.raises(ValueError):
            run_program(spawn_n_and_wait(1), machine=small_machine(2), num_threads=3)
        with pytest.raises(ValueError):
            run_program(spawn_n_and_wait(1), machine=small_machine(2), num_threads=0)

    def test_used_machine_rejected(self):
        machine = small_machine(2)
        run_program(spawn_n_and_wait(1), machine=machine)
        with pytest.raises(ValueError):
            run_program(spawn_n_and_wait(1), machine=machine)

    def test_non_action_yield_raises(self):
        def main():
            yield "not an action"

        with pytest.raises(TypeError):
            run_program(Program("bad", main), machine=small_machine())
