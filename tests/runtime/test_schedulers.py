"""Tests for the work-stealing and central-queue schedulers."""

import pytest

from repro.runtime.sched import (
    CentralQueueScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from repro.runtime.sched.base import PopKind
from repro.runtime.task import TaskInstance


def task(tid):
    return TaskInstance(tid=tid, path=(0, tid), parent=None, generator=iter(()))


class TestWorkStealing:
    def test_owner_pops_newest_first(self):
        ws = WorkStealingScheduler(2)
        a, b = task(1), task(2)
        ws.push(a, worker=0)
        ws.push(b, worker=0)
        result = ws.pop(0)
        assert result.task is b  # LIFO at the owner's end
        assert result.kind is PopKind.LOCAL

    def test_thief_steals_oldest(self):
        ws = WorkStealingScheduler(2)
        a, b = task(1), task(2)
        ws.push(a, worker=0)
        ws.push(b, worker=0)
        result = ws.pop(1)
        assert result.task is a  # FIFO at the thief's end
        assert result.kind is PopKind.STEAL
        assert result.victim == 0

    def test_round_robin_victim_order(self):
        ws = WorkStealingScheduler(4)
        ws.push(task(1), worker=3)
        result = ws.pop(1)  # checks 2, 3, 0
        assert result.victim == 3

    def test_empty_pop_returns_none(self):
        assert WorkStealingScheduler(2).pop(0) is None

    def test_queue_length_and_pending(self):
        ws = WorkStealingScheduler(2)
        ws.push(task(1), 0)
        ws.push(task(2), 1)
        assert ws.queue_length(0) == 1
        assert ws.queue_length(1) == 1
        assert ws.total_pending() == 2
        ws.pop(0)
        assert ws.total_pending() == 1

    def test_kind_name(self):
        assert WorkStealingScheduler(1).kind_name == "workstealing"


class TestCentralQueue:
    def test_fifo_order(self):
        cq = CentralQueueScheduler(2)
        a, b = task(1), task(2)
        cq.push(a, 0)
        cq.push(b, 1)
        assert cq.pop(1).task is a
        assert cq.pop(0).task is b

    def test_pops_are_never_steals(self):
        cq = CentralQueueScheduler(2)
        cq.push(task(1), 0)
        assert cq.pop(1).kind is PopKind.LOCAL

    def test_shared_queue_length(self):
        cq = CentralQueueScheduler(4)
        cq.push(task(1), 0)
        cq.push(task(2), 3)
        for worker in range(4):
            assert cq.queue_length(worker) == 2
        assert cq.total_pending() == 2

    def test_kind_name(self):
        assert CentralQueueScheduler(1).kind_name == "central"


class TestFactory:
    def test_factory(self):
        assert isinstance(make_scheduler("workstealing", 2), WorkStealingScheduler)
        assert isinstance(make_scheduler("central", 2), CentralQueueScheduler)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("magic", 2)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(0)
