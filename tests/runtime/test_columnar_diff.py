"""Differential harness: columnar engine path == legacy row path.

The engine's hot path stores events column-wise (numpy structured-array
slabs, ``ProfilerConfig(columnar=True)``); the legacy path builds one
frozen dataclass per event (``columnar=False``).  This suite proves the
two are observationally identical over the full application registry:

* **Golden digests** — every cell of program x {MIR, GCC} x {2, 8}
  threads must reproduce the sha256 / event count / makespan / RunStats
  pinned from the pre-columnar engine
  (``tests/runtime/data/golden_digests.json``).  This anchors *both*
  paths to history, not merely to each other.
* **Row-vs-columnar differential** — byte-identical ``dumps_jsonl``,
  identical materialized event lists, identical ``RunStats`` and obs
  counter deltas, and a ``loads_jsonl`` round trip.
* **Derived-artifact differential** — grain graphs built from either
  trace yield identical metrics tables and lint findings.

The default run covers a pinned 8-program subset chosen for feature
diversity (tasks, loops, inlining, taskwait chains, races, memory-bound
kernels).  The all-26-program sweep is ``-m slow`` and runs as its own
CI job.
"""

import hashlib

import pytest

from repro.apps.registry import PROGRAMS, resolve_small
from repro.core.builder import build_grain_graph
from repro.lint.framework import run_lint
from repro.metrics.facade import MetricSet
from repro.obs import registry as obs_registry
from repro.profiler.recorder import ProfilerConfig
from repro.profiler.trace import Trace
from repro.runtime.api import run_program
from repro.runtime.flavors import GCC, MIR

FLAVORS = {"MIR": MIR, "GCC": GCC}
THREAD_COUNTS = (2, 8)

#: Deterministic default subset: recursive tasking (fib, sort,
#: strassen), irregular tasking (uts), loops + chunks (blackscholes,
#: botsspar), data races (racy), and a memory-bound kernel (fft).
PINNED_SUBSET = (
    "fib",
    "sort",
    "strassen",
    "uts",
    "blackscholes",
    "botsspar",
    "racy",
    "fft",
)
ALL_PROGRAMS = tuple(sorted(PROGRAMS))


def _cells(programs):
    return [
        pytest.param(name, flavor, threads, id=f"{name}-{flavor}-t{threads}")
        for name in programs
        for flavor in sorted(FLAVORS)
        for threads in THREAD_COUNTS
    ]


def _run(name: str, flavor: str, threads: int, columnar: bool):
    return run_program(
        resolve_small(name),
        flavor=FLAVORS[flavor],
        num_threads=threads,
        profiler=ProfilerConfig(columnar=columnar),
    )


def _digest(result) -> dict:
    text = result.trace.dumps_jsonl()
    return {
        "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        "events": len(result.trace),
        "makespan_cycles": result.makespan_cycles,
        "stats": dict(sorted(vars(result.stats).items())),
    }


def _engine_counter_delta(run_fn) -> tuple[object, dict]:
    """Run ``run_fn`` and return (result, engine.* obs counter deltas)."""
    before = dict(obs_registry.snapshot().counters)
    result = run_fn()
    after = obs_registry.snapshot().counters
    delta = {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if name.startswith("engine.") and value != before.get(name, 0)
    }
    return result, delta


def _assert_equivalent(name: str, flavor: str, threads: int) -> None:
    row, row_counters = _engine_counter_delta(
        lambda: _run(name, flavor, threads, columnar=False)
    )
    col, col_counters = _engine_counter_delta(
        lambda: _run(name, flavor, threads, columnar=True)
    )

    row_text = row.trace.dumps_jsonl()
    col_text = col.trace.dumps_jsonl()
    assert col_text == row_text, "columnar JSONL differs from row JSONL"
    assert col.trace.events == row.trace.events
    assert len(col.trace) == len(row.trace)
    assert col.makespan_cycles == row.makespan_cycles
    assert vars(col.stats) == vars(row.stats)
    assert col_counters == row_counters

    # Parsing the columnar serialization yields a row-backed trace that
    # serializes back to the same bytes.
    assert Trace.loads_jsonl(col_text).dumps_jsonl() == col_text


def _assert_derived_artifacts_equal(name: str, flavor: str, threads: int):
    row = _run(name, flavor, threads, columnar=False)
    col = _run(name, flavor, threads, columnar=True)

    row_graph = build_grain_graph(row.trace)
    col_graph = build_grain_graph(col.trace)

    row_metrics = MetricSet.compute(row_graph)
    col_metrics = MetricSet.compute(col_graph)
    assert col_metrics.per_grain == row_metrics.per_grain
    assert col_metrics.benefit == row_metrics.benefit
    assert col_metrics.load_balance == row_metrics.load_balance
    assert (
        col_metrics.critical_path.length_cycles
        == row_metrics.critical_path.length_cycles
    )

    row_lint = run_lint(trace=row.trace, graph=row_graph)
    col_lint = run_lint(trace=col.trace, graph=col_graph)
    assert [d.to_dict() for d in col_lint.diagnostics] == [
        d.to_dict() for d in row_lint.diagnostics
    ]
    assert col_lint.passes_run == row_lint.passes_run


class TestGoldenDigests:
    """Both storage paths reproduce the pre-columnar trace digests."""

    @pytest.mark.parametrize("name,flavor,threads", _cells(PINNED_SUBSET))
    def test_columnar_matches_golden(
        self, golden_digests, name, flavor, threads
    ):
        key = f"{name}|{flavor}|{threads}"
        assert _digest(_run(name, flavor, threads, True)) == golden_digests[key]

    @pytest.mark.parametrize("name,flavor,threads", _cells(PINNED_SUBSET))
    def test_row_path_matches_golden(
        self, golden_digests, name, flavor, threads
    ):
        key = f"{name}|{flavor}|{threads}"
        assert _digest(_run(name, flavor, threads, False)) == golden_digests[key]


class TestRowColumnarDifferential:
    @pytest.mark.parametrize("name,flavor,threads", _cells(PINNED_SUBSET))
    def test_traces_and_stats_identical(self, name, flavor, threads):
        _assert_equivalent(name, flavor, threads)

    @pytest.mark.parametrize(
        "name,flavor",
        [
            pytest.param(name, flavor, id=f"{name}-{flavor}")
            for name in PINNED_SUBSET
            for flavor in sorted(FLAVORS)
        ],
    )
    def test_metrics_and_lint_identical(self, name, flavor):
        _assert_derived_artifacts_equal(name, flavor, threads=8)


@pytest.mark.slow
class TestFullSweep:
    """All 26 programs; runs as a dedicated CI job (``-m slow``)."""

    @pytest.mark.parametrize("name,flavor,threads", _cells(ALL_PROGRAMS))
    def test_columnar_matches_golden(
        self, golden_digests, name, flavor, threads
    ):
        key = f"{name}|{flavor}|{threads}"
        assert _digest(_run(name, flavor, threads, True)) == golden_digests[key]

    @pytest.mark.parametrize("name,flavor,threads", _cells(ALL_PROGRAMS))
    def test_differential(self, name, flavor, threads):
        _assert_equivalent(name, flavor, threads)

    @pytest.mark.parametrize(
        "name",
        [pytest.param(name, id=name) for name in ALL_PROGRAMS],
    )
    def test_metrics_and_lint_identical(self, name):
        _assert_derived_artifacts_equal(name, "MIR", threads=8)


def test_every_registered_program_is_pinned(golden_digests):
    """Adding a program without extending the golden file must fail."""
    expected = {
        f"{name}|{flavor}|{threads}"
        for name in PROGRAMS
        for flavor in FLAVORS
        for threads in THREAD_COUNTS
    }
    assert set(golden_digests) == expected


def test_pinned_subset_is_registered():
    assert set(PINNED_SUBSET) <= set(PROGRAMS)
