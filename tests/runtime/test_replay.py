"""Forced-schedule replay: determinism, placement, and failure modes.

The replay scheduler executes a witness schedule instead of a policy.
The contract: same witness -> byte-identical JSONL trace; each witness
task runs on exactly the pinned worker; schedules whose order can never
be satisfied surface as ``DeadlockError`` rather than hanging.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LOC, small_machine

from repro.apps.registry import resolve_small
from repro.core.builder import build_grain_graph
from repro.lint.races import scan_conflicts
from repro.machine.cost import WorkRequest
from repro.runtime.actions import Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.runtime.engine import DeadlockError
from repro.runtime.sched.replay import ReplayScheduler
from repro.staticc import expand_program
from repro.staticc.witness import synthesize_race_witness


def _leaf(cycles=400):
    def body():
        yield Work(WorkRequest(cycles=cycles))

    return body


def _spawn_n(n, cycles=400):
    def main():
        for _ in range(n):
            yield Spawn(_leaf(cycles), loc=LOC)
        yield TaskWait()

    return Program(f"spawn{n}", main)


def _racy_steps():
    model = expand_program(resolve_small("racy"))
    (conflict,) = scan_conflicts(model.graph).conflicts
    g1, g2 = conflict.grain_pair
    return synthesize_race_witness(
        model, conflict.region, g1, g2
    ).engine_steps()


class TestSchedulerUnit:
    def test_rejects_out_of_range_worker(self):
        with pytest.raises(ValueError):
            ReplayScheduler([("t:0/0", 2)], num_workers=2)

    def test_rejects_duplicate_dispatch(self):
        with pytest.raises(ValueError):
            ReplayScheduler([("t:0/0", 0), ("t:0/0", 1)], num_workers=2)

    def test_empty_schedule_is_valid(self):
        sched = ReplayScheduler([], num_workers=2)
        assert sched.total_pending() == 0
        assert sched.pop(0) is None

    def test_kind_name(self):
        assert ReplayScheduler([], 1).kind_name == "replay"


class TestReplayDeterminism:
    def test_same_witness_twice_is_byte_identical(self):
        steps = _racy_steps()
        first = run_program(
            resolve_small("racy"), num_threads=2, replay_steps=steps
        )
        second = run_program(
            resolve_small("racy"), num_threads=2, replay_steps=steps
        )
        assert (
            first.trace.dumps_jsonl() == second.trace.dumps_jsonl()
        )

    @given(
        n=st.integers(min_value=2, max_value=5),
        seed=st.randoms(use_true_random=False),
        workers=st.lists(
            st.integers(min_value=0, max_value=1), min_size=5, max_size=5
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_leaf_permutation_replays_identically(
        self, n, seed, workers
    ):
        # Leaves of one taskwait level only depend on the root, so any
        # permutation with any worker pinning is a valid witness.
        order = [f"t:0/{i}" for i in range(n)]
        seed.shuffle(order)
        steps = tuple(
            (gid, workers[i]) for i, gid in enumerate(order)
        )
        runs = [
            run_program(_spawn_n(n), num_threads=2, replay_steps=steps)
            for _ in range(2)
        ]
        assert (
            runs[0].trace.dumps_jsonl() == runs[1].trace.dumps_jsonl()
        )
        graph = build_grain_graph(runs[0].trace)
        placed = {
            node.grain_id: node.core
            for node in graph.grain_nodes()
            if node.grain_id != "t:0" and node.core is not None
        }
        for gid, worker in steps:
            assert placed[gid] == worker


class TestForcedPlacement:
    def test_witness_workers_are_honored(self):
        result = run_program(
            resolve_small("racy"), num_threads=2,
            replay_steps=_racy_steps(),
        )
        graph = build_grain_graph(result.trace)
        cores = {
            n.grain_id: n.core
            for n in graph.grain_nodes()
            if n.grain_id in ("t:0/0", "t:0/1")
        }
        assert cores == {"t:0/0": 0, "t:0/1": 1}

    def test_reversed_witness_flips_placement(self):
        reversed_steps = tuple(
            (gid, 1 - worker) for gid, worker in _racy_steps()
        )
        result = run_program(
            resolve_small("racy"), num_threads=2,
            replay_steps=reversed_steps,
        )
        graph = build_grain_graph(result.trace)
        cores = {
            n.grain_id: n.core
            for n in graph.grain_nodes()
            if n.grain_id in ("t:0/0", "t:0/1")
        }
        assert cores == {"t:0/0": 1, "t:0/1": 0}

    def test_normal_scheduling_unaffected(self):
        # replay_steps=None must leave the policy path untouched.
        plain = run_program(resolve_small("racy"), num_threads=2)
        again = run_program(resolve_small("racy"), num_threads=2)
        assert plain.trace.dumps_jsonl() == again.trace.dumps_jsonl()


class TestUnsatisfiableSchedules:
    def test_child_before_its_spawner_deadlocks(self):
        def inner():
            yield Work(WorkRequest(cycles=100))

        def outer():
            yield Spawn(inner, loc=LOC)
            yield TaskWait()

        def main():
            yield Spawn(outer, loc=LOC)
            yield TaskWait()

        program = Program("nested", main)
        # t:0/0/0 cannot be dispatched before t:0/0 has even run.
        steps = (("t:0/0/0", 0), ("t:0/0", 0))
        with pytest.raises(DeadlockError):
            run_program(program, num_threads=2, replay_steps=steps)
