"""Engine tests: determinism and schedule-independent identity."""

from helpers import binary_tree, loop_program, small_machine, spawn_n_and_wait

from repro.runtime.api import run_program
from repro.runtime.flavors import GCC, ICC, MIR


def trace_dump(result):
    return [e.to_dict() for e in result.trace]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        program = binary_tree(depth=5, leaf_cycles=321)
        a = run_program(program, machine=small_machine(4), num_threads=4)
        b = run_program(program, machine=small_machine(4), num_threads=4)
        assert trace_dump(a) == trace_dump(b)
        assert a.makespan_cycles == b.makespan_cycles

    def test_loops_deterministic(self):
        program = loop_program(iterations=50, chunk=3, threads=4)
        a = run_program(program, machine=small_machine(4), num_threads=4)
        b = run_program(program, machine=small_machine(4), num_threads=4)
        assert trace_dump(a) == trace_dump(b)

    def test_all_flavors_deterministic(self):
        program = spawn_n_and_wait(20, cycles=500)
        for flavor in (MIR, ICC, GCC):
            a = run_program(
                program, flavor=flavor, machine=small_machine(3), num_threads=3
            )
            b = run_program(
                program, flavor=flavor, machine=small_machine(3), num_threads=3
            )
            assert trace_dump(a) == trace_dump(b), flavor.name


class TestScheduleIndependentIdentity:
    def test_task_paths_stable_across_thread_counts(self):
        """The property work deviation relies on: same program, different
        machine size -> identical task grain paths."""
        program = binary_tree(depth=5, leaf_cycles=100)
        paths = []
        for threads in (1, 2, 4):
            result = run_program(
                program, machine=small_machine(4), num_threads=threads
            )
            paths.append(
                sorted(
                    tuple(e.path)
                    for e in result.trace
                    if e.kind == "task_create"
                )
            )
        assert paths[0] == paths[1] == paths[2]

    def test_task_paths_stable_across_flavors(self):
        program = binary_tree(depth=4)
        reference = None
        for flavor in (MIR, ICC, GCC):
            result = run_program(
                program, flavor=flavor, machine=small_machine(4), num_threads=4
            )
            paths = sorted(
                tuple(e.path) for e in result.trace if e.kind == "task_create"
            )
            if reference is None:
                reference = paths
            assert paths == reference, flavor.name

    def test_paths_unique(self):
        program = binary_tree(depth=6)
        result = run_program(program, machine=small_machine(4), num_threads=4)
        paths = [tuple(e.path) for e in result.trace if e.kind == "task_create"]
        assert len(paths) == len(set(paths))

    def test_chunk_identity_stable_for_fixed_team(self):
        program = loop_program(iterations=40, chunk=5, threads=2)
        ids = []
        for _ in range(2):
            result = run_program(
                program, machine=small_machine(2), num_threads=2
            )
            ids.append(
                sorted(
                    (e.iter_start, e.iter_end)
                    for e in result.trace
                    if e.kind == "chunk"
                )
            )
        assert ids[0] == ids[1]
