"""Engine tests: parallel for-loop execution."""

import pytest

from helpers import LOC, loop_program, small_machine

from repro.machine.cost import WorkRequest
from repro.runtime.actions import ParallelFor, Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.runtime.engine import NestedParallelismError
from repro.runtime.loops import LoopSpec, Schedule


class TestLoopExecution:
    def test_all_chunks_executed(self):
        result = run_program(
            loop_program(iterations=20, chunk=4, threads=2),
            machine=small_machine(2),
            num_threads=2,
        )
        chunks = [e for e in result.trace if e.kind == "chunk"]
        assert len(chunks) == 5
        iters = sorted(
            i for c in chunks for i in range(c.iter_start, c.iter_end)
        )
        assert iters == list(range(20))

    def test_loop_speedup(self):
        program = loop_program(
            iterations=64, chunk=1, threads=None, cycles_of=lambda i: 20_000
        )
        t1 = run_program(
            program, machine=small_machine(4), num_threads=1
        ).makespan_cycles
        t4 = run_program(
            program, machine=small_machine(4), num_threads=4
        ).makespan_cycles
        assert t4 < t1 / 2.5

    def test_empty_loop_completes(self):
        result = run_program(
            loop_program(iterations=0, chunk=None, threads=2),
            machine=small_machine(2),
            num_threads=2,
        )
        assert result.stats.chunks_executed == 0
        assert result.trace.loop_ends  # loop still begins and ends

    def test_num_threads_caps_team(self):
        result = run_program(
            loop_program(iterations=12, chunk=1, threads=2),
            machine=small_machine(4),
            num_threads=4,
        )
        chunks = [e for e in result.trace if e.kind == "chunk"]
        assert {c.thread for c in chunks} <= {0, 1}

    def test_bookkeeping_precedes_every_chunk(self):
        result = run_program(
            loop_program(iterations=6, chunk=2, threads=2),
            machine=small_machine(2),
            num_threads=2,
        )
        per_thread = {}
        for event in result.trace:
            if event.kind in ("bookkeeping", "chunk"):
                per_thread.setdefault(event.thread, []).append(event.kind)
        for kinds in per_thread.values():
            # Alternating bookkeeping/chunk, ending with the final empty
            # bookkeeping that leads to the barrier.
            assert kinds[0] == "bookkeeping"
            assert kinds[-1] == "bookkeeping"
            for i in range(len(kinds) - 1):
                assert kinds[i] != kinds[i + 1]

    def test_final_bookkeeping_has_no_chunk(self):
        result = run_program(
            loop_program(iterations=4, chunk=2, threads=2),
            machine=small_machine(2),
            num_threads=2,
        )
        bookkeeping = [e for e in result.trace if e.kind == "bookkeeping"]
        empty = [b for b in bookkeeping if not b.got_chunk]
        assert len(empty) == 2  # one per team thread

    def test_multiple_loop_instances_get_sequence_numbers(self):
        def main():
            for _ in range(3):
                yield ParallelFor(
                    LoopSpec(
                        iterations=4,
                        body=lambda i: WorkRequest(cycles=100),
                        num_threads=2,
                    )
                )

        result = run_program(
            Program("loops", main), machine=small_machine(2), num_threads=2
        )
        begins = [e for e in result.trace if e.kind == "loop_begin"]
        assert [b.loop_seq for b in begins] == [0, 1, 2]
        assert len({b.loop_id for b in begins}) == 3

    def test_dynamic_schedule_executes_in_grab_order(self):
        result = run_program(
            loop_program(
                iterations=10, chunk=1, threads=2, schedule=Schedule.DYNAMIC
            ),
            machine=small_machine(2),
            num_threads=2,
        )
        chunks = sorted(
            (e for e in result.trace if e.kind == "chunk"),
            key=lambda c: c.chunk_seq,
        )
        starts = [c.iter_start for c in chunks]
        assert starts == sorted(starts)

    def test_loop_then_tasks_then_loop(self):
        """Loops and task phases can interleave at the root."""

        def child():
            yield Work(WorkRequest(cycles=500))

        def main():
            yield ParallelFor(
                LoopSpec(iterations=4, body=lambda i: WorkRequest(cycles=100))
            )
            yield Spawn(child, loc=LOC)
            yield TaskWait()
            yield ParallelFor(
                LoopSpec(iterations=4, body=lambda i: WorkRequest(cycles=100))
            )

        result = run_program(
            Program("mixed", main), machine=small_machine(2), num_threads=2
        )
        assert result.stats.loops_executed == 2
        assert result.stats.tasks_created == 2


class TestNestedParallelismRejected:
    def test_loop_inside_task_raises(self):
        def child():
            yield ParallelFor(
                LoopSpec(iterations=4, body=lambda i: WorkRequest(cycles=10))
            )

        def main():
            yield Spawn(child, loc=LOC)
            yield TaskWait()

        with pytest.raises(NestedParallelismError):
            run_program(
                Program("nested", main), machine=small_machine(2), num_threads=2
            )

    def test_loop_with_outstanding_tasks_raises(self):
        def child():
            yield Work(WorkRequest(cycles=1_000_000))

        def main():
            yield Spawn(child, loc=LOC)
            yield ParallelFor(
                LoopSpec(iterations=4, body=lambda i: WorkRequest(cycles=10))
            )

        with pytest.raises(NestedParallelismError):
            run_program(
                Program("inflight", main), machine=small_machine(2), num_threads=2
            )
