"""Shared fixtures for the engine test suite, notably the
columnar-vs-row differential harness (``test_columnar_diff.py``)."""

import json
import pathlib

import pytest

DATA_DIR = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="session")
def golden_digests() -> dict:
    """Trace digests pinned from the pre-columnar engine: sha256 of
    ``dumps_jsonl``, event count, makespan, and RunStats for every
    program x flavor x thread-count cell.  Regenerate (only after an
    *intentional* trace change) with::

        PYTHONPATH=src python tests/runtime/data/regen_golden_digests.py
    """
    return json.loads((DATA_DIR / "golden_digests.json").read_text())
