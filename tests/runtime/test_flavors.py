"""Tests for runtime flavors and internal-cutoff policies."""

import pytest

from repro.runtime.flavors import FLAVORS, GCC, ICC, MIR, flavor_by_name


class TestPresets:
    def test_three_flavors_registered(self):
        assert set(FLAVORS) == {"MIR", "ICC", "GCC"}

    def test_mir_is_cheapest_work_stealer(self):
        assert MIR.scheduler == "workstealing"
        assert MIR.task_create_cycles < ICC.task_create_cycles
        assert MIR.task_create_cycles < GCC.task_create_cycles
        assert MIR.inline_queue_threshold is None
        assert MIR.throttle_per_thread is None

    def test_gcc_uses_central_queue_with_throttle(self):
        assert GCC.scheduler == "central"
        assert GCC.throttle_per_thread == 64  # the paper's 64 x threads
        assert GCC.queue_lock_hold_cycles > 0

    def test_icc_has_tighter_internal_cutoff_than_gcc(self):
        assert ICC.scheduler == "workstealing"
        assert ICC.throttle_per_thread is not None
        assert ICC.throttle_per_thread < GCC.throttle_per_thread

    def test_lookup_by_name_case_insensitive(self):
        assert flavor_by_name("mir") is MIR
        assert flavor_by_name("GCC") is GCC

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            flavor_by_name("llvm")


class TestInlinePolicy:
    def test_mir_never_inlines(self):
        assert not MIR.should_inline(10_000, 1_000_000, 48)

    def test_icc_inlines_when_pool_saturates(self):
        threshold = ICC.throttle_per_thread * 48
        assert ICC.should_inline(0, threshold, 48)
        assert not ICC.should_inline(0, threshold - 1, 48)

    def test_gcc_throttle_scales_with_team(self):
        assert GCC.should_inline(0, 64 * 4, 4)
        assert not GCC.should_inline(0, 64 * 4, 48)

    def test_queue_threshold_policy(self):
        flavor = MIR.__class__(
            name="X", scheduler="workstealing", inline_queue_threshold=8
        )
        assert flavor.should_inline(8, 0, 48)
        assert not flavor.should_inline(7, 0, 48)


class TestWithScheduler:
    def test_scheduler_swap_renames(self):
        central_mir = MIR.with_scheduler("central")
        assert central_mir.scheduler == "central"
        assert central_mir.name == "MIR+central"
        assert central_mir.task_create_cycles == MIR.task_create_cycles

    def test_original_unchanged(self):
        MIR.with_scheduler("central")
        assert MIR.scheduler == "workstealing"
