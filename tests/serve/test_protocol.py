"""Wire-format unit tests: request parsing, responses, error envelopes."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    ProtocolError,
    Response,
    ServeError,
    error_response,
    json_response,
    read_request,
)


def parse(data: bytes):
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(inner())


class TestReadRequest:
    def test_minimal_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == {}
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_query_string_is_split_off_the_path(self):
        request = parse(b"GET /v1/jobs/j/report?follow=1&x=a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/jobs/j/report"
        assert request.query == {"follow": "1", "x": "a b"}

    def test_body_via_content_length(self):
        payload = json.dumps({"points": ["fib"]}).encode()
        request = parse(
            b"POST /v1/studies HTTP/1.1\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
            + payload
        )
        assert request.json() == {"points": ["fib"]}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_lowercase_and_keep_alive_default(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing: V\r\n\r\n")
        assert request.headers["x-thing"] == "V"
        assert request.keep_alive

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET /x HTTP/1.1\r\nTrunca",
        ],
    )
    def test_malformed_requests_raise(self, raw):
        with pytest.raises(ProtocolError):
            parse(raw)

    def test_oversized_body_is_rejected(self):
        with pytest.raises(ProtocolError):
            parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
            )

    def test_bad_json_body_is_a_structured_400(self):
        request = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop"
        )
        with pytest.raises(ServeError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_empty_body_parses_as_empty_object(self):
        request = parse(b"POST /x HTTP/1.1\r\n\r\n")
        assert request.json() == {}


class TestResponses:
    def test_json_response_round_trips(self):
        response = json_response({"a": 1}, status=202)
        assert response.status == 202
        assert json.loads(response.body) == {"a": 1}
        head = response.head(keep_alive=True).decode()
        assert head.startswith("HTTP/1.1 202 Accepted\r\n")
        assert f"Content-Length: {len(response.body)}" in head
        assert "Connection: keep-alive" in head

    def test_streaming_head_uses_chunked_encoding(self):
        async def gen():
            yield b"x"

        response = Response(stream=gen())
        head = response.head(keep_alive=False).decode()
        assert "Transfer-Encoding: chunked" in head
        assert "Content-Length" not in head
        assert "Connection: close" in head

    def test_error_envelope_carries_status_and_message(self):
        response = error_response(ServeError(404, "unknown program 'x'"))
        payload = json.loads(response.body)
        assert response.status == 404
        assert payload["error"]["status"] == 404
        assert "unknown program" in payload["error"]["message"]

    def test_retry_after_renders_as_header(self):
        response = error_response(
            ServeError(429, "queue full", retry_after=7)
        )
        assert response.headers["Retry-After"] == "7"
        assert "Retry-After: 7" in response.head(True).decode()
