"""Fixtures for the serve suite: a real server on a real socket.

The server runs its own event loop on a background thread bound to an
ephemeral port; tests drive it with blocking ``http.client`` requests
from the test thread, exactly like an external tenant.  ``serve_server``
accepts a custom :class:`ServeConfig` and/or :class:`AnalysisService`,
which is how the concurrency tests inject gated (blocking) services to
hold the worker pool busy deterministically.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.serve import App, ServeConfig, bound_port, start_server


class ServerHandle:
    """A running server plus a tiny blocking HTTP client for it."""

    def __init__(self, config=None, service=None):
        self.config = config or ServeConfig(port=0)
        self.config.port = 0  # tests always bind ephemerally
        self.service = service
        self.app = None
        self.port = None
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._stopped = False
        self._failure = None
        self._thread = threading.Thread(
            target=self._run, name="serve-test", daemon=True
        )
        self._thread.start()
        assert self._started.wait(30), "server failed to start"
        if self._failure is not None:
            raise self._failure

    def _run(self):
        try:
            asyncio.run(self._main())
        except Exception as exc:  # pragma: no cover - startup failure aid
            self._failure = exc
            self._started.set()

    async def _main(self):
        self.app = App(self.config, service=self.service)
        server = await start_server(self.app)
        self.port = bound_port(server)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self.app.stop()

    # ------------------------------------------------------------------
    def stop(self):
        if self._stopped:  # tests may stop early; teardown stops again
            return
        self._stopped = True
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)

    # ------------------------------------------------------------------
    def request(self, method, path, payload=None, timeout=60):
        """One blocking request; returns (status, headers, body text)."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return (
                response.status,
                dict(response.getheaders()),
                response.read().decode(),
            )
        finally:
            conn.close()

    def get(self, path, timeout=60):
        return self.request("GET", path, timeout=timeout)

    def post(self, path, payload, timeout=60):
        return self.request("POST", path, payload=payload, timeout=timeout)

    def get_json(self, path):
        status, _headers, body = self.get(path)
        return status, json.loads(body)

    def post_json(self, path, payload):
        status, _headers, body = self.post(path, payload)
        return status, json.loads(body)

    def wait_job(self, job_id, timeout=60):
        """Poll until the job is done; returns its final status dict."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.get_json(f"/v1/jobs/{job_id}")
            assert status == 200, payload
            if payload["job"]["state"] == "done":
                return payload["job"]
            assert time.monotonic() < deadline, f"job stuck: {payload}"
            time.sleep(0.02)


@pytest.fixture
def serve_server():
    """Factory fixture: start any number of servers, all torn down."""
    handles = []

    def start(config=None, service=None):
        handle = ServerHandle(config=config, service=service)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()
