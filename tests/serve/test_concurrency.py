"""The serve layer under contention: coalescing, load shedding, metrics.

These are the PR's acceptance tests: N concurrent tenants asking for
the same point must cost exactly one engine invocation, a full queue
must shed with 429 + Retry-After instead of queueing unboundedly, and
the ``/metrics`` endpoint must emit well-formed Prometheus text.
"""

import re
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.runtime.engine import engine_invocations
from repro.serve import AnalysisService, ServeConfig

SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*\{[a-z]+=\"[^\"]*\"\} (\S+)$"
)


class GatedService(AnalysisService):
    """An AnalysisService whose simulations block on an event.

    Lets a test pin the single worker thread inside ``run_point`` so
    the job queue's occupancy is under deterministic control.
    """

    def __init__(self):
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def run_point(self, point):
        self.entered.set()
        assert self.release.wait(60), "test never released the gate"
        return super().run_point(point)


class TestCoalescedExecution:
    def test_eight_concurrent_tenants_one_engine_invocation(
        self, serve_server
    ):
        server = serve_server(config=ServeConfig(port=0, jobs=4))
        before = engine_invocations()

        def tenant(_i):
            status, payload = server.post_json(
                "/v1/studies", {"points": ["fig3a:MIR:2"]}
            )
            assert status == 202
            return server.wait_job(payload["job"]["id"])

        with ThreadPoolExecutor(max_workers=8) as pool:
            finals = list(pool.map(tenant, range(8)))

        assert all(f["completed"] == 1 and f["failed"] == 0 for f in finals)
        # The whole point of coalescing + the memo tier: eight tenants,
        # one simulation, in every interleaving.
        assert engine_invocations() - before == 1

    def test_concurrent_lint_requests_share_the_simulation(
        self, serve_server
    ):
        server = serve_server(config=ServeConfig(port=0, jobs=4))
        before = engine_invocations()

        def tenant(_i):
            status, payload = server.post_json(
                "/v1/lint", {"program": "fig3b", "threads": 2}
            )
            assert status == 200
            return payload["digest"]

        with ThreadPoolExecutor(max_workers=6) as pool:
            digests = set(pool.map(tenant, range(6)))

        assert len(digests) == 1
        assert engine_invocations() - before == 1


class TestLoadShedding:
    def test_full_queue_sheds_with_429_and_recovers(self, serve_server):
        service = GatedService()
        server = serve_server(
            config=ServeConfig(port=0, jobs=1, queue_capacity=2),
            service=service,
        )
        # First point occupies the lone worker (held at the gate);
        # second fills the remaining queue slot.
        _status, first = server.post_json(
            "/v1/studies", {"points": ["fig3a:MIR:2"]}
        )
        assert service.entered.wait(30)
        _status, second = server.post_json(
            "/v1/studies", {"points": ["fig3b:MIR:2"]}
        )

        status, headers, body = server.post(
            "/v1/studies", {"points": ["fib:MIR:2"]}
        )
        assert status == 429
        assert headers.get("Retry-After") == "1"
        assert "queue" in body

        # Admission is all-or-nothing: a multi-point study that doesn't
        # fit is rejected whole, not truncated.
        assert server.post_json(
            "/v1/studies", {"points": ["fib:MIR:2", "fib:MIR:4"]}
        )[0] == 429

        service.release.set()
        for payload in (first, second):
            final = server.wait_job(payload["job"]["id"])
            assert final["failed"] == 0
        # Queue drained: the previously shed submission is now welcome.
        status, payload = server.post_json(
            "/v1/studies", {"points": ["fib:MIR:2"]}
        )
        assert status == 202
        assert server.wait_job(payload["job"]["id"])["failed"] == 0


class TestMetricsEndpoint:
    def test_metrics_parse_as_prometheus_text(self, serve_server):
        server = serve_server()
        _status, payload = server.post_json(
            "/v1/studies", {"points": ["fig3a:MIR:2"]}
        )
        server.wait_job(payload["job"]["id"])

        status, headers, body = server.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]

        names = set()
        for line in body.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            match = SAMPLE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            float(match.group(1))  # every sample value is numeric
            names.add(line.split("{", 1)[0])

        assert "grain_counter_total" in names
        assert "grain_stage_seconds_total" in names
        assert 'name="serve.requests"' in body
        assert 'name="serve.points_completed"' in body
