"""Endpoint behavior over a real socket: happy paths and structured errors."""

import json

from repro.serve import ServeConfig

MICRO = {"points": ["fig3a:MIR:2", "fig3b:MIR:2"]}


class TestProbesAndListing:
    def test_healthz(self, serve_server):
        server = serve_server()
        status, payload = server.get_json("/healthz")
        assert (status, payload) == (200, {"status": "ok"})

    def test_programs_lists_the_registry(self, serve_server):
        from repro.apps.registry import PROGRAMS

        server = serve_server()
        status, payload = server.get_json("/v1/programs")
        assert status == 200
        assert payload["programs"] == sorted(PROGRAMS)

    def test_unknown_route_is_a_structured_404(self, serve_server):
        server = serve_server()
        status, payload = server.get_json("/nope")
        assert status == 404
        assert "no route" in payload["error"]["message"]


class TestStudies:
    def test_submit_poll_report_flow(self, serve_server):
        server = serve_server()
        status, payload = server.post_json("/v1/studies", MICRO)
        assert status == 202
        job = payload["job"]
        assert job["points"] == 2

        final = server.wait_job(job["id"])
        assert final["completed"] == 2
        assert final["failed"] == 0

        status, _headers, body = server.get(f"/v1/jobs/{job['id']}/report")
        assert status == 200
        lines = [json.loads(line) for line in body.splitlines()]
        assert [r["program"] for r in lines] == ["fig3a", "fig3b"]
        assert all(r["makespan_cycles"] > 0 for r in lines)
        assert all(r["digest"] for r in lines)

    def test_report_streams_with_follow(self, serve_server):
        server = serve_server()
        _status, payload = server.post_json("/v1/studies", MICRO)
        job_id = payload["job"]["id"]
        status, headers, body = server.get(
            f"/v1/jobs/{job_id}/report?follow=1"
        )
        assert status == 200
        assert headers.get("Transfer-Encoding") == "chunked"
        lines = [json.loads(line) for line in body.splitlines()]
        assert [r["program"] for r in lines] == ["fig3a", "fig3b"]

    def test_point_objects_are_accepted(self, serve_server):
        server = serve_server()
        status, payload = server.post_json(
            "/v1/studies",
            {"points": [{"program": "fig3a", "flavor": "mir", "threads": 2}]},
        )
        assert status == 202
        final = server.wait_job(payload["job"]["id"])
        assert final["failed"] == 0

    def test_duplicate_points_share_one_simulation(self, serve_server):
        from repro.runtime.engine import engine_invocations

        server = serve_server()
        before = engine_invocations()
        _status, payload = server.post_json(
            "/v1/studies", {"points": ["racy-fixed:MIR:2"] * 4}
        )
        final = server.wait_job(payload["job"]["id"])
        assert final["completed"] == 4
        # Coalesced or memoized, never re-run.  (Joiners share the
        # leader's PointRun, so several report lines may say "engine" —
        # the invocation counter is the ground truth.)
        assert engine_invocations() - before == 1
        _status, _headers, body = server.get(
            f"/v1/jobs/{payload['job']['id']}/report"
        )
        records = [json.loads(line) for line in body.splitlines()]
        assert len({r["digest"] for r in records}) == 1

    def test_unknown_program_in_matrix_fails_only_that_point(
        self, serve_server
    ):
        server = serve_server()
        _status, payload = server.post_json(
            "/v1/studies", {"points": ["fig3a:MIR:2", "nosuch:MIR:2"]}
        )
        final = server.wait_job(payload["job"]["id"])
        assert final["completed"] == 2
        assert final["failed"] == 1
        _status, _headers, body = server.get(
            f"/v1/jobs/{payload['job']['id']}/report"
        )
        records = [json.loads(line) for line in body.splitlines()]
        assert "error" not in records[0]
        assert "unknown program" in records[1]["error"]

    def test_bad_spec_is_rejected_at_submit(self, serve_server):
        server = serve_server()
        status, payload = server.post_json(
            "/v1/studies", {"points": ["fig3a:MIR:notanint"]}
        )
        assert status == 400
        assert "THREADS must be an integer" in payload["error"]["message"]

    def test_empty_and_malformed_submissions(self, serve_server):
        server = serve_server()
        assert server.post_json("/v1/studies", {"points": []})[0] == 400
        assert server.post_json("/v1/studies", {"nope": 1})[0] == 400
        assert server.post_json("/v1/studies", {"points": "fib"})[0] == 400

    def test_unknown_job_is_404(self, serve_server):
        server = serve_server()
        status, payload = server.get_json("/v1/jobs/job-999999")
        assert status == 404
        assert "unknown job" in payload["error"]["message"]


class TestAnalysisEndpoints:
    def test_lint_returns_a_report(self, serve_server):
        server = serve_server()
        status, payload = server.post_json(
            "/v1/lint", {"program": "fig3a", "threads": 2}
        )
        assert status == 200
        assert payload["program"] == "fig3a"
        assert "diagnostics" in payload["report"]

    def test_check_is_static_only(self, serve_server):
        from repro.runtime.engine import engine_invocations

        server = serve_server()
        before = engine_invocations()
        status, payload = server.post_json("/v1/check", {"program": "racy"})
        assert status == 200
        assert engine_invocations() == before  # no simulation
        rules = {d["rule_id"] for d in payload["report"]["diagnostics"]}
        assert "static.race" in rules

    def test_advise_with_what_if(self, serve_server):
        server = serve_server()
        status, payload = server.post_json(
            "/v1/advise",
            {"program": "fib", "threads": 4, "what_ifs": ["*=2"]},
        )
        assert status == 200
        assert payload["program"] == "fib"
        assert payload["what_ifs"]

    def test_unknown_program_is_a_friendly_404(self, serve_server):
        server = serve_server()
        for path in ("/v1/lint", "/v1/check", "/v1/advise"):
            status, payload = server.post_json(path, {"program": "nope"})
            assert status == 404
            assert "unknown program" in payload["error"]["message"]

    def test_unknown_flavor_is_a_friendly_400(self, serve_server):
        server = serve_server()
        status, payload = server.post_json(
            "/v1/lint", {"program": "fig3a", "flavor": "LLVM"}
        )
        assert status == 400
        assert "unknown flavor" in payload["error"]["message"]

    def test_bad_what_if_target_is_a_400(self, serve_server):
        server = serve_server()
        status, payload = server.post_json(
            "/v1/advise", {"program": "fib", "what_ifs": ["oops"]}
        )
        assert status == 400


class TestCacheTier:
    def test_disk_cache_is_shared_across_server_instances(
        self, serve_server, tmp_path
    ):
        from repro.runtime.engine import engine_invocations

        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        first = serve_server(config=config)
        _status, payload = first.post_json(
            "/v1/studies", {"points": ["fig3a:MIR:2"]}
        )
        first.wait_job(payload["job"]["id"])
        first.stop()

        second = serve_server(
            config=ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        )
        before = engine_invocations()
        _status, payload = second.post_json(
            "/v1/studies", {"points": ["fig3a:MIR:2"]}
        )
        second.wait_job(payload["job"]["id"])
        assert engine_invocations() == before  # served from disk artifacts
        _status, _headers, body = second.get(
            f"/v1/jobs/{payload['job']['id']}/report"
        )
        record = json.loads(body.splitlines()[0])
        assert record["source"] == "cache"
        assert record["stats"]["events_emitted"] > 0  # sidecar survived
