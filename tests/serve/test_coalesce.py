"""Single-flight semantics of the request coalescer."""

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestCoalescer:
    def test_concurrent_same_key_runs_once(self):
        async def scenario():
            coalescer = Coalescer()
            calls = 0
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                nonlocal calls
                calls += 1
                started.set()
                await release.wait()
                return 42

            tasks = [
                asyncio.create_task(coalescer.run("k", work))
                for _ in range(8)
            ]
            await started.wait()
            # All eight are in flight on one key before the release.
            assert coalescer.inflight() == 1
            release.set()
            results = await asyncio.gather(*tasks)
            return coalescer, calls, results

        coalescer, calls, results = run(scenario())
        assert calls == 1
        assert results == [42] * 8
        assert coalescer.coalesced == 7
        assert coalescer.led == 1
        assert coalescer.inflight() == 0

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []

            async def work(key):
                calls.append(key)
                return key

            results = await asyncio.gather(
                coalescer.run("a", lambda: work("a")),
                coalescer.run("b", lambda: work("b")),
            )
            return coalescer, calls, results

        coalescer, calls, results = run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert results == ["a", "b"]
        assert coalescer.coalesced == 0

    def test_sequential_repeats_rerun(self):
        """Coalescing is strictly in-flight; completed work is the
        cache/memo tier's job, not the coalescer's."""

        async def scenario():
            coalescer = Coalescer()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                return calls

            first = await coalescer.run("k", work)
            second = await coalescer.run("k", work)
            return first, second

        assert run(scenario()) == (1, 2)

    def test_leader_failure_propagates_to_every_joiner(self):
        async def scenario():
            coalescer = Coalescer()
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                started.set()
                await release.wait()
                raise ValueError("engine exploded")

            tasks = [
                asyncio.create_task(coalescer.run("k", work))
                for _ in range(4)
            ]
            await started.wait()
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return coalescer, results

        coalescer, results = run(scenario())
        assert all(isinstance(r, ValueError) for r in results)
        assert coalescer.inflight() == 0  # failed key is not sticky

    def test_failure_without_joiners_does_not_leak(self):
        async def scenario():
            coalescer = Coalescer()

            async def work():
                raise ValueError("lonely failure")

            with pytest.raises(ValueError):
                await coalescer.run("k", work)
            return coalescer

        coalescer = run(scenario())
        assert coalescer.inflight() == 0

    def test_cancelled_joiner_does_not_kill_the_flight(self):
        async def scenario():
            coalescer = Coalescer()
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                started.set()
                await release.wait()
                return "ok"

            leader = asyncio.create_task(coalescer.run("k", work))
            await started.wait()
            joiner = asyncio.create_task(coalescer.run("k", work))
            await asyncio.sleep(0)  # let the joiner attach
            joiner.cancel()
            with pytest.raises(asyncio.CancelledError):
                await joiner
            release.set()
            return await leader

        assert run(scenario()) == "ok"
