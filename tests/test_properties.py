"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.apps.common import DeterministicRandom
from repro.binpack import first_fit_decreasing, minimum_cores, pack_feasible
from repro.machine.caches import CacheConfig, CacheModel, LINE_SIZE
from repro.machine.contention import ContentionModel
from repro.machine.counters import CounterSet
from repro.machine.cost import WorkRequest
from repro.machine.topology import MachineTopology
from repro.machine.memory import MemoryMap, RoundRobin
from repro.runtime.loops import ChunkDispatcher, LoopSpec, Schedule


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
topologies = st.builds(
    MachineTopology,
    sockets=st.integers(1, 6),
    cores_per_socket=st.sampled_from([2, 4, 6, 12]),
    nodes_per_socket=st.sampled_from([1, 2]),
)


@given(topologies, st.data())
def test_distance_table_is_symmetric_metriclike(topo, data):
    a = data.draw(st.integers(0, topo.num_nodes - 1))
    b = data.draw(st.integers(0, topo.num_nodes - 1))
    assert topo.node_distance(a, b) == topo.node_distance(b, a)
    assert topo.node_distance(a, a) == 10
    assert topo.node_distance(a, b) >= 10


@given(topologies)
def test_nodes_partition_cores(topo):
    cores = [c for node in range(topo.num_nodes) for c in topo.cores_of_node(node)]
    assert sorted(cores) == list(range(topo.num_cores))


# ---------------------------------------------------------------------------
# Chunk dispatchers: exact iteration-space coverage, no overlap
# ---------------------------------------------------------------------------
@given(
    n=st.integers(0, 500),
    chunk=st.one_of(st.none(), st.integers(1, 64)),
    team=st.integers(1, 16),
    schedule=st.sampled_from(list(Schedule)),
)
@settings(max_examples=200)
def test_dispatchers_cover_iteration_space_exactly(n, chunk, team, schedule):
    spec = LoopSpec(
        iterations=n,
        body=lambda i: WorkRequest(cycles=1),
        schedule=schedule,
        chunk_size=chunk,
    )
    dispatcher = ChunkDispatcher.create(spec, team)
    seen = []
    live = set(range(team))
    while live:
        for thread in sorted(live):
            got = dispatcher.next_chunk(thread)
            if got is None:
                live.discard(thread)
            else:
                start, end = got
                assert 0 <= start < end <= n
                seen.extend(range(start, end))
    assert sorted(seen) == list(range(n))
    assert len(seen) == len(set(seen))  # no iteration dispatched twice


# ---------------------------------------------------------------------------
# Bin packing
# ---------------------------------------------------------------------------
@given(
    items=st.lists(st.integers(1, 50), min_size=0, max_size=40),
    capacity=st.integers(50, 120),
)
@settings(max_examples=150)
def test_minimum_cores_is_valid_and_bounded(items, capacity):
    result = minimum_cores(items, makespan=capacity)
    # Validity: every bin within capacity, every item placed once.
    assert all(load <= capacity for load in result.loads)
    assert len(result.assignment) == len(items)
    loads = [0] * max(1, result.num_bins)
    for index, b in enumerate(result.assignment):
        loads[b] += items[index]
    assert sorted(l for l in loads if l) == sorted(l for l in result.loads if l)
    # Bounds: area lower bound <= answer <= FFD.
    if items:
        area = -(-sum(items) // capacity)
        ffd = first_fit_decreasing(items, capacity)
        assert area <= result.num_bins <= ffd.num_bins


@given(
    items=st.lists(st.integers(1, 30), min_size=1, max_size=15),
    capacity=st.integers(30, 60),
)
@settings(max_examples=100)
def test_pack_feasible_agrees_with_area_bound(items, capacity):
    bins = max(1, -(-sum(items) // capacity) - 1)  # below the area bound
    if sum(items) > bins * capacity:
        assert pack_feasible(items, capacity, bins) is None


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------
counter_sets = st.builds(
    CounterSet,
    cycles=st.integers(0, 10**9),
    compute_cycles=st.integers(0, 10**9),
    stall_cycles=st.integers(0, 10**9),
    l1_misses=st.integers(0, 10**6),
    llc_misses=st.integers(0, 10**6),
    remote_lines=st.integers(0, 10**6),
    accesses=st.integers(0, 10**6),
)


@given(counter_sets, counter_sets)
def test_counter_addition_commutes_and_roundtrips(a, b):
    assert a + b == b + a
    assert CounterSet.from_dict((a + b).to_dict()) == a + b


@given(counter_sets)
def test_mhu_nonnegative(c):
    assert c.memory_hierarchy_utilization >= 0.0
    assert 0.0 <= c.miss_ratio <= 1.0 or c.accesses < c.l1_misses


# ---------------------------------------------------------------------------
# Contention
# ---------------------------------------------------------------------------
@given(
    weights=st.lists(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=4, max_size=4),
        min_size=0,
        max_size=30,
    )
)
def test_contention_register_withdraw_returns_to_idle(weights):
    model = ContentionModel(num_nodes=4, alpha=0.1)
    for w in weights:
        model.register(w)
    for w in weights:
        model.withdraw(w)
    for node in range(4):
        assert model.multiplier(node) == 1.0


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(0, 1),  # core
            st.integers(0, 3),  # region
            st.integers(1, 4096),  # bytes
        ),
        min_size=1,
        max_size=50,
    )
)
def test_cache_accounting_conserves_lines(accesses):
    model = CacheModel(
        MachineTopology(sockets=1, cores_per_socket=2, nodes_per_socket=1),
        CacheConfig(private_bytes=1024, llc_bytes=4096),
    )
    for core, region, nbytes in accesses:
        result = model.access(core, region, nbytes)
        lines = -(-nbytes // LINE_SIZE)
        assert result.total_lines <= lines + 2  # rounding slack
        assert result.private_hit_lines >= 0
        assert result.memory_lines >= 0


# ---------------------------------------------------------------------------
# Memory placement
# ---------------------------------------------------------------------------
@given(size=st.integers(1, 10**8), nodes=st.integers(1, 8))
def test_round_robin_fractions_sum_to_one(size, nodes):
    mm = MemoryMap(num_nodes=nodes)
    region = mm.allocate("r", size, RoundRobin())
    fractions = mm.node_fractions(region.region_id)
    assert math.isclose(sum(fractions), 1.0)
    assert all(f >= 0 for f in fractions)


# ---------------------------------------------------------------------------
# Deterministic RNG
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 2**32 - 1))
def test_lcg_is_reproducible_and_in_range(seed):
    a, b = DeterministicRandom(seed), DeterministicRandom(seed)
    values = [a.uniform() for _ in range(20)]
    assert values == [b.uniform() for _ in range(20)]
    assert all(0.0 <= v < 1.0 for v in values)


@given(seed=st.integers(0, 2**16), lo=st.integers(-5, 5), span=st.integers(0, 10))
def test_lcg_randint_bounds(seed, lo, span):
    rng = DeterministicRandom(seed)
    for _ in range(10):
        v = rng.randint(lo, lo + span)
        assert lo <= v <= lo + span


# ---------------------------------------------------------------------------
# End-to-end graph invariants over random task programs
# ---------------------------------------------------------------------------
@st.composite
def program_shapes(draw):
    """A random small fork-join shape: list of (children, waits?) levels."""
    return draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.booleans()),
            min_size=1,
            max_size=4,
        )
    )


@given(shape=program_shapes(), threads=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_random_programs_build_valid_graphs(shape, threads):
    from repro.common import SourceLocation
    from repro.core.builder import build_grain_graph
    from repro.core.validate import validate_graph
    from repro.machine import CacheConfig, CostParams, Machine, MachineConfig
    from repro.machine.topology import small_smp
    from repro.runtime.actions import Spawn, TaskWait, Work
    from repro.runtime.api import Program, run_program

    LOC = SourceLocation("rand.c", 1, "f")

    def make_task(levels):
        def body():
            yield Work(WorkRequest(cycles=100))
            if levels:
                children, wait = levels[0]
                for _ in range(children):
                    yield Spawn(make_task(levels[1:]), loc=LOC)
                if wait and children:
                    yield TaskWait()
            yield Work(WorkRequest(cycles=50))

        return body

    def main():
        yield Spawn(make_task(shape), loc=LOC)
        yield TaskWait()

    machine = Machine(
        MachineConfig(topology=small_smp(4), cache=CacheConfig(), cost=CostParams())
    )
    result = run_program(Program("rand", main), machine=machine, num_threads=threads)
    graph = build_grain_graph(result.trace)
    validate_graph(graph)
    # Every grain's intervals are within the run and non-overlapping.
    for grain in graph.grains.values():
        spans = sorted(grain.intervals)
        for (s1, e1, _), (s2, _, _) in zip(spans, spans[1:]):
            assert s2 >= e1
    # Reduction conserves total grain-node weight.
    from repro.core.reductions import reduce_graph
    from repro.core.nodes import NodeKind

    reduced, _ = reduce_graph(graph)
    validate_graph(reduced)
    total = sum(n.duration for n in graph.grain_nodes())
    total_reduced = sum(
        n.duration
        for n in reduced.nodes.values()
        if n.kind in (NodeKind.FRAGMENT, NodeKind.CHUNK)
    )
    assert total == total_reduced
