"""Every obs test starts from — and leaves behind — a clean default
registry, since instrumented call sites record into process-global
state."""

import pytest

from repro.obs import registry as obs_registry


@pytest.fixture(autouse=True)
def clean_registry():
    obs_registry.reset()
    previous = obs_registry.set_enabled(True)
    yield
    obs_registry.set_enabled(previous)
    obs_registry.reset()
