"""Registry mechanics: spans fold, counters add, disabled is a no-op,
absorb makes pool aggregation exact."""

import math
import threading

import pytest

from repro.obs.registry import ObsRegistry, SpanStats


class TestSpanStats:
    def test_add_folds_count_total_min_max(self):
        stats = SpanStats("s")
        stats.add(0.2)
        stats.add(0.1)
        stats.add(0.3)
        assert stats.count == 3
        assert stats.total_seconds == 0.2 + 0.1 + 0.3
        assert stats.min_seconds == 0.1
        assert stats.max_seconds == 0.3
        assert stats.mean_seconds == stats.total_seconds / 3

    def test_empty_mean_is_zero(self):
        assert SpanStats("s").mean_seconds == 0.0

    def test_fold_merges_two_stages(self):
        a = SpanStats("s", count=2, total_seconds=1.0,
                      min_seconds=0.4, max_seconds=0.6)
        b = SpanStats("s", count=3, total_seconds=0.3,
                      min_seconds=0.05, max_seconds=0.15)
        a.fold(b)
        assert a.count == 5
        assert a.total_seconds == 1.3
        assert a.min_seconds == 0.05
        assert a.max_seconds == 0.6


class TestObsRegistry:
    def test_span_times_the_block(self):
        reg = ObsRegistry()
        with reg.span("stage"):
            pass
        snap = reg.snapshot()
        assert snap.spans["stage"].count == 1
        assert snap.spans["stage"].total_seconds >= 0.0
        assert snap.spans["stage"].min_seconds <= snap.spans["stage"].max_seconds

    def test_span_records_even_when_block_raises(self):
        reg = ObsRegistry()
        try:
            with reg.span("stage"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert reg.snapshot().spans["stage"].count == 1

    def test_observe_and_count(self):
        reg = ObsRegistry()
        reg.observe("stage", 0.25)
        reg.observe("stage", 0.75)
        reg.count("n")
        reg.count("n", 4)
        snap = reg.snapshot()
        assert snap.spans["stage"].total_seconds == 1.0
        assert snap.counters["n"] == 5

    def test_disabled_registry_records_nothing(self):
        reg = ObsRegistry(enabled=False)
        with reg.span("stage"):
            pass
        reg.observe("stage", 1.0)
        reg.count("n")
        snap = reg.snapshot()
        assert not snap.spans
        assert not snap.counters

    def test_snapshot_is_detached_from_later_mutation(self):
        reg = ObsRegistry()
        reg.observe("stage", 1.0)
        snap = reg.snapshot()
        reg.observe("stage", 1.0)
        reg.count("n")
        assert snap.spans["stage"].count == 1
        assert "n" not in snap.counters

    def test_reset_clears_but_keeps_enabled_flag(self):
        reg = ObsRegistry(enabled=False)
        reg.absorb(ObsRegistry().snapshot())
        reg.reset()
        assert not reg.enabled
        reg.enabled = True
        reg.count("n")
        assert reg.snapshot().counters == {"n": 1}

    def test_absorb_merges_worker_snapshot(self):
        worker = ObsRegistry()
        worker.observe("stage", 0.1)
        worker.observe("stage", 0.5)
        worker.count("n", 7)

        parent = ObsRegistry()
        parent.observe("stage", 0.3)
        parent.count("n", 1)
        parent.absorb(worker.snapshot())

        snap = parent.snapshot()
        assert snap.spans["stage"].count == 3
        assert math.isclose(snap.spans["stage"].total_seconds, 0.9)
        assert snap.spans["stage"].min_seconds == 0.1
        assert snap.spans["stage"].max_seconds == 0.5
        assert snap.counters["n"] == 8

    def test_snapshot_derives_events_per_sec(self):
        reg = ObsRegistry()
        reg.observe("engine.run", 0.5)
        reg.count("engine.events_emitted", 1000)
        snap = reg.snapshot()
        assert snap.derived["engine.events_per_sec"] == pytest.approx(2000.0)

    def test_no_gauge_without_events_or_span(self):
        reg = ObsRegistry()
        reg.count("engine.events_emitted", 1000)  # no engine.run span
        assert "engine.events_per_sec" not in reg.snapshot().derived
        reg.reset()
        reg.observe("engine.run", 0.5)  # no events counter
        assert "engine.events_per_sec" not in reg.snapshot().derived

    def test_absorb_recomputes_derived_without_double_count(self):
        # Derived gauges are a pure function of spans+counters; absorbing
        # a worker snapshot must not add its gauge values — the parent
        # recomputes from merged raw totals.
        worker = ObsRegistry()
        worker.observe("engine.run", 1.0)
        worker.count("engine.events_emitted", 100)
        worker_snap = worker.snapshot()
        assert worker_snap.derived["engine.events_per_sec"] == pytest.approx(100.0)

        parent = ObsRegistry()
        parent.observe("engine.run", 1.0)
        parent.count("engine.events_emitted", 300)
        parent.absorb(worker_snap)
        snap = parent.snapshot()
        # merged: 400 events over 2.0s — not 300/1 + 100/1.
        assert snap.derived["engine.events_per_sec"] == pytest.approx(200.0)

    def test_absorb_works_even_when_disabled(self):
        # Aggregating a worker's measurements is bookkeeping, not a new
        # measurement — it must survive a disabled parent.
        worker = ObsRegistry()
        worker.count("n", 3)
        parent = ObsRegistry(enabled=False)
        parent.absorb(worker.snapshot())
        assert parent.snapshot().counters["n"] == 3

    def test_absorb_empty_span_does_not_poison_min(self):
        worker = ObsRegistry()
        snap = worker.snapshot()  # no spans at all
        parent = ObsRegistry()
        parent.observe("stage", 0.2)
        parent.absorb(snap)
        assert parent.snapshot().spans["stage"].min_seconds == 0.2

    def test_concurrent_counts_are_not_lost(self):
        reg = ObsRegistry()

        def hammer():
            for _ in range(1000):
                reg.count("n")
                reg.observe("stage", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap.counters["n"] == 4000
        assert snap.spans["stage"].count == 4000

    def test_snapshots_under_concurrent_writes_are_consistent(self):
        # The serve layer scrapes /metrics while worker threads count
        # and observe: every snapshot must be internally consistent
        # (span count == counter written in lockstep) and the final
        # totals exact.
        reg = ObsRegistry()
        stop = threading.Event()
        snapshots = []

        def hammer():
            for _ in range(500):
                reg.count("serve.requests")
                reg.observe("exec.simulate", 0.001)

        def scrape():
            while not stop.is_set():
                snapshots.append(reg.snapshot())

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        scraper = threading.Thread(target=scrape)
        scraper.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        scraper.join()

        final = reg.snapshot()
        assert final.counters["serve.requests"] == 2000
        assert final.spans["exec.simulate"].count == 2000
        for snap in snapshots:
            count = snap.counters.get("serve.requests", 0)
            assert 0 <= count <= 2000
            if "exec.simulate" in snap.spans:
                span = snap.spans["exec.simulate"]
                assert span.total_seconds >= span.max_seconds >= span.min_seconds


class TestDefaultRegistry:
    def test_module_level_helpers_hit_the_default_registry(self):
        from repro.obs import registry as obs

        with obs.span("stage"):
            pass
        obs.count("n", 2)
        snap = obs.snapshot()
        assert snap.spans["stage"].count == 1
        assert snap.counters["n"] == 2
        obs.reset()
        assert not obs.snapshot().spans

    def test_set_enabled_returns_previous(self):
        from repro.obs import registry as obs

        previous = obs.set_enabled(False)
        try:
            assert obs.set_enabled(True) is False
        finally:
            obs.set_enabled(previous)

    def test_env_gate(self, monkeypatch):
        from repro.obs.registry import _initially_enabled

        for off in ("0", "off", "false"):
            monkeypatch.setenv("GRAIN_OBS", off)
            assert _initially_enabled() is False
        monkeypatch.setenv("GRAIN_OBS", "1")
        assert _initially_enabled() is True
        monkeypatch.delenv("GRAIN_OBS")
        assert _initially_enabled() is True
