"""Instrumentation cost: an enabled registry must stay within 5% of
the disabled pipeline's wall-clock.

Spans wrap whole pipeline stages (an engine run, a metric family), so
per-entry cost — two ``perf_counter`` calls and a dict update — is
amortized over milliseconds of real work.  The two modes are measured
*interleaved* (disabled, enabled, disabled, enabled, ...) and compared
best-of-rounds, so machine-load noise lands on both sides equally; the
test exits early the moment the 5% bound is met.
"""

import time

from repro.apps.registry import resolve_small
from repro.obs import registry as obs
from repro.workflow import profile_program

ROUNDS = 8
BOUND = 1.05


def one_run(enabled: bool) -> float:
    """Wall-clock of one full profile_program pipeline."""
    previous = obs.set_enabled(enabled)
    try:
        obs.reset()
        started = time.perf_counter()
        profile_program(resolve_small("fib"), num_threads=4, lint=True)
        return time.perf_counter() - started
    finally:
        obs.set_enabled(previous)


def test_enabled_within_5_percent_of_disabled():
    one_run(True)  # warm-up: imports, allocator, caches
    best_disabled = float("inf")
    best_enabled = float("inf")
    for _ in range(ROUNDS):
        best_disabled = min(best_disabled, one_run(enabled=False))
        best_enabled = min(best_enabled, one_run(enabled=True))
        if best_enabled <= best_disabled * BOUND:
            return
    raise AssertionError(
        f"instrumented pipeline {best_enabled:.4f}s exceeds 5% bound over "
        f"uninstrumented {best_disabled:.4f}s "
        f"(ratio {best_enabled / best_disabled:.3f})"
    )
