"""Snapshot exports: canonical-JSON round trip, Prometheus text format
validity (golden), and the human table."""

import json
import re

import pytest

from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    ObsSnapshot,
    SpanRecord,
    render_table,
    to_prometheus,
)
from repro.obs.registry import ObsRegistry


def fixed_snapshot() -> ObsSnapshot:
    """A hand-built snapshot with exact values for golden assertions."""
    return ObsSnapshot(
        spans={
            "engine.run": SpanRecord(
                name="engine.run", count=2, total_seconds=1.5,
                min_seconds=0.5, max_seconds=1.0,
            ),
            "graph.build": SpanRecord(
                name="graph.build", count=4, total_seconds=0.25,
                min_seconds=0.05, max_seconds=0.1,
            ),
        },
        counters={"engine.invocations": 2, "cache.trace_hits": 3},
        derived={"engine.events_per_sec": 26222.5},
    )


class TestJsonRoundTrip:
    def test_round_trip_is_exact(self):
        snap = fixed_snapshot()
        again = ObsSnapshot.from_json(snap.to_json())
        assert again.to_json() == snap.to_json()
        assert again.spans == snap.spans
        assert again.counters == snap.counters
        assert again.derived == snap.derived

    def test_derived_gauges_serialized_in_json(self):
        payload = json.loads(fixed_snapshot().to_json())
        assert payload["derived"] == {"engine.events_per_sec": 26222.5}

    def test_missing_derived_section_defaults_empty(self):
        # Snapshots serialized before the derived section existed.
        snap = ObsSnapshot.from_dict(
            {"schema": SNAPSHOT_SCHEMA, "spans": {}, "counters": {"n": 1}}
        )
        assert snap.derived == {}

    def test_json_is_canonical(self):
        text = fixed_snapshot().to_json()
        payload = json.loads(text)
        assert payload["schema"] == SNAPSHOT_SCHEMA
        # byte-stable: sorted keys, no whitespace
        assert text == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def test_live_registry_round_trips(self):
        reg = ObsRegistry()
        with reg.span("stage"):
            pass
        reg.count("n", 3)
        snap = reg.snapshot()
        assert ObsSnapshot.from_json(snap.to_json()).to_json() == snap.to_json()

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported snapshot schema"):
            ObsSnapshot.from_dict({"schema": "grain-obs/v999"})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError):
            ObsSnapshot.from_json("[1, 2]")


PROM_SAMPLE = re.compile(
    r'^[a-z_]+\{[a-z]+="[^"]*"\} -?\d+(\.\d+)?(e-?\d+)?$'
)


class TestPrometheus:
    def test_golden_output(self):
        text = to_prometheus(fixed_snapshot())
        assert text == (
            "# HELP grain_stage_seconds_total Cumulative wall-clock seconds "
            "spent in each pipeline stage.\n"
            "# TYPE grain_stage_seconds_total counter\n"
            'grain_stage_seconds_total{stage="engine.run"} 1.5\n'
            'grain_stage_seconds_total{stage="graph.build"} 0.25\n'
            "# HELP grain_stage_invocations_total Number of timed entries "
            "into each pipeline stage.\n"
            "# TYPE grain_stage_invocations_total counter\n"
            'grain_stage_invocations_total{stage="engine.run"} 2\n'
            'grain_stage_invocations_total{stage="graph.build"} 4\n'
            "# HELP grain_stage_seconds_min Shortest single observation of "
            "each pipeline stage.\n"
            "# TYPE grain_stage_seconds_min gauge\n"
            'grain_stage_seconds_min{stage="engine.run"} 0.5\n'
            'grain_stage_seconds_min{stage="graph.build"} 0.05\n'
            "# HELP grain_stage_seconds_max Longest single observation of "
            "each pipeline stage.\n"
            "# TYPE grain_stage_seconds_max gauge\n"
            'grain_stage_seconds_max{stage="engine.run"} 1\n'
            'grain_stage_seconds_max{stage="graph.build"} 0.1\n'
            "# HELP grain_counter_total Unified pipeline counters (engine "
            "RunStats, cache stats, ...).\n"
            "# TYPE grain_counter_total counter\n"
            'grain_counter_total{name="cache.trace_hits"} 3\n'
            'grain_counter_total{name="engine.invocations"} 2\n'
            "# HELP grain_derived_gauge Gauges derived from spans and "
            "counters at snapshot time (e.g. engine.events_per_sec).\n"
            "# TYPE grain_derived_gauge gauge\n"
            'grain_derived_gauge{name="engine.events_per_sec"} 26222.5\n'
        )

    def test_every_sample_line_is_well_formed(self):
        text = to_prometheus(fixed_snapshot())
        families = set()
        for line in text.strip().splitlines():
            if line.startswith("# HELP "):
                families.add(line.split()[2])
            elif line.startswith("# TYPE "):
                assert line.split()[2] in families, "TYPE must follow HELP"
                assert line.split()[3] in ("counter", "gauge")
            else:
                assert PROM_SAMPLE.match(line), line
                assert line.split("{")[0] in families

    def test_label_escaping(self):
        snap = ObsSnapshot(
            spans={},
            counters={'weird"name\\with\nnewline': 1},
        )
        text = to_prometheus(snap)
        assert 'name="weird\\"name\\\\with\\nnewline"' in text

    def test_integral_floats_render_as_ints(self):
        snap = ObsSnapshot(spans={}, counters={"n": 3.0})
        assert 'grain_counter_total{name="n"} 3\n' in to_prometheus(snap)

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(ObsSnapshot(spans={}, counters={})) == ""

    def test_custom_prefix(self):
        text = to_prometheus(fixed_snapshot(), prefix="bench")
        assert "bench_stage_seconds_total" in text
        assert "grain_" not in text


class TestRenderTable:
    def test_longest_stage_first_and_counters_listed(self):
        text = render_table(fixed_snapshot())
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert lines[2].startswith("engine.run")  # 1.5s before 0.25s
        assert lines[3].startswith("graph.build")
        assert any(line.startswith("engine.invocations") for line in lines)

    def test_counters_can_be_suppressed(self):
        text = render_table(fixed_snapshot(), counters=False)
        assert "engine.invocations" not in text
        assert "engine.run" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_table(ObsSnapshot(spans={}, counters={})) == ""
