"""The bench harness: pinned matrix shape, report schema and round
trip, regression comparison semantics, and the CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.exec import MatrixPoint
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchReport,
    compare,
    default_matrix,
    report_prometheus,
    run_bench,
)

TINY = [MatrixPoint.of("fig3a", "MIR", 2), MatrixPoint.of("fig3b", "GCC", 2)]


class TestDefaultMatrix:
    def test_pinned_coverage_is_at_least_6_programs_x_2_flavors(self):
        matrix = default_matrix()
        programs = {p.program for p in matrix}
        flavors = {p.flavor for p in matrix}
        assert len(programs) >= 6
        assert flavors == {"MIR", "GCC"}
        assert len(matrix) == len(programs) * len(flavors)

    def test_quick_changes_threads_not_coverage(self):
        full = default_matrix(quick=False)
        quick = default_matrix(quick=True)
        assert [(p.program, p.flavor) for p in full] == [
            (p.program, p.flavor) for p in quick
        ]
        assert all(p.threads == 8 for p in full)
        assert all(p.threads == 4 for p in quick)

    def test_every_pinned_point_resolves(self):
        for point in default_matrix(quick=True):
            resolved = point.resolve()  # raises if a pin goes stale
            assert resolved.name.replace("_", "-") == \
                point.program.replace("_", "-")


@pytest.fixture(scope="module")
def tiny_report():
    # One real bench run shared by the schema/round-trip/compare tests.
    return run_bench(points=TINY, created="2026-08-05T12:00:00")


class TestRunBench:
    def test_totals_and_stages(self, tiny_report):
        totals = tiny_report.totals
        assert totals["points"] == 2
        # each point also gets a deduplicated 1-thread reference run
        assert totals["simulations"] == 4
        assert totals["cache_trace_misses"] == 4
        assert totals["cache_trace_stores"] == 4
        assert totals["engine_events"] > 0
        assert totals["events_per_second"] > 0
        assert totals["peak_rss_kib"] > 0
        for stage in ("engine.run", "graph.build", "exec.simulate",
                      "analysis.analyze", "cache.trace_write"):
            assert stage in tiny_report.stages, stage
            assert tiny_report.stages[stage]["total_seconds"] > 0.0

    def test_counters_unify_engine_and_cache(self, tiny_report):
        assert tiny_report.counters["engine.invocations"] == 4
        assert tiny_report.counters["cache.trace_misses"] == 4
        assert tiny_report.counters["exec.simulated"] == 4

    def test_matrix_and_host_recorded(self, tiny_report):
        assert tiny_report.matrix[0] == {
            "program": "fig3a", "flavor": "MIR", "threads": 2, "kwargs": {},
        }
        assert tiny_report.host["python"]

    def test_write_load_round_trip(self, tiny_report, tmp_path):
        path = tiny_report.write(tmp_path / tiny_report.filename())
        assert path.name == "BENCH_2026-08-05.json"
        again = BenchReport.load(path)
        assert again.to_dict() == tiny_report.to_dict()
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "grain-bench/v999"}))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            BenchReport.load(path)

    def test_prometheus_export(self, tiny_report):
        text = report_prometheus(tiny_report)
        assert 'grain_stage_seconds_total{stage="engine.run"}' in text
        assert 'grain_counter_total{name="engine.invocations"} 4' in text

    def test_prometheus_export_includes_derived_throughput(self, tiny_report):
        # bench_snapshot rebuilds the snapshot from the written report, so
        # the derived gauges must be recomputed — a scrape of a trajectory
        # file reports the same headline throughput as the live registry.
        text = report_prometheus(tiny_report)
        assert 'grain_derived_gauge{name="engine.events_per_sec"}' in text
        events = tiny_report.counters["engine.events_emitted"]
        run_seconds = tiny_report.stages["engine.run"]["total_seconds"]
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith('grain_derived_gauge{name="engine.events_per_sec"}')
        )
        assert float(line.split()[-1]) == pytest.approx(events / run_seconds)


def scaled(report: BenchReport, factor: float) -> BenchReport:
    """A copy of ``report`` with every stage wall-clock scaled."""
    payload = json.loads(report.to_json())
    for fields in payload["stages"].values():
        fields["total_seconds"] *= factor
    payload["totals"]["wall_seconds"] *= factor
    return BenchReport.from_dict(payload)


class TestCompare:
    def test_identical_reports_pass(self, tiny_report):
        comparison = compare(tiny_report, tiny_report)
        assert comparison.ok
        assert "OK" in comparison.summary()
        assert not comparison.counter_drift

    def test_injected_regression_fails(self, tiny_report):
        # current is 10x slower than previous -> every real stage flags
        comparison = compare(
            tiny_report, scaled(tiny_report, 0.1), min_seconds=1e-6
        )
        assert not comparison.ok
        assert comparison.regressions
        assert "<< REGRESSION" in comparison.summary()
        assert "FAIL" in comparison.summary()

    def test_improvement_never_flags(self, tiny_report):
        comparison = compare(
            tiny_report, scaled(tiny_report, 10.0), min_seconds=1e-6
        )
        assert comparison.ok

    def test_min_seconds_floor_suppresses_jitter(self, tiny_report):
        # the same 10x regression is forgiven when both sides are under
        # the floor — stage totals here are far below 100s
        comparison = compare(
            tiny_report, scaled(tiny_report, 0.1), min_seconds=100.0
        )
        assert comparison.ok

    def test_counter_drift_reported_but_never_gates(self, tiny_report):
        payload = json.loads(tiny_report.to_json())
        payload["counters"]["engine.events_emitted"] += 999
        drifted = BenchReport.from_dict(payload)
        comparison = compare(drifted, tiny_report, min_seconds=100.0)
        assert comparison.ok  # counters never gate
        assert "engine.events_emitted" in comparison.counter_drift
        assert "counter drift" in comparison.summary()

    def test_new_stage_regresses_only_past_floor(self, tiny_report):
        payload = json.loads(tiny_report.to_json())
        payload["stages"]["brand.new"] = {
            "count": 1.0, "total_seconds": 5.0, "mean_seconds": 5.0,
            "max_seconds": 5.0, "share": 0.5,
        }
        grown = BenchReport.from_dict(payload)
        flagged = compare(grown, tiny_report, min_seconds=0.05)
        assert any(
            d.stage == "brand.new" and d.regression for d in flagged.stages
        )
        assert not flagged.ok


class TestBenchCli:
    def test_writes_trajectory_file_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert main(
            ["bench", "--matrix", "fig3a:MIR:2", "--out", str(out)]
        ) == 0
        report = BenchReport.load(out)
        assert report.totals["points"] == 1
        assert "events/s engine throughput" in capsys.readouterr().out

    def test_out_directory_gets_canonical_filename(self, tmp_path):
        assert main(
            ["bench", "--matrix", "fig3a:MIR:2", "--out", str(tmp_path)]
        ) == 0
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1

    def test_against_regression_exits_nonzero(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        assert main(
            ["bench", "--matrix", "fig3a:MIR:2", "--out", str(current)]
        ) == 0
        # fabricate a 10x-faster previous trajectory
        baseline = scaled(BenchReport.load(current), 0.1)
        prev = tmp_path / "prev.json"
        baseline.write(prev)
        code = main(
            ["bench", "--matrix", "fig3a:MIR:2", "--out",
             str(tmp_path / "cur2.json"), "--against", str(prev),
             "--min-seconds", "1e-9"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_against_matching_baseline_exits_zero(self, tmp_path):
        current = tmp_path / "cur.json"
        assert main(
            ["bench", "--matrix", "fig3a:MIR:2", "--out", str(current)]
        ) == 0
        # generous floor: reruns of a millisecond matrix are all jitter
        assert main(
            ["bench", "--matrix", "fig3a:MIR:2", "--out",
             str(tmp_path / "cur2.json"), "--against", str(current)]
        ) == 0

    def test_against_unreadable_baseline_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["bench", "--matrix", "fig3a:MIR:2", "--out",
                 str(tmp_path / "c.json"), "--against",
                 str(tmp_path / "missing.json")]
            )
        assert excinfo.value.code == 2
        assert "cannot load --against baseline" in capsys.readouterr().err
