"""End-to-end instrumentation coverage: one fully-loaded pipeline run
must hit every advertised stage, and counters must mirror engine
RunStats and cache traffic exactly."""

from dataclasses import asdict

from repro.apps.registry import resolve_small
from repro.exec import RunCache, TraceExecutor
from repro.obs import registry as obs
from repro.runtime.flavors import MIR
from repro.workflow import profile_program

# Every stage a lint+static profile_program run must time.
PIPELINE_STAGES = {
    "engine.run",
    "exec.simulate",
    "graph.build",
    "graph.validate",
    "lint.run",
    "static.check",
    "analysis.analyze",
    "analysis.problems",
    "analysis.definitions",
    "analysis.timeline",
    "metrics.critical_path",
    "metrics.load_balance",
    "metrics.parallelism",
    "metrics.memory",
    "metrics.scatter",
    "metrics.parallel_benefit",
    "metrics.work_deviation",
}


def test_full_pipeline_times_every_stage():
    study = profile_program(
        resolve_small("fig3a"), MIR, 4, lint=True, static_check=True
    )
    snap = obs.snapshot()
    missing = PIPELINE_STAGES - set(snap.spans)
    assert not missing, f"untimed stages: {sorted(missing)}"
    # main run + 1-core reference
    assert snap.spans["engine.run"].count == 2
    assert snap.spans["graph.build"].count == 2
    assert snap.spans["lint.run"].count == 1
    assert study.lint_report is not None


def test_engine_counters_mirror_run_stats():
    program = resolve_small("fig3a")
    executor = TraceExecutor()
    result = executor.run(program, MIR, 4)
    snap = obs.snapshot()
    assert snap.counters["engine.invocations"] == 1
    for stat_name, value in asdict(result.stats).items():
        assert snap.counters[f"engine.{stat_name}"] == value, stat_name


def test_cache_counters_mirror_cache_stats(tmp_path):
    program = resolve_small("fig3a")
    cache = RunCache(tmp_path)
    TraceExecutor(cache=cache).run(program, MIR, 4)   # cold: miss + store
    TraceExecutor(cache=RunCache(tmp_path)).run(program, MIR, 4)  # warm: hit
    snap = obs.snapshot()
    assert snap.counters["cache.trace_misses"] == 1
    assert snap.counters["cache.trace_stores"] == 1
    assert snap.counters["cache.trace_hits"] == 1
    assert snap.spans["cache.trace_write"].count == 1
    # the read span times every load attempt: the cold probe + the hit
    assert snap.spans["cache.trace_read"].count == 2
    # the warm run never touched the engine
    assert snap.counters["engine.invocations"] == 1


def test_disabled_registry_leaves_pipeline_dark():
    obs.set_enabled(False)
    profile_program(resolve_small("fig3a"), MIR, 4)
    snap = obs.snapshot()
    assert not snap.spans
    assert not snap.counters
