"""Tests for the pass registry and the run_lint runner."""

import pytest

from helpers import small_machine, spawn_n_and_wait

from repro.apps import micro
from repro.core.builder import build_grain_graph
from repro.core.reductions import reduce_graph
from repro.lint import (
    GRAPH_LAYER,
    PROGRAM_LAYER,
    STRUCTURE_RULES,
    TRACE_LAYER,
    all_passes,
    get_pass,
    register,
    run_lint,
)
from repro.lint.framework import LintPass, graph_is_reduced
from repro.runtime.api import run_program


def _run(program=None, threads=4):
    program = program or spawn_n_and_wait(3)
    return run_program(
        program, num_threads=threads, machine=small_machine()
    )


class TestRegistry:
    def test_at_least_ten_passes_registered(self):
        assert len(all_passes()) >= 10

    def test_expected_rules_present(self):
        rules = {p.rule_id for p in all_passes()}
        assert set(STRUCTURE_RULES) <= rules
        assert "race.conflict" in rules
        assert {
            "trace.monotonic-time",
            "trace.balanced-events",
            "trace.nonnegative-duration",
            "trace.counter-sanity",
            "trace.worker-overlap",
            "trace.grain-coverage",
        } <= rules

    def test_every_pass_has_layer_and_title(self):
        for lint_pass in all_passes():
            assert lint_pass.layer in (
                TRACE_LAYER, GRAPH_LAYER, PROGRAM_LAYER
            )
            assert lint_pass.title

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError):
            register("race.conflict", "dup", GRAPH_LAYER)(lambda g, reduced: [])

    def test_unknown_pass_lookup(self):
        with pytest.raises(KeyError):
            get_pass("no.such.rule")

    def test_bad_layer_rejected(self):
        with pytest.raises(ValueError):
            LintPass("x.y", "t", "spacetime", lambda: [])


class TestRunLint:
    def test_builds_missing_layers_from_trace(self):
        report = run_lint(trace=_run().trace)
        artifacts = {artifact for _, artifact in report.passes_run}
        assert artifacts == {"trace", "graph", "reduced"}
        assert report.diagnostics == []

    def test_clean_micro_programs(self):
        for factory in (micro.fig3a, micro.fig3b, micro.fire_and_forget):
            report = run_lint(trace=_run(factory()).trace)
            assert report.diagnostics == [], factory.__name__

    def test_program_name_from_trace_meta(self):
        report = run_lint(trace=_run().trace)
        assert report.program == "spawn_n"

    def test_graph_only_skips_trace_passes(self):
        graph = build_grain_graph(_run().trace)
        report = run_lint(graph=graph)
        layers = {get_pass(rule).layer for rule, _ in report.passes_run}
        assert layers == {GRAPH_LAYER}

    def test_pass_subset_by_name(self):
        report = run_lint(trace=_run().trace, passes=["trace.monotonic-time"])
        assert {rule for rule, _ in report.passes_run} == {
            "trace.monotonic-time"
        }

    def test_race_pass_skips_reduced_graph(self):
        report = run_lint(trace=_run().trace)
        assert ("race.conflict", "graph") in report.passes_run
        assert ("race.conflict", "reduced") not in report.passes_run

    def test_reduced_graph_detected(self):
        graph = build_grain_graph(_run(micro.fig3b()).trace)
        reduced, _ = reduce_graph(graph)
        assert not graph_is_reduced(graph)
        assert graph_is_reduced(reduced)
        # Passing an already-reduced graph must not re-reduce it.
        report = run_lint(graph=reduced)
        assert {artifact for _, artifact in report.passes_run} == {"graph"}
        assert report.diagnostics == []
