"""Tests for the happens-before data-race pass (``race.conflict``)."""

from helpers import LOC, small_machine

from repro.apps import fft, kdtree, micro, sort
from repro.lint import Severity, run_lint
from repro.machine.cost import WorkRequest
from repro.runtime.actions import Alloc, Footprint, Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program


def _races(program, threads=4, machine=None):
    result = run_program(
        program, num_threads=threads, machine=machine or small_machine()
    )
    return run_lint(trace=result.trace).by_rule("race.conflict")


def _writer(start, end, cycles=500):
    def body():
        yield Work(
            WorkRequest(cycles=cycles),
            writes=(Footprint("shared", start, end),),
        )

    return body


class TestRacyMicroApp:
    def test_racy_is_flagged(self):
        found = _races(micro.racy())
        assert found, "missing-TaskWait race not detected"
        race = found[0]
        assert race.severity is Severity.ERROR
        assert "write/write" in race.message
        assert "'shared'" in race.message
        assert race.node_id is not None
        assert race.grain_id
        assert race.loc
        assert race.fix_hint

    def test_fixed_variant_is_clean(self):
        assert _races(micro.racy_fixed()) == []

    def test_racy_flagged_at_any_thread_count(self):
        # The relation is logical: even a 1-thread run, where the grains
        # cannot physically overlap, must still report the race.
        assert _races(micro.racy(), threads=1)


class TestFootprintSemantics:
    def test_disjoint_writes_are_clean(self):
        def main():
            yield Alloc("shared", 4096)
            yield Spawn(_writer(0, 2048), loc=LOC)
            yield Spawn(_writer(2048, 4096), loc=LOC)
            yield TaskWait()

        assert _races(Program("disjoint", main)) == []

    def test_parallel_reads_are_clean(self):
        def reader():
            yield Work(
                WorkRequest(cycles=300),
                reads=(Footprint("shared", 0, 4096),),
            )

        def main():
            yield Alloc("shared", 4096)
            yield Spawn(reader, loc=LOC)
            yield Spawn(reader, loc=LOC)
            yield TaskWait()

        assert _races(Program("readers", main)) == []

    def test_parent_read_vs_unwaited_child_write(self):
        def main():
            yield Alloc("shared", 4096, record_write=False)
            yield Spawn(_writer(0, 4096), loc=LOC)
            # No TaskWait: the parent's read races the child's write.
            yield Work(
                WorkRequest(cycles=100),
                reads=(Footprint("shared", 0, 4096),),
            )
            yield TaskWait()

        found = _races(Program("parent_read", main))
        assert any("read/write" in d.message for d in found)

    def test_region_name_footprint_covers_whole_region(self):
        def writer():
            yield Work(WorkRequest(cycles=300), writes=("shared",))

        def main():
            yield Alloc("shared", 4096)
            yield Spawn(writer, loc=LOC)
            yield Spawn(writer, loc=LOC)
            yield TaskWait()

        assert _races(Program("byname", main))

    def test_taskwait_orders_second_wave(self):
        # wave 1 || wave 1 would race; TaskWait separates wave 2.
        def main():
            yield Alloc("shared", 4096)
            yield Spawn(_writer(0, 4096), loc=LOC)
            yield TaskWait()
            yield Spawn(_writer(0, 4096), loc=LOC)
            yield TaskWait()

        assert _races(Program("waves", main)) == []


class TestRealAppsAreRaceFree:
    """Acceptance: zero races on the annotated benchmark ports."""

    def test_kdtree(self):
        assert _races(kdtree.program(tree_size=60), threads=4) == []

    def test_sort(self):
        assert _races(
            sort.program(elements=1 << 16), threads=4
        ) == []

    def test_fft(self):
        assert _races(fft.program(samples=1 << 10), threads=4) == []
