"""Tests for the ``grain-graphs lint`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.lint import LintReport


class TestLintCommand:
    def test_clean_program_exits_zero(self, capsys):
        assert main(["lint", "fig3a", "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "lint report for fig3a" in out
        assert "0 error" in out

    def test_racy_program_exits_nonzero(self, capsys):
        assert main(["lint", "racy", "--threads", "2"]) == 1
        out = capsys.readouterr().out
        assert "race.conflict" in out
        assert "hint:" in out

    def test_fail_on_threshold_spares_errors_below(self):
        # racy only emits ERROR diagnostics; with --fail-on error they
        # fail the run, and a clean program passes even at --fail-on info.
        assert main(["lint", "racy", "--fail-on", "error"]) == 1
        assert main(["lint", "fig3b", "--fail-on", "info"]) == 0

    def test_every_severity_label_is_a_valid_threshold(self):
        from repro.lint import Severity

        for severity in Severity:
            assert main(
                ["lint", "fig3b", "--threads", "2",
                 "--fail-on", severity.label]
            ) == 0

    def test_json_output_unaffected_by_fail_on(self, capsys):
        assert main(["lint", "racy", "--threads", "2", "--json"]) == 1
        with_default = capsys.readouterr().out
        assert main(
            ["lint", "racy", "--threads", "2", "--json",
             "--fail-on", "info"]
        ) == 1
        assert capsys.readouterr().out == with_default

    def test_json_output_roundtrips(self, capsys):
        assert main(["lint", "racy", "--threads", "2", "--json"]) == 1
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["program"] == "racy"
        assert parsed["counts"]["error"] >= 1
        report = LintReport.from_dict(parsed)
        assert report.by_rule("race.conflict")
        rules = {rule for rule, _ in report.passes_run}
        assert len(rules) >= 10  # every registered pass ran

    def test_verbose_lists_passes(self, capsys):
        assert main(["lint", "fig3b", "--threads", "2", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "ran     trace.monotonic-time on trace" in out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "does-not-exist"])
