"""Tests for memory-footprint recording through the runtime, the trace,
and the grain graph — the data the race pass consumes."""

from helpers import LOC, small_machine

from repro.apps import micro
from repro.core.builder import build_grain_graph
from repro.machine.cost import WorkRequest
from repro.profiler.events import ChunkEvent, FragmentEvent
from repro.runtime.actions import (
    Alloc,
    Footprint,
    ParallelFor,
    Spawn,
    TaskWait,
    WHOLE_REGION,
    Work,
    normalize_footprints,
)
from repro.runtime.api import Program, run_program
from repro.runtime.loops import LoopSpec, Schedule


def _run(program, threads=2):
    return run_program(
        program, num_threads=threads, machine=small_machine()
    )


class TestNormalize:
    def test_string_means_whole_region(self):
        sizes = {"a": 128}
        assert normalize_footprints(("a",), sizes) == (("a", 0, 128),)

    def test_unknown_size_uses_sentinel(self):
        assert normalize_footprints(("a",), {}) == (("a", 0, WHOLE_REGION),)

    def test_explicit_range_kept(self):
        got = normalize_footprints((Footprint("a", 8, 24),), {"a": 128})
        assert got == (("a", 8, 24),)

    def test_open_end_resolves_to_size(self):
        got = normalize_footprints((Footprint("a", 8),), {"a": 128})
        assert got == (("a", 8, 128),)


class TestFragmentFootprints:
    def test_work_footprints_reach_trace_and_graph(self):
        def child():
            yield Work(
                WorkRequest(cycles=200),
                reads=(Footprint("buf", 0, 64),),
                writes=(Footprint("buf", 64, 128),),
            )

        def main():
            yield Alloc("buf", 128, record_write=False)
            yield Spawn(child, loc=LOC)
            yield TaskWait()

        result = _run(Program("fp", main))
        frags = [
            e for e in result.trace.events
            if isinstance(e, FragmentEvent) and e.writes
        ]
        assert [e.writes for e in frags] == [(("buf", 64, 128),)]
        assert frags[0].reads == (("buf", 0, 64),)
        graph = build_grain_graph(result.trace)
        annotated = [n for n in graph.grain_nodes() if n.writes]
        assert len(annotated) == 1
        assert annotated[0].writes == (("buf", 64, 128),)

    def test_alloc_records_whole_region_write(self):
        def main():
            yield Alloc("buf", 256)

        result = _run(Program("alloc", main))
        frags = [
            e for e in result.trace.events if isinstance(e, FragmentEvent)
        ]
        assert any(("buf", 0, 256) in e.writes for e in frags)

    def test_footprints_split_per_fragment(self):
        # The pre-spawn and post-spawn fragments carry their own writes.
        def child():
            yield Work(WorkRequest(cycles=50))

        def main():
            yield Work(WorkRequest(cycles=100), writes=("a",))
            yield Spawn(child, loc=LOC)
            yield Work(WorkRequest(cycles=100), writes=("b",))
            yield TaskWait()

        result = _run(Program("split", main))
        root_frags = sorted(
            (
                e for e in result.trace.events
                if isinstance(e, FragmentEvent) and e.tid == 0
            ),
            key=lambda e: e.seq,
        )
        regions = [tuple(w[0] for w in e.writes) for e in root_frags]
        assert ("a",) in regions and ("b",) in regions


class TestChunkFootprints:
    def test_loop_footprint_lands_on_chunks(self):
        def footprint(start, end):
            return (
                (Footprint("arr", start * 8, end * 8),),
                (Footprint("out", start * 8, end * 8),),
            )

        def main():
            yield Alloc("arr", 160, record_write=False)
            yield Alloc("out", 160, record_write=False)
            yield ParallelFor(
                LoopSpec(
                    iterations=20,
                    chunk_size=5,
                    body=lambda i: WorkRequest(cycles=100),
                    schedule=Schedule.STATIC,
                    footprint=footprint,
                    loc=LOC,
                )
            )

        result = _run(Program("loopfp", main))
        chunks = [
            e for e in result.trace.events if isinstance(e, ChunkEvent)
        ]
        assert chunks
        for chunk in chunks:
            (read,) = chunk.reads
            (write,) = chunk.writes
            assert read[0] == "arr" and write[0] == "out"
            assert write[2] - write[1] == 5 * 8

    def test_trace_json_roundtrip_preserves_footprints(self, tmp_path):
        from repro.profiler.trace import Trace

        result = _run(micro.racy())
        path = tmp_path / "t.jsonl"
        result.trace.dump_jsonl(path)
        back = Trace.load_jsonl(path)
        originals = [
            e for e in result.trace.events
            if isinstance(e, FragmentEvent) and (e.reads or e.writes)
        ]
        loaded = [
            e for e in back.events
            if isinstance(e, FragmentEvent) and (e.reads or e.writes)
        ]
        assert originals and originals == loaded
