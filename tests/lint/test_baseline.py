"""Fingerprints, canonical ordering, baselines, and SARIF rendering."""

import json

import pytest

from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    apply_baseline,
    fingerprint,
    load_baseline,
    render_sarif,
    sort_diagnostics,
    write_baseline,
)


def _diag(**overrides):
    base = dict(
        rule_id="static.race",
        severity=Severity.ERROR,
        message="grains 't:0/0' and 't:0/1' conflict on 'shared'",
        artifact="program",
        node_id=7,
        grain_id="t:0/0",
        loc="racy.c:12(update)",
        fix_hint="order the accesses",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestFingerprint:
    def test_stable_across_node_renumbering(self):
        assert fingerprint(_diag(node_id=7)) == fingerprint(
            _diag(node_id=99)
        )
        assert fingerprint(_diag(event_index=None)) == fingerprint(
            _diag(event_index=1234)
        )

    def test_sensitive_to_identity_fields(self):
        base = fingerprint(_diag())
        assert fingerprint(_diag(message="other")) != base
        assert fingerprint(_diag(rule_id="static.workspan")) != base
        assert fingerprint(_diag(loc="racy.c:99(update)")) != base
        assert fingerprint(_diag(grain_id="t:0/1")) != base

    def test_shape(self):
        print_ = fingerprint(_diag())
        assert len(print_) == 16
        int(print_, 16)  # hex


class TestCanonicalOrder:
    def test_severity_descends_first(self):
        info = _diag(severity=Severity.INFO, rule_id="a.a")
        error = _diag(severity=Severity.ERROR, rule_id="z.z")
        assert sort_diagnostics([info, error]) == [error, info]

    def test_total_order_is_input_independent(self):
        diags = [
            _diag(message=f"finding {i}", node_id=i) for i in range(6)
        ]
        assert sort_diagnostics(diags) == sort_diagnostics(
            list(reversed(diags))
        )


class TestBaselineFile:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "base.json"
        diags = [_diag(), _diag(message="second finding")]
        assert write_baseline(path, diags) == 2
        loaded = load_baseline(path)
        assert loaded == {fingerprint(d) for d in diags}

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "v0", "fingerprints": []}))
        with pytest.raises(ValueError, match="grain-baseline/v1"):
            load_baseline(path)

    def test_load_rejects_malformed_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"schema": "grain-baseline/v1", "fingerprints": [1, 2]}
            )
        )
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(path)

    def test_apply_suppresses_only_baselined(self):
        old, new = _diag(), _diag(message="a new finding")
        report = LintReport(
            diagnostics=(old, new),
            passes_run=(("static.race", "program"),),
            program="racy",
        )
        filtered, suppressed = apply_baseline(
            report, frozenset({fingerprint(old)})
        )
        assert suppressed == 1
        assert filtered.diagnostics == (new,)
        assert filtered.program == "racy"


class TestSarif:
    def _doc(self, diags, verdicts=None):
        report = LintReport(
            diagnostics=tuple(diags),
            passes_run=(("static.race", "program"),),
            program="racy",
        )
        return json.loads(render_sarif(report, verdicts))

    def test_schema_and_version(self):
        doc = self._doc([_diag()])
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]

    def test_levels_map_to_sarif(self):
        doc = self._doc(
            [
                _diag(severity=Severity.ERROR),
                _diag(severity=Severity.WARNING, message="warn"),
                _diag(severity=Severity.INFO, message="info"),
            ]
        )
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_results_carry_stable_fingerprints(self):
        diag = _diag()
        doc = self._doc([diag])
        (result,) = doc["runs"][0]["results"]
        assert result["partialFingerprints"]["grainGraphs/v1"] == (
            fingerprint(diag)
        )

    def test_location_parsed_from_loc(self):
        doc = self._doc([_diag(loc="racy.c:12(update)")])
        (result,) = doc["runs"][0]["results"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "racy.c"
        assert physical["region"]["startLine"] == 12
        assert location["logicalLocations"][0]["name"] == "update"

    def test_no_loc_no_locations(self):
        doc = self._doc([_diag(loc="")])
        (result,) = doc["runs"][0]["results"]
        assert "locations" not in result

    def test_rule_index_consistent(self):
        doc = self._doc(
            [_diag(), _diag(rule_id="static.workspan", message="ws")]
        )
        run = doc["runs"][0]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]

    def test_verdicts_attached_by_fingerprint(self):
        diag = _diag()
        doc = self._doc([diag], {fingerprint(diag): "CONFIRMED"})
        (result,) = doc["runs"][0]["results"]
        assert result["properties"]["verdict"] == "CONFIRMED"
