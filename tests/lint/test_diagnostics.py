"""Tests for lint diagnostic records and the report container."""

import json

import pytest

from repro.lint import Diagnostic, LintReport, Severity


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_labels_roundtrip(self):
        for severity in Severity:
            assert Severity.from_label(severity.label) is severity

    def test_from_label_rejects_garbage(self):
        with pytest.raises(ValueError):
            Severity.from_label("fatal")


class TestDiagnostic:
    def test_dict_roundtrip(self):
        diag = Diagnostic(
            rule_id="race.conflict",
            severity=Severity.ERROR,
            message="conflict",
            artifact="graph",
            node_id=7,
            grain_id="t:0/0",
            loc="racy.c:12(update)",
            fix_hint="add a TaskWait",
        )
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_dict_severity_is_a_label(self):
        diag = Diagnostic("r", Severity.WARNING, "m")
        assert diag.to_dict()["severity"] == "warning"

    def test_anchor_parts(self):
        diag = Diagnostic(
            "r", Severity.INFO, "m", node_id=3, grain_id="t:1/0",
            loc="a.c:1",
        )
        assert diag.anchor() == "node 3, grain t:1/0, a.c:1"

    def test_anchor_falls_back_to_artifact(self):
        assert Diagnostic("r", Severity.INFO, "m").anchor() == "graph"

    def test_with_artifact(self):
        diag = Diagnostic("r", Severity.INFO, "m")
        assert diag.with_artifact("reduced").artifact == "reduced"
        assert diag.artifact == "graph"  # frozen original untouched


class TestLintReport:
    def _report(self):
        report = LintReport(program="p")
        report.extend(
            [
                Diagnostic("a.x", Severity.ERROR, "boom"),
                Diagnostic("a.x", Severity.WARNING, "hmm"),
                Diagnostic("b.y", Severity.INFO, "fyi"),
            ]
        )
        report.passes_run = [("a.x", "graph"), ("b.y", "trace")]
        return report

    def test_counts_and_selectors(self):
        report = self._report()
        assert report.count(Severity.ERROR) == 1
        assert len(report.errors) == 1
        assert report.max_severity is Severity.ERROR
        assert len(report.at_or_above(Severity.WARNING)) == 2
        assert len(report.by_rule("a.x")) == 2

    def test_empty_report(self):
        report = LintReport()
        assert report.max_severity is None
        assert report.errors == []

    def test_json_roundtrip(self):
        report = self._report()
        parsed = json.loads(report.to_json())
        assert parsed["counts"] == {"info": 1, "warning": 1, "error": 1}
        back = LintReport.from_dict(parsed)
        assert back.diagnostics == report.diagnostics
        assert back.passes_run == report.passes_run
        assert back.program == "p"
