"""Corrupted-trace tests: each runtime-invariant pass must catch its own
failure mode when the event stream is deliberately damaged."""

from dataclasses import replace

from helpers import loop_program, small_machine, spawn_n_and_wait

from repro.lint import run_lint
from repro.machine.counters import CounterSet
from repro.profiler.events import FragmentEvent, TaskCompleteEvent
from repro.profiler.trace import Trace
from repro.runtime.api import run_program


def _trace(program=None, threads=4):
    program = program or spawn_n_and_wait(3)
    return run_program(
        program, num_threads=threads, machine=small_machine()
    ).trace


def _copy_with(events, meta) -> Trace:
    trace = Trace(meta)
    trace.extend(events)
    return trace


def _lint_one(trace, rule_id):
    return run_lint(
        trace=trace, passes=[rule_id], build_missing=False
    ).by_rule(rule_id)


def _first_fragment_index(trace):
    return next(
        i for i, e in enumerate(trace.events)
        if isinstance(e, FragmentEvent) and e.end > e.start
    )


class TestCleanTraces:
    def test_all_trace_passes_quiet_on_real_runs(self):
        for program in (spawn_n_and_wait(4), loop_program()):
            report = run_lint(
                trace=_trace(program), build_missing=False
            )
            assert report.diagnostics == []


class TestMonotonicTime:
    def test_reordered_events_flagged(self):
        trace = _trace()
        events = list(trace.events)
        events[0], events[-1] = events[-1], events[0]
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.monotonic-time")
        assert found
        assert all(d.event_index is not None for d in found)


class TestBalancedEvents:
    def test_dropped_completion_flagged(self):
        trace = _trace()
        events = [
            e for e in trace.events if not isinstance(e, TaskCompleteEvent)
        ]
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.balanced-events")
        assert any("never completed" in d.message for d in found)

    def test_orphan_completion_flagged(self):
        trace = _trace()
        last = trace.events[-1]
        end = last.end if hasattr(last, "end") else last.time
        extra = TaskCompleteEvent(tid=999, time=end + 1, core=0)
        found = _lint_one(
            _copy_with(list(trace.events) + [extra], trace.meta),
            "trace.balanced-events",
        )
        assert any("never created" in d.message for d in found)


class TestNonnegativeDuration:
    def test_negative_span_flagged(self):
        trace = _trace()
        events = list(trace.events)
        i = _first_fragment_index(trace)
        frag = events[i]
        events[i] = replace(frag, start=frag.end + 10)
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.nonnegative-duration")
        assert any("negative length" in d.message for d in found)


class TestCounterSanity:
    def test_stall_exceeding_cycles_flagged(self):
        trace = _trace()
        events = list(trace.events)
        i = _first_fragment_index(trace)
        frag = events[i]
        bad = CounterSet(cycles=10, compute_cycles=5, stall_cycles=50)
        events[i] = replace(frag, counters=bad)
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.counter-sanity")
        assert any("stalls" in d.message for d in found)

    def test_negative_counter_flagged(self):
        trace = _trace()
        events = list(trace.events)
        i = _first_fragment_index(trace)
        frag = events[i]
        span = frag.end - frag.start
        bad = CounterSet(cycles=span, compute_cycles=span, l1_misses=-1)
        events[i] = replace(frag, counters=bad)
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.counter-sanity")
        assert any("negative counters" in d.message for d in found)


class TestWorkerOverlap:
    def test_double_booked_core_flagged(self):
        trace = _trace()
        events = list(trace.events)
        i = _first_fragment_index(trace)
        frag = events[i]
        clone = replace(frag, tid=9999, seq=0)
        found = _lint_one(
            _copy_with(events + [clone], trace.meta), "trace.worker-overlap"
        )
        assert any("simultaneously" in d.message for d in found)


class TestGrainCoverage:
    def test_noncontiguous_fragment_seq_flagged(self):
        trace = _trace()
        events = list(trace.events)
        i = _first_fragment_index(trace)
        events[i] = replace(events[i], seq=57)
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.grain-coverage")
        assert any("not contiguous" in d.message for d in found)

    def test_core_outside_team_flagged(self):
        trace = _trace()
        events = list(trace.events)
        i = _first_fragment_index(trace)
        events[i] = replace(events[i], core=trace.meta.num_threads + 3)
        found = _lint_one(_copy_with(events, trace.meta),
                          "trace.grain-coverage")
        assert any("outside" in d.message for d in found)
