"""Regression net: every registered CLI program produces graphs that the
``validate_graph`` shim (backed by the ``structure.*`` lint passes)
accepts, both unreduced and reduced.

Heavyweight entries run with shrunken inputs — the structural constraints
are shape properties, not size properties.
"""

import pytest

from repro.cli import PROGRAMS
from repro.core.reductions import reduce_graph
from repro.core.validate import validate_graph
from repro.workflow import profile_program

SMALL_INPUTS = {
    "fft": dict(samples=1 << 12),
    "fft-optimized": dict(samples=1 << 12),
    "fib": dict(n=22, cutoff=10),
    "nqueens": dict(n=9),
    "sort": dict(elements=1 << 17),
    "sort-roundrobin": dict(elements=1 << 17),
    "sort-lowcutoff": dict(elements=1 << 17),
    "botsspar": dict(nb=10),
    "botsspar-interchanged": dict(nb=10),
    "uts": dict(expected_nodes=800),
    "imagick": dict(rows=240),
    "bodytrack": dict(particles=1000, rows=240),
    "blackscholes": dict(options=8000),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_profiled_graphs_validate_reduced_and_unreduced(name):
    program = PROGRAMS[name](**SMALL_INPUTS.get(name, {}))
    study = profile_program(
        program, num_threads=8, reference_threads=None
    )  # validate=True already checks the unreduced graph; be explicit:
    validate_graph(study.graph)
    reduced, _ = reduce_graph(study.graph)
    validate_graph(reduced)
