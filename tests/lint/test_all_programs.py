"""Regression net: every registered CLI program produces graphs that the
``validate_graph`` shim (backed by the ``structure.*`` lint passes)
accepts, both unreduced and reduced.

Heavyweight entries run with shrunken inputs — the structural constraints
are shape properties, not size properties.
"""

import pytest

from repro.apps.registry import PROGRAMS, resolve_small
from repro.core.reductions import reduce_graph
from repro.core.validate import validate_graph
from repro.workflow import profile_program


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_profiled_graphs_validate_reduced_and_unreduced(name):
    program = resolve_small(name)
    study = profile_program(
        program, num_threads=8, reference_threads=None
    )  # validate=True already checks the unreduced graph; be explicit:
    validate_graph(study.graph)
    reduced, _ = reduce_graph(study.graph)
    validate_graph(reduced)
