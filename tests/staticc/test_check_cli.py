"""``grain-graphs check``: exit codes, JSON, and engine purity."""

import json

import pytest

from repro.cli import main
from repro.lint import LintReport, Severity
from repro.runtime.engine import engine_invocations


class TestCheckCommand:
    def test_clean_program_exits_zero(self, capsys):
        assert main(["check", "fig3b"]) == 0
        out = capsys.readouterr().out
        assert "StaticModel(fig3b)" in out
        assert "static.workspan" in out

    def test_racy_program_exits_nonzero(self, capsys):
        assert main(["check", "racy"]) == 1
        out = capsys.readouterr().out
        assert "static.race" in out
        assert "all schedules" in out

    def test_never_invokes_engine(self):
        before = engine_invocations()
        main(["check", "--all"])
        assert engine_invocations() == before

    def test_all_includes_racy_hence_nonzero(self):
        assert main(["check", "--all"]) == 1

    def test_every_severity_label_is_a_valid_threshold(self):
        for severity in Severity:
            code = main(["check", "fig3b", "--fail-on", severity.label])
            # fig3b's static report has INFO findings but no warnings
            # or errors.
            assert code == (1 if severity is Severity.INFO else 0)

    def test_json_output_roundtrips_and_is_unaffected_by_fail_on(
        self, capsys
    ):
        assert main(["check", "racy", "--json"]) == 1
        with_default = capsys.readouterr().out
        assert main(
            ["check", "racy", "--json", "--fail-on", "info"]
        ) == 1
        with_info = capsys.readouterr().out
        assert with_default == with_info  # output independent of gate
        report = LintReport.from_dict(json.loads(with_default))
        assert report.program == "racy"
        assert report.errors

    def test_json_multiple_programs_is_a_list(self, capsys):
        assert main(["check", "fig3a", "fig3b", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert [p["program"] for p in parsed] == ["fig3a", "fig3b"]

    def test_verbose_lists_passes(self, capsys):
        assert main(["check", "fig3b", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "ran     static.workspan on program" in out

    def test_no_programs_rejected(self):
        with pytest.raises(SystemExit):
            main(["check"])

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "does-not-exist"])
