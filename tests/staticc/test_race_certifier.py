"""The all-schedule race certifier vs. the dynamic happens-before pass.

``static.race`` must be strictly stronger than the dynamic
``race.conflict``: it certifies over *every* schedule, so on any program
its findings are a superset of what any single simulated schedule can
reveal.  Both run the same conflict scanner over footprint-carrying
grain graphs, and static task grain ids replicate the engine's path
enumeration, so the comparison is exact, key for key.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LOC, small_machine

from repro.apps.registry import resolve_small
from repro.core.builder import build_grain_graph
from repro.lint.diagnostics import Severity
from repro.lint.races import scan_conflicts
from repro.machine.cost import WorkRequest
from repro.runtime.actions import Alloc, Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.staticc import check_program, expand_program


def static_keys(program):
    return scan_conflicts(expand_program(program).graph).keys()


def dynamic_keys(program, threads=4):
    result = run_program(
        program, num_threads=threads, machine=small_machine()
    )
    return scan_conflicts(build_grain_graph(result.trace)).keys()


class TestMicroApps:
    def test_racy_is_flagged_at_error(self):
        _, report = check_program(resolve_small("racy"))
        findings = [
            d for d in report.diagnostics if d.rule_id == "static.race"
        ]
        assert findings
        assert all(d.severity is Severity.ERROR for d in findings)
        assert "all schedules" in findings[0].message

    def test_racy_fixed_is_certified_clean(self):
        _, report = check_program(resolve_small("racy-fixed"))
        assert not [
            d for d in report.diagnostics if d.rule_id == "static.race"
        ]
        assert not report.errors

    def test_static_findings_superset_of_dynamic(self):
        for name in ["racy", "racy-fixed"]:
            program = resolve_small(name)
            dynamic = dynamic_keys(resolve_small(name))
            assert static_keys(program) >= dynamic


class TestHandcrafted:
    @staticmethod
    def missing_wait_program(wait: bool) -> Program:
        """Parent writes a region a spawned child also writes; only a
        TaskWait between them orders the accesses."""

        def child(region_name):
            def body():
                yield Work(
                    WorkRequest(cycles=100), writes=(region_name,)
                )

            return body

        def main():
            region = yield Alloc("buf", 4096)
            yield Spawn(child(region.name), loc=LOC)
            if wait:
                yield TaskWait()
            yield Work(WorkRequest(cycles=100), writes=(region.name,))
            yield TaskWait()

        return Program("missing_wait" if not wait else "has_wait", main)

    def test_missing_taskwait_caught_statically(self):
        keys = static_keys(self.missing_wait_program(wait=False))
        assert keys == {("buf", "t:0", "t:0/0")}

    def test_taskwait_certifies_order(self):
        assert static_keys(self.missing_wait_program(wait=True)) == set()

    # Sibling pairs with and without a separating TaskWait, random work.
    @settings(deadline=None, max_examples=25)
    @given(
        wait_between=st.booleans(),
        cycles=st.integers(1, 500),
        threads=st.integers(1, 4),
    )
    def test_superset_property_on_random_siblings(
        self, wait_between, cycles, threads
    ):
        def writer(name):
            def body():
                yield Work(WorkRequest(cycles=cycles), writes=(name,))

            return body

        def main():
            region = yield Alloc("shared", 1024)
            yield Spawn(writer(region.name), loc=LOC)
            if wait_between:
                yield TaskWait()
            yield Spawn(writer(region.name), loc=LOC)
            yield TaskWait()

        program = Program("siblings", main)
        static = static_keys(program)
        dynamic = dynamic_keys(program, threads=threads)
        assert static >= dynamic
        # And exactly: unordered siblings race, ordered ones don't.
        expected = (
            set()
            if wait_between
            else {("shared", "t:0/0", "t:0/1")}
        )
        assert static == expected


class TestSubsumesDynamicPass:
    def test_same_conflict_identity_both_layers(self):
        program = resolve_small("racy")
        static = static_keys(program)
        dynamic = dynamic_keys(resolve_small("racy"))
        assert static == dynamic == {("shared", "t:0/0", "t:0/1")}

    def test_loop_chunks_still_logically_parallel(self):
        # Same-loop chunks must stay pairwise parallel in the static
        # graph exactly as in the dynamic one (per-iteration nodes).
        model = expand_program(resolve_small("fig3b"))
        from repro.core.reachability import (
            Reachability,
            logically_ordered,
        )

        chunks = [
            n
            for n in model.graph.grain_nodes()
            if n.grain_id and n.grain_id.startswith("c:")
        ]
        assert len(chunks) == 20
        reach = Reachability(
            model.graph, {c.node_id for c in chunks[:2]}
        )
        assert not logically_ordered(reach, chunks[0], chunks[1])
