"""Symbolic expansion: purity, determinism, and structural pins.

The three guarantees under test:

1. *Purity*: expanding (and fully checking) every registered program
   never touches the discrete-event engine — pinned with the process-wide
   ``engine_invocations()`` counter.
2. *Determinism*: expansion is a pure function of the program; two fresh
   expansions produce byte-identical canonical structures (hypothesis
   drives this over the registry and over random task trees).
3. *Correspondence*: static task grain ids reproduce the engine's path
   enumeration exactly, which the race-certifier comparisons rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LOC, small_machine

from repro.apps.registry import PROGRAMS, resolve_small
from repro.core.builder import build_grain_graph
from repro.machine.cost import WorkRequest
from repro.runtime.actions import Spawn, TaskWait, Work
from repro.runtime.api import Program, run_program
from repro.runtime.engine import engine_invocations
from repro.staticc import StaticExpansionError, check_program, expand_program


def canonical(model):
    """A comparable, schedule-free rendering of a static model."""
    graph = model.graph
    nodes = tuple(
        (
            nid,
            node.kind.name,
            node.grain_id,
            node.duration_override,
            tuple(node.reads),
            tuple(node.writes),
            node.loc,
        )
        for nid, node in sorted(graph.nodes.items())
    )
    edges = tuple(
        sorted((e.src, e.dst, e.kind.name) for e in graph.edges)
    )
    tasks = tuple(sorted(model.tasks.items()))
    return (
        nodes, edges, tasks, model.work_cycles, model.span_cycles,
        model.region_sizes, model.total_access_lines,
    )


class TestEnginePurity:
    def test_checking_all_programs_never_invokes_engine(self):
        before = engine_invocations()
        for name in sorted(PROGRAMS):
            check_program(resolve_small(name))
        assert engine_invocations() == before

    def test_program_expand_hook_is_pure(self):
        before = engine_invocations()
        model = resolve_small("fib").expand()
        assert model.task_count > 1
        assert engine_invocations() == before


class TestDeterminism:
    @settings(deadline=None, max_examples=12)
    @given(name=st.sampled_from(sorted(PROGRAMS)))
    def test_registry_expansion_is_deterministic(self, name):
        first = expand_program(resolve_small(name))
        second = expand_program(resolve_small(name))
        assert canonical(first) == canonical(second)

    # Random task trees: each node is (own work cycles, children,
    # taskwait after spawning?).
    trees = st.recursive(
        st.tuples(st.integers(0, 2000)),
        lambda kids: st.tuples(
            st.integers(0, 2000),
            st.lists(kids, max_size=3),
            st.booleans(),
        ),
        max_leaves=12,
    )

    @staticmethod
    def tree_program(tree) -> Program:
        def body_of(node):
            def body():
                if len(node) == 1:
                    (cycles,) = node
                    children, wait = [], False
                else:
                    cycles, children, wait = node
                if cycles:
                    yield Work(WorkRequest(cycles=cycles))
                for child in children:
                    yield Spawn(body_of(child), loc=LOC)
                if wait:
                    yield TaskWait()

            return body

        return Program("random_tree", body_of(tree))

    @settings(deadline=None, max_examples=40)
    @given(tree=trees)
    def test_random_tree_expansion_is_deterministic(self, tree):
        first = expand_program(self.tree_program(tree))
        second = expand_program(self.tree_program(tree))
        assert canonical(first) == canonical(second)

    @settings(deadline=None, max_examples=15)
    @given(tree=trees, threads=st.integers(1, 4))
    def test_static_task_gids_match_any_schedule(self, tree, threads):
        model = expand_program(self.tree_program(tree))
        result = run_program(
            self.tree_program(tree),
            num_threads=threads,
            machine=small_machine(),
        )
        dynamic_gids = {
            node.grain_id
            for node in build_grain_graph(result.trace).grain_nodes()
            if node.grain_id and node.grain_id.startswith("t:")
        }
        assert set(model.tasks) == dynamic_gids


class TestRegressionPins:
    """T1/T∞ for three canonical programs, computed independently.

    fig3a (Fig. 3a of the paper): root does 3x1000 cycles interleaved
    with three 1400-cycle spawns and a final taskwait; serial chain
    root(3000) + the last-finishing child path gives T∞=4200 and
    T1=3000+3*1400=7200.  fig3b: a 20-iteration loop of 250-cycle
    iterations, all parallel: T1=5000, T∞=250.  fib(12, cutoff-free
    small input): 2048 tasks totalling 486960 cycles with a 3982-cycle
    spine.  These numbers change only if the apps or the expansion
    semantics change — both intentional events.
    """

    def test_fig3a_pins(self):
        model = expand_program(resolve_small("fig3a"))
        assert (model.work_cycles, model.span_cycles) == (7200, 4200)
        assert model.task_count == 4

    def test_fig3b_pins(self):
        model = expand_program(resolve_small("fig3b"))
        assert (model.work_cycles, model.span_cycles) == (5000, 250)
        assert len(model.loops) == 1
        assert model.loops[0].iter_cycles == (250,) * 20

    def test_fib_pins(self):
        model = expand_program(resolve_small("fib"))
        assert (model.work_cycles, model.span_cycles) == (486960, 3982)
        assert model.task_count == 2048


class TestExpansionSemantics:
    def test_fire_and_forget_children_adopt_upward(self):
        model = expand_program(resolve_small("floorplan"))
        root = model.tasks["t:0"]
        assert root.unsynced_at_end == 0  # the implicit barrier synced

    def test_redundant_taskwait_counted(self):
        def main():
            yield Work(WorkRequest(cycles=10))
            yield TaskWait()  # no children: a no-op barrier

        model = expand_program(Program("redundant", main))
        assert model.tasks["t:0"].redundant_taskwaits == 1

    def test_nested_parallel_for_rejected(self):
        from repro.runtime.actions import ParallelFor
        from repro.runtime.loops import LoopSpec

        def inner():
            yield ParallelFor(
                LoopSpec(
                    iterations=4,
                    body=lambda i: WorkRequest(cycles=10),
                )
            )

        def main():
            yield Spawn(inner, loc=LOC)
            yield TaskWait()

        with pytest.raises(StaticExpansionError):
            expand_program(Program("nested", main))

    def test_non_action_yield_rejected(self):
        def main():
            yield "not an action"

        with pytest.raises(TypeError):
            expand_program(Program("bogus", main))

    def test_deep_recursion_does_not_overflow(self):
        def chain(depth):
            def body():
                yield Work(WorkRequest(cycles=1))
                if depth:
                    yield Spawn(chain(depth - 1), loc=LOC)
                    yield TaskWait()

            return body

        model = expand_program(Program("deep", chain(3000)))
        assert model.task_count == 3001
        assert model.span_cycles == 3001
