"""``grain-graphs verify``: exit codes, SARIF/baseline files, JSON."""

import json

import pytest

from repro.cli import main
from repro.lint import fingerprint


class TestVerifyCommand:
    def test_racy_confirms_and_exits_nonzero(self, capsys):
        assert main(["verify", "racy"]) == 1
        out = capsys.readouterr().out
        assert "CONFIRMED" in out
        assert "static.race" in out
        assert "witness: task-race" in out

    def test_racy_fixed_exits_zero(self, capsys):
        assert main(["verify", "racy-fixed"]) == 0
        out = capsys.readouterr().out
        assert "0 CONFIRMED" in out

    def test_requires_program_or_all(self):
        with pytest.raises(SystemExit) as exc:
            main(["verify"])
        assert exc.value.code == 2

    def test_rejects_single_thread(self):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "racy", "--threads", "1"])
        assert exc.value.code == 2

    def test_json_payload_shape(self, capsys):
        assert main(["verify", "racy", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "racy"
        assert payload["replays"] == 1
        assert payload["verdicts"]["CONFIRMED"] == 1
        (finding,) = payload["findings"]
        assert finding["verdict"] == "CONFIRMED"
        assert finding["witness"]["steps"]

    def test_sarif_file_carries_verdicts(self, tmp_path, capsys):
        sarif = tmp_path / "out.sarif"
        assert main(["verify", "racy", "--sarif", str(sarif)]) == 1
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        verdicts = [
            r["properties"].get("verdict")
            for r in results
            if r["ruleId"] == "static.race"
        ]
        assert verdicts == ["CONFIRMED"]

    def test_baseline_round_trip_suppresses(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["verify", "racy", "--write-baseline", str(base)]) == 1
        capsys.readouterr()
        assert main(["verify", "racy", "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_bad_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as exc:
            main(["verify", "racy", "--baseline", str(bad)])
        assert exc.value.code == 2

    def test_max_replays_budget_reported(self, capsys):
        assert main(["verify", "kdtree", "--max-replays", "2"]) in (0, 1)
        out = capsys.readouterr().out
        assert "2 replay(s)" in out
        assert "SKIPPED" in out


class TestCheckSarifBaseline:
    def test_check_writes_sarif(self, tmp_path, capsys):
        sarif = tmp_path / "check.sarif"
        assert main(["check", "racy", "--sarif", str(sarif)]) == 1
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert "static.race" in rules

    def test_check_baseline_suppresses(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["check", "racy", "--write-baseline", str(base)]) == 1
        capsys.readouterr()
        assert main(["check", "racy", "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_check_multi_program_sarif_has_one_run_each(
        self, tmp_path, capsys
    ):
        sarif = tmp_path / "multi.sarif"
        main(["check", "fig3a", "fig3b", "--sarif", str(sarif)])
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        programs = [
            run["properties"]["program"] for run in doc["runs"]
        ]
        assert programs == ["fig3a", "fig3b"]

    def test_fingerprints_match_library(self, tmp_path, capsys):
        from repro.staticc import check_program
        from repro.apps.registry import resolve_small

        sarif = tmp_path / "fp.sarif"
        main(["check", "racy", "--sarif", str(sarif)])
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        in_sarif = {
            r["partialFingerprints"]["grainGraphs/v1"]
            for r in doc["runs"][0]["results"]
        }
        _, report = check_program(resolve_small("racy"))
        assert in_sarif == {fingerprint(d) for d in report.diagnostics}
