"""SP-tree MHP vs bitset reachability: exact agreement, engine-free.

The conflict scanner's structural pruning moved from capped bitset
reachability to an uncapped SP-tree MHP query.  These tests pin the
swap's correctness differentially: on every registered program the two
pruners must produce identical conflict sets, and the SP-tree's
``ordered`` relation must agree with ``logically_ordered`` pair by
pair — over the static symbolic graphs (never touching the engine) and
over real dynamic traces.
"""

import pytest

from helpers import small_machine

from repro.apps.registry import PROGRAMS, resolve_small
from repro.core.builder import build_grain_graph
from repro.core.nodes import GrainGraph, NodeKind
from repro.core.reachability import Reachability, logically_ordered
from repro.lint.races import scan_conflicts
from repro.runtime.api import run_program
from repro.runtime.engine import engine_invocations
from repro.staticc import SPDecompositionError, SPTree, expand_program

FAST_PROGRAMS = ["fig3a", "fig3b", "fib", "racy", "racy-fixed", "strassen"]


def _grain_pairs(graph: GrainGraph, limit: int = 4000):
    """A deterministic sample of grain-node pairs (all if few enough)."""
    nodes = sorted(graph.grain_nodes(), key=lambda n: n.node_id)
    total = len(nodes) * (len(nodes) - 1) // 2
    stride = max(1, total // limit)
    count = 0
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            count += 1
            if count % stride == 0:
                yield a, b


def _assert_pruners_agree(graph: GrainGraph):
    tree = SPTree(graph)
    reach = Reachability(
        graph, {n.node_id for n in graph.grain_nodes()}
    )
    for a, b in _grain_pairs(graph):
        assert tree.ordered(a, b) == logically_ordered(reach, a, b), (
            f"SPTree disagrees with reachability on "
            f"({a.node_id}, {b.node_id})"
        )


class TestSPTreeStructure:
    def test_sibling_tasks_are_parallel(self):
        graph = expand_program(resolve_small("fig3a")).graph
        tree = SPTree(graph)
        by_gid = {}
        for node in graph.grain_nodes():
            by_gid.setdefault(node.grain_id, []).append(node)
        bar, baz = by_gid["t:0/0/0"][0], by_gid["t:0/0/1"][0]
        assert not tree.ordered(bar, baz)
        assert not tree.ordered(baz, bar)

    def test_parent_prefix_ordered_before_child(self):
        graph = expand_program(resolve_small("fig3a")).graph
        tree = SPTree(graph)
        by_gid = {}
        for node in graph.grain_nodes():
            by_gid.setdefault(node.grain_id, []).append(node)
        foo_first = min(by_gid["t:0/0"], key=lambda n: n.frag_seq or 0)
        bar = by_gid["t:0/0/0"][0]
        assert tree.ordered(foo_first, bar)

    def test_post_taskwait_fragment_ordered_after_children(self):
        graph = expand_program(resolve_small("fig3a")).graph
        tree = SPTree(graph)
        by_gid = {}
        for node in graph.grain_nodes():
            by_gid.setdefault(node.grain_id, []).append(node)
        foo_last = max(by_gid["t:0/0"], key=lambda n: n.frag_seq or 0)
        for child_gid in ("t:0/0/0", "t:0/0/1"):
            assert tree.ordered(by_gid[child_gid][0], foo_last)

    def test_same_loop_chunks_are_parallel(self):
        graph = expand_program(resolve_small("fig3b")).graph
        tree = SPTree(graph)
        chunks = [
            n for n in graph.grain_nodes() if n.kind is NodeKind.CHUNK
        ]
        assert len(chunks) >= 2
        assert not tree.ordered(chunks[0], chunks[1])
        assert not tree.ordered(chunks[1], chunks[0])

    def test_leaf_count_covers_all_grain_nodes(self):
        graph = expand_program(resolve_small("fib")).graph
        tree = SPTree(graph)
        assert tree.leaf_count == len(list(graph.grain_nodes()))

    def test_non_sp_graph_raises(self):
        # Two continuation successors out of one fragment cannot be a
        # series-parallel task walk.
        from repro.core.nodes import EdgeKind

        graph = GrainGraph()
        nodes = [
            graph.new_node(NodeKind.FRAGMENT, grain_id="t:0", frag_seq=i)
            for i in range(3)
        ]
        graph.root_node_id = nodes[0].node_id
        graph.add_edge(
            nodes[0].node_id, nodes[1].node_id, EdgeKind.CONTINUATION
        )
        graph.add_edge(
            nodes[0].node_id, nodes[2].node_id, EdgeKind.CONTINUATION
        )
        with pytest.raises(SPDecompositionError):
            SPTree(graph)


class TestStaticDifferential:
    """MHP pruning == bitset pruning on static graphs, with no engine."""

    def test_scan_equivalence_all_programs_no_engine(self):
        before = engine_invocations()
        for name in sorted(PROGRAMS):
            graph = expand_program(resolve_small(name)).graph
            mhp = scan_conflicts(graph)
            ref = scan_conflicts(graph, force_reachability=True)
            assert mhp.keys() == ref.keys(), name
            # "none" = no candidate pairs at all (both scans early-out).
            assert mhp.pruner in ("sp-tree", "none"), name
            expected_ref = (
                "reachability" if mhp.pruner == "sp-tree" else "none"
            )
            assert ref.pruner == expected_ref, name
            assert not mhp.truncated, name
        assert engine_invocations() == before

    @pytest.mark.parametrize("name", FAST_PROGRAMS)
    def test_pairwise_agreement(self, name):
        graph = expand_program(resolve_small(name)).graph
        _assert_pruners_agree(graph)

    @pytest.mark.slow
    def test_pairwise_agreement_all_programs(self):
        for name in sorted(PROGRAMS):
            _assert_pruners_agree(expand_program(resolve_small(name)).graph)


class TestDynamicDifferential:
    """The same agreement on engine-produced (dynamic) grain graphs."""

    @pytest.mark.parametrize("name", ["fig3a", "fig3b", "racy", "fib"])
    def test_pairwise_agreement_on_trace_graphs(self, name):
        result = run_program(
            resolve_small(name), num_threads=2, machine=small_machine()
        )
        _assert_pruners_agree(build_grain_graph(result.trace))

    @pytest.mark.slow
    def test_dynamic_agreement_all_programs(self):
        for name in sorted(PROGRAMS):
            for threads in (1, 4):
                result = run_program(
                    resolve_small(name),
                    num_threads=threads,
                    machine=small_machine(),
                )
                graph = build_grain_graph(result.trace)
                _assert_pruners_agree(graph)
                mhp = scan_conflicts(graph)
                ref = scan_conflicts(graph, force_reachability=True)
                assert mhp.keys() == ref.keys(), (name, threads)


class TestTruncationWarning:
    def test_capped_fallback_reports_truncation(self):
        graph = expand_program(resolve_small("racy")).graph
        scan = scan_conflicts(
            graph, max_pair_checks=0, force_reachability=True
        )
        assert scan.truncated
        assert scan.conflicts == ()

    def test_mhp_path_has_no_cap(self):
        graph = expand_program(resolve_small("racy")).graph
        scan = scan_conflicts(graph, max_pair_checks=0)
        assert not scan.truncated
        assert scan.keys()

    def test_truncation_diagnostic_rule(self):
        from repro.lint.diagnostics import Severity
        from repro.lint.races import truncation_diagnostic

        diag = truncation_diagnostic("race checking", 7)
        assert diag.rule_id == "race.scan-truncated"
        assert diag.severity is Severity.WARNING
        assert "NOT examined" in diag.message
