"""Witness-schedule synthesis: linear-extension validity and round-trips.

A witness schedule is only useful if the engine can actually execute
it: every task's dispatch-dependency closure (tasks whose entry
fragment is happens-before its own) must be dispatched earlier.  These
tests check that property structurally for every synthesized schedule,
plus the pair-placement and serialization contracts.
"""

import pytest

from repro.apps.micro import fire_and_forget
from repro.apps.registry import resolve_small
from repro.core.reachability import Reachability
from repro.lint.races import scan_conflicts
from repro.staticc import expand_program
from repro.staticc.witness import (
    ROOT_GID,
    WitnessSchedule,
    _Synth,
    synthesize_join_witness,
    synthesize_race_witness,
)


def _racy_witness(num_threads=2):
    model = expand_program(resolve_small("racy"))
    (conflict,) = scan_conflicts(model.graph).conflicts
    g1, g2 = conflict.grain_pair
    return model, synthesize_race_witness(
        model, conflict.region, g1, g2, num_threads
    )


def _assert_linear_extension(model, schedule):
    """Every step's dispatch closure appears earlier in the schedule."""
    synth = _Synth(model)
    position = {step.gid: i for i, step in enumerate(schedule.steps)}
    for step in schedule.steps:
        for dep in synth.dispatch_closure(step.gid):
            if dep == ROOT_GID:
                continue  # the root is running before any dispatch
            assert position[dep] < position[step.gid], (
                f"{dep} must be dispatched before {step.gid}"
            )


class TestRaceWitness:
    def test_covers_every_non_root_task_once(self):
        model, schedule = _racy_witness()
        gids = [s.gid for s in schedule.steps]
        assert sorted(gids) == sorted(set(model.tasks) - {ROOT_GID})
        assert len(gids) == len(set(gids))

    def test_pair_on_distinct_workers(self):
        _, schedule = _racy_witness()
        workers = {s.gid: s.worker for s in schedule.steps}
        g1, g2 = schedule.pair
        assert workers[g1] == 0
        assert workers[g2] == 1

    def test_is_linear_extension(self):
        model, schedule = _racy_witness()
        _assert_linear_extension(model, schedule)

    def test_deep_program_witness_is_linear_extension(self):
        # strassen has nested spawns: closures are non-trivial there.
        model = expand_program(resolve_small("strassen"))
        tasks = sorted(model.tasks, key=lambda g: model.tasks[g].path)
        leafy = [g for g in tasks if g != ROOT_GID]
        schedule = synthesize_race_witness(
            model, "synthetic", leafy[1], leafy[-1]
        )
        _assert_linear_extension(model, schedule)

    def test_chunk_pair_degenerates_to_empty_schedule(self):
        model = expand_program(resolve_small("fig3b"))
        schedule = synthesize_race_witness(
            model, "grid", "c:0:0:0-4", "c:0:0:4-8"
        )
        assert schedule.kind == "chunk-race"
        assert schedule.steps == ()

    def test_rejects_single_worker(self):
        model = expand_program(resolve_small("racy"))
        with pytest.raises(ValueError):
            synthesize_race_witness(
                model, "shared", "t:0/0", "t:0/1", num_threads=1
            )

    def test_rejects_unknown_task(self):
        model = expand_program(resolve_small("racy"))
        with pytest.raises(KeyError):
            synthesize_race_witness(model, "shared", "t:0/0", "t:9/9")


class TestJoinWitness:
    def test_target_deferred_past_parent(self):
        model = expand_program(fire_and_forget(depth=2))
        parent = "t:0/0"
        target = model.tasks[parent].unsynced_gids[0]
        schedule = synthesize_join_witness(model, parent, target)
        order = [s.gid for s in schedule.steps]
        assert order.index(target) > order.index(parent)
        workers = {s.gid: s.worker for s in schedule.steps}
        assert workers[target] == 1

    def test_subtree_moves_with_target(self):
        model = expand_program(fire_and_forget(depth=3))
        parent = "t:0/0"
        target = model.tasks[parent].unsynced_gids[0]
        schedule = synthesize_join_witness(model, parent, target)
        order = [s.gid for s in schedule.steps]
        t_pos = order.index(target)
        prefix = tuple(model.tasks[target].path)
        for gid in order:
            if gid != target and tuple(
                model.tasks[gid].path[: len(prefix)]
            ) == prefix:
                assert order.index(gid) > t_pos

    def test_covers_every_non_root_task_once(self):
        model = expand_program(fire_and_forget(depth=2))
        parent = "t:0/0"
        target = model.tasks[parent].unsynced_gids[0]
        schedule = synthesize_join_witness(model, parent, target)
        gids = [s.gid for s in schedule.steps]
        assert sorted(gids) == sorted(set(model.tasks) - {ROOT_GID})

    def test_deferral_respects_happens_before(self):
        model = expand_program(fire_and_forget(depth=2))
        parent = "t:0/0"
        target = model.tasks[parent].unsynced_gids[0]
        schedule = synthesize_join_witness(model, parent, target)
        # No later-dispatched task may have an entry that happens-before
        # requires the target's exit... i.e. any task whose entry the
        # target's exit reaches must come after the target.
        reach = Reachability(
            model.graph, {model.tasks[target].exit_node}
        )
        order = [s.gid for s in schedule.steps]
        t_pos = order.index(target)
        for i, gid in enumerate(order):
            if reach.reaches(
                model.tasks[target].exit_node, model.tasks[gid].entry_node
            ) and gid != target:
                assert i > t_pos


class TestSerialization:
    def test_round_trip(self):
        _, schedule = _racy_witness()
        assert WitnessSchedule.from_dict(schedule.to_dict()) == schedule

    def test_engine_steps_shape(self):
        _, schedule = _racy_witness()
        steps = schedule.engine_steps()
        assert all(
            isinstance(g, str) and isinstance(w, int) for g, w in steps
        )
