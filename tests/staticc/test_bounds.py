"""The static bracket: T∞ <= measured critical path <= T1 upper bound.

This is the analyzer's soundness contract, checked *empirically* against
the simulator over the whole program registry — a modeling error on
either side (expansion missing structure, or the bound missing an engine
cost that lands on node durations) breaks here loudly.
"""

import pytest

from repro.apps.registry import PROGRAMS, resolve_small
from repro.machine.machine import MachineConfig
from repro.runtime.flavors import GCC, ICC, MIR
from repro.staticc import bracket, cross_validate, expand_program, work_upper_bound


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_bracket_holds_for_every_registered_program(name):
    cv = cross_validate(resolve_small(name), num_threads=8)
    assert cv.holds, cv.describe()
    assert cv.span_lower >= 0
    assert cv.static_task_count >= 1


@pytest.mark.parametrize("flavor", [MIR, ICC, GCC], ids=lambda f: f.name)
@pytest.mark.parametrize("threads", [1, 48])
def test_bracket_holds_across_flavors_and_team_sizes(flavor, threads):
    # The schedule-sensitive corners: fig3a (serial chain), fig3b
    # (loop-only), floorplan (schedule-dependent pruning), uts
    # (fire-and-forget tree).
    for name in ["fig3a", "fig3b", "floorplan", "uts"]:
        cv = cross_validate(
            resolve_small(name), flavor=flavor, num_threads=threads
        )
        assert cv.holds, f"{flavor.name}: {cv.describe()}"


def test_work_upper_is_monotone_in_threads():
    model = expand_program(resolve_small("sort"))
    uppers = [
        work_upper_bound(model, MIR, threads)
        for threads in (1, 2, 8, 16, 48)
    ]
    assert uppers == sorted(uppers)


def test_bracket_object_reports_containment():
    model = expand_program(resolve_small("fig3a"))
    bounds = bracket(model, MIR, 8)
    assert bounds.span_lower == model.span_cycles
    assert bounds.contains(model.span_cycles)
    assert bounds.contains(bounds.work_upper)
    assert not bounds.contains(bounds.work_upper + 1)
    assert not bounds.contains(model.span_cycles - 1)


def test_explicit_machine_config_accepted():
    model = expand_program(resolve_small("fig3b"))
    upper = work_upper_bound(
        model, MIR, 8, machine_config=MachineConfig.paper_testbed()
    )
    assert upper == work_upper_bound(model, MIR, 8)


def test_bad_thread_count_rejected():
    model = expand_program(resolve_small("fig3a"))
    with pytest.raises(ValueError):
        work_upper_bound(model, MIR, 0)
