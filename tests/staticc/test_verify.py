"""The verifier: static findings replayed to CONFIRMED/UNWITNESSED/SKIPPED.

The acceptance contract of ``grain-graphs verify``: the seeded racy
micro-app is CONFIRMED via a real engine replay of its synthesized
witness, the corrected variant verifies clean, join anomalies confirm
by completion-time evidence, and redundant-taskwait findings (which
assert the *absence* of behavior) are SKIPPED, never replayed.
"""

import pytest

from helpers import LOC

from repro.apps.micro import fire_and_forget
from repro.apps.registry import resolve_small
from repro.machine.cost import WorkRequest
from repro.runtime.actions import (
    Alloc,
    Footprint,
    ParallelFor,
    Spawn,
    TaskWait,
    Work,
)
from repro.runtime.api import Program
from repro.runtime.engine import engine_invocations
from repro.runtime.loops import LoopSpec, Schedule
from repro.staticc import verify_program


def _chunk_racy() -> Program:
    """Every iteration of a 2-thread static loop writes the same bytes."""

    def main():
        yield Alloc("acc", 64)
        yield ParallelFor(
            LoopSpec(
                iterations=4,
                chunk_size=1,
                num_threads=2,
                body=lambda i: WorkRequest(cycles=500),
                schedule=Schedule.STATIC,
                footprint=lambda s, e: ((), (Footprint("acc", 0, 64),)),
                loc=LOC,
            )
        )

    return Program("chunk_racy", main)


def _redundant_wait() -> Program:
    def main():
        yield Work(WorkRequest(cycles=100))
        yield TaskWait()

    return Program("redundant_wait", main)


class TestRaceVerdicts:
    def test_racy_is_confirmed_by_replay(self):
        _, report = verify_program(resolve_small("racy"))
        assert report.replays == 1
        (finding,) = [
            f
            for f in report.findings
            if f.diagnostic.rule_id == "static.race"
        ]
        assert finding.verdict == "CONFIRMED"
        assert finding.witness is not None
        assert finding.witness.kind == "task-race"
        assert "race.conflict fired" in finding.detail

    def test_racy_fixed_verifies_clean(self):
        _, report = verify_program(resolve_small("racy-fixed"))
        assert report.findings == ()
        assert report.replays == 0

    def test_chunk_race_confirmed_via_loop_team(self):
        _, report = verify_program(_chunk_racy())
        race = [
            f
            for f in report.findings
            if f.diagnostic.rule_id == "static.race"
        ]
        assert race
        assert all(f.witness.kind == "chunk-race" for f in race)
        assert all(f.witness.steps == () for f in race)
        assert any(f.verdict == "CONFIRMED" for f in race)

    def test_verify_uses_engine_only_for_replays(self):
        before = engine_invocations()
        _, report = verify_program(resolve_small("racy"))
        assert engine_invocations() - before == report.replays == 1


class TestJoinVerdicts:
    def test_fire_and_forget_children_confirmed(self):
        _, report = verify_program(fire_and_forget(depth=2))
        joins = [
            f
            for f in report.findings
            if f.diagnostic.rule_id == "static.join-anomaly"
        ]
        assert joins
        assert all(f.verdict == "CONFIRMED" for f in joins)
        assert all("completed later" in f.detail for f in joins)

    def test_redundant_taskwait_is_skipped_not_replayed(self):
        _, report = verify_program(_redundant_wait())
        skipped = [f for f in report.findings if f.verdict == "SKIPPED"]
        assert skipped
        assert report.replays == 0
        assert all(
            "no outstanding children" in f.diagnostic.message
            for f in skipped
        )


class TestBudget:
    def test_max_replays_caps_engine_runs(self):
        _, full = verify_program(fire_and_forget(depth=2))
        total = len(
            [
                f
                for f in full.findings
                if f.diagnostic.rule_id == "static.join-anomaly"
            ]
        )
        assert total > 1
        _, capped = verify_program(fire_and_forget(depth=2), max_replays=1)
        assert capped.replays == 1
        assert capped.confirmed == 1
        assert capped.skipped == total - 1
        assert all(
            "budget" in f.detail
            for f in capped.findings
            if f.verdict == "SKIPPED"
        )


class TestReport:
    def test_counts_and_to_dict(self):
        _, report = verify_program(resolve_small("racy"))
        assert report.confirmed == 1
        assert report.unwitnessed == 0
        payload = report.to_dict()
        assert payload["program"] == "racy"
        assert payload["verdicts"]["CONFIRMED"] == 1
        (finding,) = payload["findings"]
        assert finding["witness"]["kind"] == "task-race"
        assert finding["diagnostic"]["rule_id"] == "static.race"

    def test_rejects_single_thread(self):
        with pytest.raises(ValueError):
            verify_program(resolve_small("racy"), num_threads=1)
