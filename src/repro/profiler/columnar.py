"""Columnar event storage: numpy structured-array slabs per event kind.

The engine emits tens of thousands of events per run; materializing each
one as a frozen dataclass (and re-walking it with ``dataclasses.asdict``
at serialization time) dominated simulation wall-clock.  This module
stores events *columnarly* instead:

- Per event kind, fixed-width scalar fields (ids, times, cores, the
  seven counter values) live in **numpy structured-array slabs**: rows
  accumulate in a small Python tail list (appending one tuple per event)
  and spill into an immutable ``np.ndarray`` slab of ``SLAB_ROWS`` rows
  when full, so memory stays compact and append cost stays O(1).
- Variable-length payloads (task paths, footprint tuples, synced tid
  tuples) live in per-kind Python side columns, parallel to the scalar
  rows.
- Strings (source locations, definitions, labels, schedule names) are
  interned into one shared table and stored as integer ids — they
  repeat per task construct, not per task instance.
- Emission order across kinds is one extra ``int8`` column of kind ids;
  a per-kind cursor walk reconstructs the global order.

The row-oriented API is served on demand: :meth:`ColumnarEvents.to_events`
materializes the exact legacy event dataclasses (used by the graph
builder, lint passes and metrics — computed once, cached by the
:class:`~repro.profiler.trace.Trace`), and :meth:`json_lines` emits the
byte-identical ``json.dumps(event.to_dict())`` lines without building a
single event object.  Equivalence with the legacy object path is
enforced mechanically by ``tests/runtime/test_columnar_diff.py``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from ..machine.counters import CounterSet
from .events import (
    BookkeepingEvent,
    ChunkEvent,
    Event,
    FootprintTriple,
    FragmentEvent,
    LoopBeginEvent,
    LoopEndEvent,
    TaskCompleteEvent,
    TaskCreateEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
)

#: Rows per structured-array slab.  Small enough that the mutable tail
#: list stays cache-friendly, large enough that slab conversion cost
#: amortizes to ~nothing per event.
SLAB_ROWS = 4096

# Kind ids, in the order of profiler.events.EVENT_CLASSES.
KIND_TASK_CREATE = 0
KIND_FRAGMENT = 1
KIND_TASKWAIT_BEGIN = 2
KIND_TASKWAIT_END = 3
KIND_TASK_COMPLETE = 4
KIND_LOOP_BEGIN = 5
KIND_BOOKKEEPING = 6
KIND_CHUNK = 7
KIND_LOOP_END = 8

_NUM_KINDS = 9

_I8 = "<i8"
_COUNTER_COLS = [(f"c{i}", _I8) for i in range(7)]

#: Scalar dtypes per kind.  Field order here *is* the storage contract
#: the property tests pin; it deliberately mirrors the serialization
#: order of the legacy events so row reconstruction is a plain unpack.
KIND_DTYPES: tuple[np.dtype[Any], ...] = (
    np.dtype(
        [
            ("tid", _I8),
            ("parent_tid", _I8),  # -1 encodes None (the root task)
            ("time", _I8),
            ("core", _I8),
            ("creation_cycles", _I8),
            ("depth", _I8),
            ("loc", _I8),  # interned string id
            ("definition", _I8),
            ("label", _I8),
            ("inlined", "?"),
        ]
    ),
    np.dtype(
        [
            ("tid", _I8),
            ("seq", _I8),
            ("start", _I8),
            ("end", _I8),
            ("core", _I8),
            *_COUNTER_COLS,
        ]
    ),
    np.dtype([("tid", _I8), ("time", _I8), ("core", _I8), ("implicit", "?")]),
    np.dtype([("tid", _I8), ("time", _I8), ("core", _I8)]),
    np.dtype([("tid", _I8), ("time", _I8), ("core", _I8)]),
    np.dtype(
        [
            ("loop_id", _I8),
            ("loop_seq", _I8),
            ("starting_thread", _I8),
            ("time", _I8),
            ("iterations", _I8),
            ("schedule", _I8),  # interned string id
            ("chunk_size", _I8),  # -1 encodes None
            ("team", _I8),
            ("loc", _I8),
            ("definition", _I8),
            ("label", _I8),
        ]
    ),
    np.dtype(
        [
            ("loop_id", _I8),
            ("thread", _I8),
            ("core", _I8),
            ("start", _I8),
            ("end", _I8),
            ("got_chunk", "?"),
        ]
    ),
    np.dtype(
        [
            ("loop_id", _I8),
            ("chunk_seq", _I8),
            ("thread", _I8),
            ("iter_start", _I8),
            ("iter_end", _I8),
            ("start", _I8),
            ("end", _I8),
            ("core", _I8),
            *_COUNTER_COLS,
        ]
    ),
    np.dtype([("loop_id", _I8), ("time", _I8)]),
)

_ORDER_DTYPE = np.dtype("<i1")

_EMPTY_COUNTERS = (0, 0, 0, 0, 0, 0, 0)


class _ScalarBlock:
    """Scalar columns of one event kind: numpy slabs + a mutable tail."""

    __slots__ = ("dtype", "slab_rows", "tail", "slabs", "count")

    def __init__(self, dtype: np.dtype[Any], slab_rows: int) -> None:
        self.dtype = dtype
        self.slab_rows = slab_rows
        self.tail: list[tuple[Any, ...]] = []
        self.slabs: list[np.ndarray[Any, Any]] = []
        self.count = 0

    def append(self, row: tuple[Any, ...]) -> None:
        tail = self.tail
        tail.append(row)
        self.count += 1
        if len(tail) >= self.slab_rows:
            self.slabs.append(np.array(tail, dtype=self.dtype))
            self.tail = []

    def rows(self) -> list[tuple[Any, ...]]:
        """Every row as a Python tuple (bulk slab ``tolist`` + tail)."""
        out: list[tuple[Any, ...]] = []
        for slab in self.slabs:
            out.extend(slab.tolist())
        out.extend(self.tail)
        return out

    def column(self, name: str) -> np.ndarray[Any, Any]:
        """One full column as a numpy array (slabs plus tail)."""
        index = list(self.dtype.names or ()).index(name)
        parts = [slab[name] for slab in self.slabs]
        if self.tail:
            parts.append(
                np.array([row[index] for row in self.tail], dtype=self.dtype[name])
            )
        if not parts:
            return np.empty(0, dtype=self.dtype[name])
        return np.concatenate(parts)


class _OrderBlock:
    """The global emission-order column: one small int (kind id) per
    event.  Same slab discipline as :class:`_ScalarBlock`, but rows are
    bare ints — no per-event tuple allocation on the hot path."""

    __slots__ = ("slab_rows", "tail", "slabs", "count")

    def __init__(self, slab_rows: int) -> None:
        self.slab_rows = slab_rows
        self.tail: list[int] = []
        self.slabs: list[np.ndarray[Any, Any]] = []
        self.count = 0

    def append(self, kind: int) -> None:
        tail = self.tail
        tail.append(kind)
        self.count += 1
        if len(tail) >= self.slab_rows:
            self.slabs.append(np.array(tail, dtype=_ORDER_DTYPE))
            self.tail = []

    def rows(self) -> list[int]:
        out: list[int] = []
        for slab in self.slabs:
            out.extend(slab.tolist())
        out.extend(self.tail)
        return out


class ColumnarEvents:
    """All events of one run, stored column-wise (see module docstring)."""

    def __init__(self, slab_rows: int = SLAB_ROWS) -> None:
        if slab_rows < 1:
            raise ValueError("slab_rows must be at least 1")
        self.slab_rows = slab_rows
        self.blocks = tuple(
            _ScalarBlock(dtype, slab_rows) for dtype in KIND_DTYPES
        )
        self._order = _OrderBlock(slab_rows)
        # Variable-length side columns, parallel to the scalar rows.
        self._paths: list[tuple[int, ...]] = []  # task_create
        self._frag_reads: list[tuple[FootprintTriple, ...]] = []
        self._frag_writes: list[tuple[FootprintTriple, ...]] = []
        self._synced: list[tuple[int, ...]] = []  # taskwait_end
        self._chunk_reads: list[tuple[FootprintTriple, ...]] = []
        self._chunk_writes: list[tuple[FootprintTriple, ...]] = []
        # Shared string intern table.
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}

    def __len__(self) -> int:
        return self._order.count

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, text: str) -> int:
        sid = self._string_ids.get(text)
        if sid is None:
            sid = len(self._strings)
            self._string_ids[text] = sid
            self._strings.append(text)
        return sid

    # ------------------------------------------------------------------
    # Typed appends (the engine-facing hot path)
    # ------------------------------------------------------------------
    def append_task_create(
        self,
        tid: int,
        path: tuple[int, ...],
        parent_tid: Optional[int],
        time: int,
        core: int,
        creation_cycles: int,
        depth: int,
        loc: str,
        definition: str,
        label: str,
        inlined: bool,
    ) -> None:
        self.blocks[KIND_TASK_CREATE].append(
            (
                tid,
                -1 if parent_tid is None else parent_tid,
                time,
                core,
                creation_cycles,
                depth,
                self.intern(loc),
                self.intern(definition),
                self.intern(label),
                inlined,
            )
        )
        self._paths.append(path)
        self._order.append(KIND_TASK_CREATE)

    def append_fragment(
        self,
        tid: int,
        seq: int,
        start: int,
        end: int,
        core: int,
        counters: Optional[CounterSet],
        reads: tuple[FootprintTriple, ...],
        writes: tuple[FootprintTriple, ...],
    ) -> None:
        if counters is None:
            row = (tid, seq, start, end, core) + _EMPTY_COUNTERS
        else:
            # One flat tuple, fields in COUNTER_FIELDS order (no
            # as_tuple + concat: this is once per fragment).
            row = (
                tid,
                seq,
                start,
                end,
                core,
                counters.cycles,
                counters.compute_cycles,
                counters.stall_cycles,
                counters.l1_misses,
                counters.llc_misses,
                counters.remote_lines,
                counters.accesses,
            )
        self.blocks[KIND_FRAGMENT].append(row)
        self._frag_reads.append(reads)
        self._frag_writes.append(writes)
        self._order.append(KIND_FRAGMENT)

    def append_taskwait_begin(
        self, tid: int, time: int, core: int, implicit: bool
    ) -> None:
        self.blocks[KIND_TASKWAIT_BEGIN].append((tid, time, core, implicit))
        self._order.append(KIND_TASKWAIT_BEGIN)

    def append_taskwait_end(
        self, tid: int, time: int, core: int, synced_tids: tuple[int, ...]
    ) -> None:
        self.blocks[KIND_TASKWAIT_END].append((tid, time, core))
        self._synced.append(synced_tids)
        self._order.append(KIND_TASKWAIT_END)

    def append_task_complete(self, tid: int, time: int, core: int) -> None:
        self.blocks[KIND_TASK_COMPLETE].append((tid, time, core))
        self._order.append(KIND_TASK_COMPLETE)

    def append_loop_begin(
        self,
        loop_id: int,
        loop_seq: int,
        starting_thread: int,
        time: int,
        iterations: int,
        schedule: str,
        chunk_size: Optional[int],
        team: int,
        loc: str,
        definition: str,
        label: str,
    ) -> None:
        self.blocks[KIND_LOOP_BEGIN].append(
            (
                loop_id,
                loop_seq,
                starting_thread,
                time,
                iterations,
                self.intern(schedule),
                -1 if chunk_size is None else chunk_size,
                team,
                self.intern(loc),
                self.intern(definition),
                self.intern(label),
            )
        )
        self._order.append(KIND_LOOP_BEGIN)

    def append_bookkeeping(
        self,
        loop_id: int,
        thread: int,
        core: int,
        start: int,
        end: int,
        got_chunk: bool,
    ) -> None:
        self.blocks[KIND_BOOKKEEPING].append(
            (loop_id, thread, core, start, end, got_chunk)
        )
        self._order.append(KIND_BOOKKEEPING)

    def append_chunk(
        self,
        loop_id: int,
        chunk_seq: int,
        thread: int,
        iter_start: int,
        iter_end: int,
        start: int,
        end: int,
        core: int,
        counters: Optional[CounterSet],
        reads: tuple[FootprintTriple, ...],
        writes: tuple[FootprintTriple, ...],
    ) -> None:
        if counters is None:
            row = (
                loop_id, chunk_seq, thread, iter_start, iter_end,
                start, end, core,
            ) + _EMPTY_COUNTERS
        else:
            row = (
                loop_id,
                chunk_seq,
                thread,
                iter_start,
                iter_end,
                start,
                end,
                core,
                counters.cycles,
                counters.compute_cycles,
                counters.stall_cycles,
                counters.l1_misses,
                counters.llc_misses,
                counters.remote_lines,
                counters.accesses,
            )
        self.blocks[KIND_CHUNK].append(row)
        self._chunk_reads.append(reads)
        self._chunk_writes.append(writes)
        self._order.append(KIND_CHUNK)

    def append_loop_end(self, loop_id: int, time: int) -> None:
        self.blocks[KIND_LOOP_END].append((loop_id, time))
        self._order.append(KIND_LOOP_END)

    # ------------------------------------------------------------------
    # Generic append (row -> columns), for tests and tooling
    # ------------------------------------------------------------------
    def append_event(self, event: Event) -> None:
        """Columnarize one legacy event object (dispatch by type)."""
        appender = _GENERIC_APPEND.get(type(event))
        if appender is None:
            raise TypeError(f"unknown event type {type(event).__name__}")
        appender(self, event)

    def extend(self, events: Sequence[Event]) -> None:
        for event in events:
            self.append_event(event)

    # ------------------------------------------------------------------
    # Inspection (property tests, memory accounting)
    # ------------------------------------------------------------------
    def kind_count(self, kind: int) -> int:
        return self.blocks[kind].count

    def kind_column(self, kind: int, name: str) -> np.ndarray[Any, Any]:
        return self.blocks[kind].column(name)

    def num_slabs(self) -> int:
        return sum(len(block.slabs) for block in self.blocks) + len(
            self._order.slabs
        )

    def strings(self) -> tuple[str, ...]:
        return tuple(self._strings)

    # ------------------------------------------------------------------
    # Row materialization
    # ------------------------------------------------------------------
    def _walk(self) -> Iterator[tuple[int, int]]:
        """Yield ``(kind, per-kind row index)`` in emission order."""
        cursors = [0] * _NUM_KINDS
        for kind in self._order.rows():
            index = cursors[kind]
            cursors[kind] = index + 1
            yield kind, index

    def to_events(self) -> list[Event]:
        """Materialize every event as its legacy dataclass, in order."""
        rows = [block.rows() for block in self.blocks]
        strings = self._strings
        out: list[Event] = []
        push = out.append
        for kind, i in self._walk():
            row = rows[kind][i]
            if kind == KIND_TASK_CREATE:
                parent = row[1]
                push(
                    TaskCreateEvent(
                        tid=row[0],
                        path=self._paths[i],
                        parent_tid=None if parent < 0 else parent,
                        time=row[2],
                        core=row[3],
                        creation_cycles=row[4],
                        depth=row[5],
                        loc=strings[row[6]],
                        definition=strings[row[7]],
                        label=strings[row[8]],
                        inlined=row[9],
                    )
                )
            elif kind == KIND_FRAGMENT:
                push(
                    FragmentEvent(
                        tid=row[0],
                        seq=row[1],
                        start=row[2],
                        end=row[3],
                        core=row[4],
                        counters=CounterSet.from_values(*row[5:12]),
                        reads=self._frag_reads[i],
                        writes=self._frag_writes[i],
                    )
                )
            elif kind == KIND_TASKWAIT_BEGIN:
                push(
                    TaskwaitBeginEvent(
                        tid=row[0], time=row[1], core=row[2], implicit=row[3]
                    )
                )
            elif kind == KIND_TASKWAIT_END:
                push(
                    TaskwaitEndEvent(
                        tid=row[0],
                        time=row[1],
                        core=row[2],
                        synced_tids=self._synced[i],
                    )
                )
            elif kind == KIND_TASK_COMPLETE:
                push(TaskCompleteEvent(tid=row[0], time=row[1], core=row[2]))
            elif kind == KIND_LOOP_BEGIN:
                chunk_size = row[6]
                push(
                    LoopBeginEvent(
                        loop_id=row[0],
                        loop_seq=row[1],
                        starting_thread=row[2],
                        time=row[3],
                        iterations=row[4],
                        schedule=strings[row[5]],
                        chunk_size=None if chunk_size < 0 else chunk_size,
                        team=row[7],
                        loc=strings[row[8]],
                        definition=strings[row[9]],
                        label=strings[row[10]],
                    )
                )
            elif kind == KIND_BOOKKEEPING:
                push(
                    BookkeepingEvent(
                        loop_id=row[0],
                        thread=row[1],
                        core=row[2],
                        start=row[3],
                        end=row[4],
                        got_chunk=row[5],
                    )
                )
            elif kind == KIND_CHUNK:
                push(
                    ChunkEvent(
                        loop_id=row[0],
                        chunk_seq=row[1],
                        thread=row[2],
                        iter_start=row[3],
                        iter_end=row[4],
                        start=row[5],
                        end=row[6],
                        core=row[7],
                        counters=CounterSet.from_values(*row[8:15]),
                        reads=self._chunk_reads[i],
                        writes=self._chunk_writes[i],
                    )
                )
            else:
                push(LoopEndEvent(loop_id=row[0], time=row[1]))
        return out

    # ------------------------------------------------------------------
    # Zero-object JSONL serialization
    # ------------------------------------------------------------------
    def json_lines(self) -> list[str]:
        """Each event's ``json.dumps(event.to_dict())`` line, in order,
        built directly from the columns (no event objects).  Key order
        matches each legacy ``to_dict`` exactly — the differential
        harness asserts byte equality against the object path."""
        rows = [block.rows() for block in self.blocks]
        strings = self._strings
        dumps = json.dumps
        out: list[str] = []
        push = out.append
        for kind, i in self._walk():
            row = rows[kind][i]
            if kind == KIND_TASK_CREATE:
                parent = row[1]
                push(
                    dumps(
                        {
                            "tid": row[0],
                            "path": list(self._paths[i]),
                            "parent_tid": None if parent < 0 else parent,
                            "time": row[2],
                            "core": row[3],
                            "creation_cycles": row[4],
                            "depth": row[5],
                            "loc": strings[row[6]],
                            "definition": strings[row[7]],
                            "label": strings[row[8]],
                            "inlined": row[9],
                            "kind": "task_create",
                        }
                    )
                )
            elif kind == KIND_FRAGMENT:
                push(
                    dumps(
                        {
                            "kind": "fragment",
                            "tid": row[0],
                            "seq": row[1],
                            "start": row[2],
                            "end": row[3],
                            "core": row[4],
                            "counters": _counters_dict(row, 5),
                            "reads": [list(fp) for fp in self._frag_reads[i]],
                            "writes": [list(fp) for fp in self._frag_writes[i]],
                        }
                    )
                )
            elif kind == KIND_TASKWAIT_BEGIN:
                push(
                    dumps(
                        {
                            "tid": row[0],
                            "time": row[1],
                            "core": row[2],
                            "implicit": row[3],
                            "kind": "taskwait_begin",
                        }
                    )
                )
            elif kind == KIND_TASKWAIT_END:
                push(
                    dumps(
                        {
                            "tid": row[0],
                            "time": row[1],
                            "core": row[2],
                            "synced_tids": list(self._synced[i]),
                            "kind": "taskwait_end",
                        }
                    )
                )
            elif kind == KIND_TASK_COMPLETE:
                push(
                    dumps(
                        {
                            "tid": row[0],
                            "time": row[1],
                            "core": row[2],
                            "kind": "task_complete",
                        }
                    )
                )
            elif kind == KIND_LOOP_BEGIN:
                chunk_size = row[6]
                push(
                    dumps(
                        {
                            "loop_id": row[0],
                            "loop_seq": row[1],
                            "starting_thread": row[2],
                            "time": row[3],
                            "iterations": row[4],
                            "schedule": strings[row[5]],
                            "chunk_size": None if chunk_size < 0 else chunk_size,
                            "team": row[7],
                            "loc": strings[row[8]],
                            "definition": strings[row[9]],
                            "label": strings[row[10]],
                            "kind": "loop_begin",
                        }
                    )
                )
            elif kind == KIND_BOOKKEEPING:
                push(
                    dumps(
                        {
                            "loop_id": row[0],
                            "thread": row[1],
                            "core": row[2],
                            "start": row[3],
                            "end": row[4],
                            "got_chunk": row[5],
                            "kind": "bookkeeping",
                        }
                    )
                )
            elif kind == KIND_CHUNK:
                push(
                    dumps(
                        {
                            "kind": "chunk",
                            "loop_id": row[0],
                            "chunk_seq": row[1],
                            "thread": row[2],
                            "iter_start": row[3],
                            "iter_end": row[4],
                            "start": row[5],
                            "end": row[6],
                            "core": row[7],
                            "counters": _counters_dict(row, 8),
                            "reads": [list(fp) for fp in self._chunk_reads[i]],
                            "writes": [list(fp) for fp in self._chunk_writes[i]],
                        }
                    )
                )
            else:
                push(dumps({"loop_id": row[0], "time": row[1], "kind": "loop_end"}))
        return out


def _counters_dict(row: tuple[Any, ...], offset: int) -> dict[str, int]:
    """The ``CounterSet.to_dict`` mapping read straight off a scalar row."""
    return {
        "cycles": row[offset],
        "compute_cycles": row[offset + 1],
        "stall_cycles": row[offset + 2],
        "l1_misses": row[offset + 3],
        "llc_misses": row[offset + 4],
        "remote_lines": row[offset + 5],
        "accesses": row[offset + 6],
    }


def _append_task_create(c: "ColumnarEvents", e: TaskCreateEvent) -> None:
    c.append_task_create(
        e.tid,
        e.path,
        e.parent_tid,
        e.time,
        e.core,
        e.creation_cycles,
        e.depth,
        e.loc,
        e.definition,
        e.label,
        e.inlined,
    )


def _append_fragment(c: "ColumnarEvents", e: FragmentEvent) -> None:
    c.append_fragment(
        e.tid, e.seq, e.start, e.end, e.core, e.counters, e.reads, e.writes
    )


def _append_taskwait_begin(c: "ColumnarEvents", e: TaskwaitBeginEvent) -> None:
    c.append_taskwait_begin(e.tid, e.time, e.core, e.implicit)


def _append_taskwait_end(c: "ColumnarEvents", e: TaskwaitEndEvent) -> None:
    c.append_taskwait_end(e.tid, e.time, e.core, e.synced_tids)


def _append_task_complete(c: "ColumnarEvents", e: TaskCompleteEvent) -> None:
    c.append_task_complete(e.tid, e.time, e.core)


def _append_loop_begin(c: "ColumnarEvents", e: LoopBeginEvent) -> None:
    c.append_loop_begin(
        e.loop_id,
        e.loop_seq,
        e.starting_thread,
        e.time,
        e.iterations,
        e.schedule,
        e.chunk_size,
        e.team,
        e.loc,
        e.definition,
        e.label,
    )


def _append_bookkeeping(c: "ColumnarEvents", e: BookkeepingEvent) -> None:
    c.append_bookkeeping(
        e.loop_id, e.thread, e.core, e.start, e.end, e.got_chunk
    )


def _append_chunk(c: "ColumnarEvents", e: ChunkEvent) -> None:
    c.append_chunk(
        e.loop_id,
        e.chunk_seq,
        e.thread,
        e.iter_start,
        e.iter_end,
        e.start,
        e.end,
        e.core,
        e.counters,
        e.reads,
        e.writes,
    )


def _append_loop_end(c: "ColumnarEvents", e: LoopEndEvent) -> None:
    c.append_loop_end(e.loop_id, e.time)


_GENERIC_APPEND: dict[type, Callable[["ColumnarEvents", Any], None]] = {
    TaskCreateEvent: _append_task_create,
    FragmentEvent: _append_fragment,
    TaskwaitBeginEvent: _append_taskwait_begin,
    TaskwaitEndEvent: _append_taskwait_end,
    TaskCompleteEvent: _append_task_complete,
    LoopBeginEvent: _append_loop_begin,
    BookkeepingEvent: _append_bookkeeping,
    ChunkEvent: _append_chunk,
    LoopEndEvent: _append_loop_end,
}
