"""The per-run trace: metadata plus every grain event, with JSONL I/O."""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from .columnar import ColumnarEvents

from .events import (
    BookkeepingEvent,
    ChunkEvent,
    Event,
    FragmentEvent,
    LoopBeginEvent,
    LoopEndEvent,
    TaskCompleteEvent,
    TaskCreateEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
    event_from_dict,
)


@dataclass
class TraceMetadata:
    """Run provenance recorded alongside the events."""

    program: str = ""
    input_summary: str = ""
    flavor: str = ""
    num_threads: int = 1
    machine: str = ""
    frequency_hz: int = 2_100_000_000
    makespan_cycles: int = 0
    num_cores_total: int = 0
    cores_per_socket: int = 0
    num_numa_nodes: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TraceMetadata":
        return cls(**d)


class Trace:
    """All events of one profiled run, in emission order.

    A trace is backed either by a plain event list (manual construction,
    :meth:`loads_jsonl`) or — for engine-produced traces — by a
    :class:`~repro.profiler.columnar.ColumnarEvents` store.  The columnar
    backing is zero-copy for serialization (``dumps_jsonl`` renders the
    JSONL bytes straight from the columns) while the row-oriented API is
    served by materializing the legacy event objects once, on first use
    of ``.events`` or any index property.

    Index properties (``task_creates``, ``fragments_by_task``, ...) are
    built lazily and cached; appending events after reading an index is a
    programming error and raises.  Columnar-backed traces are append-only
    through their recorder: calling :meth:`append` on one raises.
    """

    def __init__(
        self,
        meta: TraceMetadata | None = None,
        columnar: "ColumnarEvents | None" = None,
    ) -> None:
        self.meta = meta or TraceMetadata()
        self._columnar = columnar
        self._events: list[Event] | None = [] if columnar is None else None
        self._frozen = False
        self._index: dict | None = None

    @property
    def columnar(self) -> "ColumnarEvents | None":
        """The columnar backing store, if this trace has one."""
        return self._columnar

    @property
    def events(self) -> list[Event]:
        """The events as legacy row objects (materialized once, cached)."""
        events = self._events
        if events is None:
            assert self._columnar is not None
            events = self._events = self._columnar.to_events()
        return events

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        if self._frozen:
            raise RuntimeError("trace already indexed; cannot append")
        if self._columnar is not None:
            raise RuntimeError(
                "columnar-backed trace: events are appended through its recorder"
            )
        assert self._events is not None
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        if self._events is None:
            assert self._columnar is not None
            return len(self._columnar)
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # Indexed access
    # ------------------------------------------------------------------
    def _ensure_index(self) -> dict:
        if self._index is None:
            self._frozen = True
            index = {
                "task_creates": {},
                "fragments": {},
                "taskwait_begins": {},
                "taskwait_ends": {},
                "completes": {},
                "loops": {},
                "chunks": {},
                "bookkeeping": {},
                "loop_ends": {},
            }
            for event in self.events:
                if isinstance(event, TaskCreateEvent):
                    index["task_creates"][event.tid] = event
                elif isinstance(event, FragmentEvent):
                    index["fragments"].setdefault(event.tid, []).append(event)
                elif isinstance(event, TaskwaitBeginEvent):
                    index["taskwait_begins"].setdefault(event.tid, []).append(event)
                elif isinstance(event, TaskwaitEndEvent):
                    index["taskwait_ends"].setdefault(event.tid, []).append(event)
                elif isinstance(event, TaskCompleteEvent):
                    index["completes"][event.tid] = event
                elif isinstance(event, LoopBeginEvent):
                    index["loops"][event.loop_id] = event
                elif isinstance(event, ChunkEvent):
                    index["chunks"].setdefault(event.loop_id, []).append(event)
                elif isinstance(event, BookkeepingEvent):
                    index["bookkeeping"].setdefault(event.loop_id, []).append(event)
                elif isinstance(event, LoopEndEvent):
                    index["loop_ends"][event.loop_id] = event
            self._index = index
        return self._index

    @property
    def task_creates(self) -> dict[int, TaskCreateEvent]:
        return self._ensure_index()["task_creates"]

    @property
    def fragments_by_task(self) -> dict[int, list[FragmentEvent]]:
        return self._ensure_index()["fragments"]

    @property
    def taskwait_begins(self) -> dict[int, list[TaskwaitBeginEvent]]:
        return self._ensure_index()["taskwait_begins"]

    @property
    def taskwait_ends(self) -> dict[int, list[TaskwaitEndEvent]]:
        return self._ensure_index()["taskwait_ends"]

    @property
    def completes(self) -> dict[int, TaskCompleteEvent]:
        return self._ensure_index()["completes"]

    @property
    def loops(self) -> dict[int, LoopBeginEvent]:
        return self._ensure_index()["loops"]

    @property
    def chunks_by_loop(self) -> dict[int, list[ChunkEvent]]:
        return self._ensure_index()["chunks"]

    @property
    def bookkeeping_by_loop(self) -> dict[int, list[BookkeepingEvent]]:
        return self._ensure_index()["bookkeeping"]

    @property
    def loop_ends(self) -> dict[int, LoopEndEvent]:
        return self._ensure_index()["loop_ends"]

    @property
    def num_tasks(self) -> int:
        return len(self.task_creates)

    @property
    def num_chunks(self) -> int:
        return sum(len(chunks) for chunks in self.chunks_by_loop.values())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dumps_jsonl(self) -> str:
        """Serialize as JSONL text: metadata line, then one event per line.

        The engine is deterministic, so two runs of the same program under
        the same configuration must produce byte-identical output here —
        the property the ``repro.exec`` cache and the golden-determinism
        suite both rest on.
        """
        lines = [json.dumps({"kind": "meta", **self.meta.to_dict()})]
        if self._columnar is not None:
            # Zero-object fast path: render straight from the columns.
            # Produces byte-identical output to the event-object path
            # below (asserted by the differential harness).
            lines.extend(self._columnar.json_lines())
        else:
            lines.extend(json.dumps(event.to_dict()) for event in self.events)
        return "\n".join(lines) + "\n"

    def dump_jsonl(self, path: str | Path) -> None:
        """Write metadata (first line) then one event per line."""
        Path(path).write_text(self.dumps_jsonl())

    @classmethod
    def loads_jsonl(cls, text: str) -> "Trace":
        """Parse JSONL text produced by :meth:`dumps_jsonl`."""
        trace: Trace | None = None
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if d.get("kind") == "meta":
                d.pop("kind")
                trace = cls(TraceMetadata.from_dict(d))
            else:
                if trace is None:
                    trace = cls()
                trace.append(event_from_dict(d))
        if trace is None:
            raise ValueError("empty trace text")
        return trace

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "Trace":
        path = Path(path)
        try:
            return cls.loads_jsonl(path.read_text())
        except ValueError:
            raise ValueError(f"empty trace file: {path}") from None
