"""OMPT-like event records.

Each record is a frozen dataclass with a ``kind`` tag and dict round-trip
for JSONL serialization.  Times are virtual cycles; ``core`` is the
executing core id (the affinity information of the paper's superset).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Optional

from ..machine.counters import CounterSet


@dataclass(frozen=True)
class TaskCreateEvent:
    """A task instance came into existence (root included, with
    ``parent_tid is None`` and zero creation cost)."""

    kind = "task_create"
    tid: int
    path: tuple[int, ...]
    parent_tid: Optional[int]
    time: int
    core: int
    creation_cycles: int
    depth: int
    loc: str = ""
    definition: str = ""
    label: str = ""
    inlined: bool = False

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        d["path"] = list(self.path)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TaskCreateEvent":
        d = dict(d)
        d.pop("kind", None)
        d["path"] = tuple(d["path"])
        return cls(**d)


# A recorded memory footprint: (region name, byte start, byte end).
FootprintTriple = tuple[str, int, int]


def _footprints_to_lists(fps: tuple[FootprintTriple, ...]) -> list[list]:
    return [[region, start, end] for region, start, end in fps]


def _footprints_from_lists(raw) -> tuple[FootprintTriple, ...]:
    return tuple((region, start, end) for region, start, end in raw or ())


@dataclass(frozen=True)
class FragmentEvent:
    """Execution of one task fragment: the span between two runtime events
    within a task, on a single core, with its counter deltas.

    ``reads``/``writes`` are the memory-region footprints the fragment's
    work segments declared — the payload the lint layer's happens-before
    race detector consumes."""

    kind = "fragment"
    tid: int
    seq: int
    start: int
    end: int
    core: int
    counters: CounterSet = field(default_factory=CounterSet)
    reads: tuple[FootprintTriple, ...] = ()
    writes: tuple[FootprintTriple, ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "tid": self.tid,
            "seq": self.seq,
            "start": self.start,
            "end": self.end,
            "core": self.core,
            "counters": self.counters.to_dict(),
            "reads": _footprints_to_lists(self.reads),
            "writes": _footprints_to_lists(self.writes),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FragmentEvent":
        return cls(
            tid=d["tid"],
            seq=d["seq"],
            start=d["start"],
            end=d["end"],
            core=d["core"],
            counters=CounterSet.from_dict(d["counters"]),
            reads=_footprints_from_lists(d.get("reads")),
            writes=_footprints_from_lists(d.get("writes")),
        )


@dataclass(frozen=True)
class TaskwaitBeginEvent:
    """``implicit=True`` marks the end-of-parallel-region barrier that
    synchronizes fire-and-forget descendants with the root task."""

    kind = "taskwait_begin"
    tid: int
    time: int
    core: int
    implicit: bool = False

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TaskwaitBeginEvent":
        d = dict(d)
        d.pop("kind", None)
        return cls(**d)


@dataclass(frozen=True)
class TaskwaitEndEvent:
    """``synced_tids`` lists the task ids whose completion this sync point
    consumed — the exact membership of the graph's join node."""

    kind = "taskwait_end"
    tid: int
    time: int
    core: int
    synced_tids: tuple[int, ...] = ()

    @property
    def children_synced(self) -> int:
        return len(self.synced_tids)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        d["synced_tids"] = list(self.synced_tids)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TaskwaitEndEvent":
        d = dict(d)
        d.pop("kind", None)
        d["synced_tids"] = tuple(d.get("synced_tids", ()))
        return cls(**d)


@dataclass(frozen=True)
class TaskCompleteEvent:
    kind = "task_complete"
    tid: int
    time: int
    core: int

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TaskCompleteEvent":
        d = dict(d)
        d.pop("kind", None)
        return cls(**d)


@dataclass(frozen=True)
class LoopBeginEvent:
    """A parallel for-loop instance started.

    ``loop_id`` is the dense runtime id; the schedule-independent chunk
    identity of Sec. 3.1 combines ``starting_thread`` + ``loop_seq`` (a
    per-starting-thread sequence counter) + each chunk's iteration range.
    """

    kind = "loop_begin"
    loop_id: int
    loop_seq: int
    starting_thread: int
    time: int
    iterations: int
    schedule: str
    chunk_size: Optional[int]
    team: int
    loc: str = ""
    definition: str = ""
    label: str = ""

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LoopBeginEvent":
        d = dict(d)
        d.pop("kind", None)
        return cls(**d)


@dataclass(frozen=True)
class BookkeepingEvent:
    """One chunk-dispatch attempt by a team thread ("computation performed
    by threads to divide the iteration space and assign iterations to
    themselves in chunks")."""

    kind = "bookkeeping"
    loop_id: int
    thread: int  # team-relative thread id
    core: int
    start: int
    end: int
    got_chunk: bool

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "BookkeepingEvent":
        d = dict(d)
        d.pop("kind", None)
        return cls(**d)


@dataclass(frozen=True)
class ChunkEvent:
    """Execution of one chunk grain: iterations [iter_start, iter_end)."""

    kind = "chunk"
    loop_id: int
    chunk_seq: int  # dispatch order within the loop
    thread: int  # team-relative thread id
    iter_start: int
    iter_end: int
    start: int
    end: int
    core: int
    counters: CounterSet = field(default_factory=CounterSet)
    reads: tuple[FootprintTriple, ...] = ()
    writes: tuple[FootprintTriple, ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "loop_id": self.loop_id,
            "chunk_seq": self.chunk_seq,
            "thread": self.thread,
            "iter_start": self.iter_start,
            "iter_end": self.iter_end,
            "start": self.start,
            "end": self.end,
            "core": self.core,
            "counters": self.counters.to_dict(),
            "reads": _footprints_to_lists(self.reads),
            "writes": _footprints_to_lists(self.writes),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkEvent":
        return cls(
            loop_id=d["loop_id"],
            chunk_seq=d["chunk_seq"],
            thread=d["thread"],
            iter_start=d["iter_start"],
            iter_end=d["iter_end"],
            start=d["start"],
            end=d["end"],
            core=d["core"],
            counters=CounterSet.from_dict(d["counters"]),
            reads=_footprints_from_lists(d.get("reads")),
            writes=_footprints_from_lists(d.get("writes")),
        )


@dataclass(frozen=True)
class LoopEndEvent:
    kind = "loop_end"
    loop_id: int
    time: int

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LoopEndEvent":
        d = dict(d)
        d.pop("kind", None)
        return cls(**d)


Event = (
    TaskCreateEvent
    | FragmentEvent
    | TaskwaitBeginEvent
    | TaskwaitEndEvent
    | TaskCompleteEvent
    | LoopBeginEvent
    | BookkeepingEvent
    | ChunkEvent
    | LoopEndEvent
)

EVENT_CLASSES = {
    cls.kind: cls
    for cls in (
        TaskCreateEvent,
        FragmentEvent,
        TaskwaitBeginEvent,
        TaskwaitEndEvent,
        TaskCompleteEvent,
        LoopBeginEvent,
        BookkeepingEvent,
        ChunkEvent,
        LoopEndEvent,
    )
}


def event_from_dict(d: dict) -> Event:
    """Reconstruct any event from its dict form (JSONL loading)."""
    try:
        cls = EVENT_CLASSES[d["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind {d.get('kind')!r}") from None
    return cls.from_dict(d)
