"""The recorder the engine notifies at every grain event.

``overhead_cycles_per_event`` models the profiler's measurement cost: the
engine charges it to the notifying core at each event, letting us verify
the paper's "< 2.5% overhead" claim for our substitute (see
``tests/profiler/test_overhead.py``).  It defaults to zero so profiled and
unprofiled runs are cycle-identical unless the study asks otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import Event
from .trace import Trace, TraceMetadata


@dataclass(frozen=True)
class ProfilerConfig:
    enabled: bool = True
    overhead_cycles_per_event: int = 0


class Recorder:
    """Accumulates events into a :class:`Trace`."""

    def __init__(self, config: ProfilerConfig | None = None) -> None:
        self.config = config or ProfilerConfig()
        self.trace = Trace()
        self.events_recorded = 0

    def emit(self, event: Event) -> int:
        """Record one event; returns the cycles of profiling overhead the
        engine must charge to the emitting core."""
        if not self.config.enabled:
            return 0
        self.trace.append(event)
        self.events_recorded += 1
        return self.config.overhead_cycles_per_event

    def finalize(self, meta: TraceMetadata) -> Trace:
        self.trace.meta = meta
        return self.trace
