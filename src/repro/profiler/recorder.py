"""The recorder the engine notifies at every grain event.

``overhead_cycles_per_event`` models the profiler's measurement cost: the
engine charges it to the notifying core at each event, letting us verify
the paper's "< 2.5% overhead" claim for our substitute (see
``tests/profiler/test_overhead.py``).  It defaults to zero so profiled and
unprofiled runs are cycle-identical unless the study asks otherwise.

The engine calls the *typed* per-kind methods (``task_create``,
``fragment``, ...), which write field values straight into the columnar
store without constructing an event object.  With ``columnar=False`` the
same methods build the legacy frozen event dataclasses instead — that is
the reference path the differential harness compares against, byte for
byte.  The generic :meth:`Recorder.emit` remains for tooling and tests
that already hold an event object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machine.counters import CounterSet
from .columnar import ColumnarEvents
from .events import (
    BookkeepingEvent,
    ChunkEvent,
    Event,
    FootprintTriple,
    FragmentEvent,
    LoopBeginEvent,
    LoopEndEvent,
    TaskCompleteEvent,
    TaskCreateEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
)
from .trace import Trace, TraceMetadata


@dataclass(frozen=True)
class ProfilerConfig:
    enabled: bool = True
    overhead_cycles_per_event: int = 0
    #: Store events column-wise (the fast path).  ``False`` selects the
    #: legacy per-event-object path; both serialize byte-identically.
    columnar: bool = True


class Recorder:
    """Accumulates events into a :class:`Trace`."""

    def __init__(self, config: ProfilerConfig | None = None) -> None:
        self.config = config or ProfilerConfig()
        self._enabled = self.config.enabled
        self._overhead = self.config.overhead_cycles_per_event
        self._columnar: ColumnarEvents | None = (
            ColumnarEvents() if self.config.columnar else None
        )
        self.trace = Trace(columnar=self._columnar)
        self._row_count = 0

    @property
    def events_recorded(self) -> int:
        """Total events recorded so far.  On the columnar path this is
        the store's own row count — the typed emit methods do not touch a
        separate counter per event."""
        if self._columnar is not None:
            return len(self._columnar)
        return self._row_count

    def emit(self, event: Event) -> int:
        """Record one already-built event; returns the cycles of profiling
        overhead the engine must charge to the emitting core."""
        if not self._enabled:
            return 0
        if self._columnar is not None:
            self._columnar.append_event(event)
        else:
            self.trace.append(event)
            self._row_count += 1
        return self._overhead

    # ------------------------------------------------------------------
    # Typed emit methods (the engine hot path; no event objects built
    # on the columnar path)
    # ------------------------------------------------------------------
    def task_create(
        self,
        tid: int,
        path: tuple[int, ...],
        parent_tid: Optional[int],
        time: int,
        core: int,
        creation_cycles: int,
        depth: int,
        loc: str,
        definition: str,
        label: str,
        inlined: bool,
    ) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_task_create(
                tid,
                path,
                parent_tid,
                time,
                core,
                creation_cycles,
                depth,
                loc,
                definition,
                label,
                inlined,
            )
        else:
            self.trace.append(
                TaskCreateEvent(
                    tid=tid,
                    path=path,
                    parent_tid=parent_tid,
                    time=time,
                    core=core,
                    creation_cycles=creation_cycles,
                    depth=depth,
                    loc=loc,
                    definition=definition,
                    label=label,
                    inlined=inlined,
                )
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def fragment(
        self,
        tid: int,
        seq: int,
        start: int,
        end: int,
        core: int,
        counters: Optional[CounterSet],
        reads: tuple[FootprintTriple, ...],
        writes: tuple[FootprintTriple, ...],
    ) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_fragment(tid, seq, start, end, core, counters, reads, writes)
        else:
            self.trace.append(
                FragmentEvent(
                    tid=tid,
                    seq=seq,
                    start=start,
                    end=end,
                    core=core,
                    counters=counters if counters is not None else CounterSet(),
                    reads=reads,
                    writes=writes,
                )
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def taskwait_begin(self, tid: int, time: int, core: int, implicit: bool) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_taskwait_begin(tid, time, core, implicit)
        else:
            self.trace.append(
                TaskwaitBeginEvent(tid=tid, time=time, core=core, implicit=implicit)
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def taskwait_end(
        self, tid: int, time: int, core: int, synced_tids: tuple[int, ...]
    ) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_taskwait_end(tid, time, core, synced_tids)
        else:
            self.trace.append(
                TaskwaitEndEvent(
                    tid=tid, time=time, core=core, synced_tids=synced_tids
                )
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def task_complete(self, tid: int, time: int, core: int) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_task_complete(tid, time, core)
        else:
            self.trace.append(TaskCompleteEvent(tid=tid, time=time, core=core))
        if c is None:
            self._row_count += 1
        return self._overhead

    def loop_begin(
        self,
        loop_id: int,
        loop_seq: int,
        starting_thread: int,
        time: int,
        iterations: int,
        schedule: str,
        chunk_size: Optional[int],
        team: int,
        loc: str,
        definition: str,
        label: str,
    ) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_loop_begin(
                loop_id,
                loop_seq,
                starting_thread,
                time,
                iterations,
                schedule,
                chunk_size,
                team,
                loc,
                definition,
                label,
            )
        else:
            self.trace.append(
                LoopBeginEvent(
                    loop_id=loop_id,
                    loop_seq=loop_seq,
                    starting_thread=starting_thread,
                    time=time,
                    iterations=iterations,
                    schedule=schedule,
                    chunk_size=chunk_size,
                    team=team,
                    loc=loc,
                    definition=definition,
                    label=label,
                )
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def bookkeeping(
        self,
        loop_id: int,
        thread: int,
        core: int,
        start: int,
        end: int,
        got_chunk: bool,
    ) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_bookkeeping(loop_id, thread, core, start, end, got_chunk)
        else:
            self.trace.append(
                BookkeepingEvent(
                    loop_id=loop_id,
                    thread=thread,
                    core=core,
                    start=start,
                    end=end,
                    got_chunk=got_chunk,
                )
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def chunk(
        self,
        loop_id: int,
        chunk_seq: int,
        thread: int,
        iter_start: int,
        iter_end: int,
        start: int,
        end: int,
        core: int,
        counters: Optional[CounterSet],
        reads: tuple[FootprintTriple, ...],
        writes: tuple[FootprintTriple, ...],
    ) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_chunk(
                loop_id,
                chunk_seq,
                thread,
                iter_start,
                iter_end,
                start,
                end,
                core,
                counters,
                reads,
                writes,
            )
        else:
            self.trace.append(
                ChunkEvent(
                    loop_id=loop_id,
                    chunk_seq=chunk_seq,
                    thread=thread,
                    iter_start=iter_start,
                    iter_end=iter_end,
                    start=start,
                    end=end,
                    core=core,
                    counters=counters if counters is not None else CounterSet(),
                    reads=reads,
                    writes=writes,
                )
            )
        if c is None:
            self._row_count += 1
        return self._overhead

    def loop_end(self, loop_id: int, time: int) -> int:
        if not self._enabled:
            return 0
        c = self._columnar
        if c is not None:
            c.append_loop_end(loop_id, time)
        else:
            self.trace.append(LoopEndEvent(loop_id=loop_id, time=time))
        if c is None:
            self._row_count += 1
        return self._overhead

    def finalize(self, meta: TraceMetadata) -> Trace:
        self.trace.meta = meta
        return self.trace
