"""MIR-profiler stand-in: OMPT-like grain events and traces.

The paper's MIR profiler "collects raw performance information with low
overhead from hardware performance counters during grain events notified by
the MIR runtime system ... based on a superset of the OMPT interface [16]
that includes parallel for-loop chunk events and affinity information"
(Sec. 4.2).  This package defines those event records (:mod:`.events`),
the per-run :class:`~repro.profiler.trace.Trace` container with JSONL
round-tripping (:mod:`.trace`), and the :class:`~repro.profiler.recorder.
Recorder` the engine notifies (:mod:`.recorder`).

Grain-graph construction consumes only the :class:`Trace`; any profiler
producing the same records could feed it — "the grain graph visualization
works irrespective of the profiling method".
"""

from .events import (
    TaskCreateEvent,
    FragmentEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
    TaskCompleteEvent,
    LoopBeginEvent,
    BookkeepingEvent,
    ChunkEvent,
    LoopEndEvent,
    Event,
)
from .trace import Trace, TraceMetadata
from .recorder import Recorder, ProfilerConfig

__all__ = [
    "TaskCreateEvent",
    "FragmentEvent",
    "TaskwaitBeginEvent",
    "TaskwaitEndEvent",
    "TaskCompleteEvent",
    "LoopBeginEvent",
    "BookkeepingEvent",
    "ChunkEvent",
    "LoopEndEvent",
    "Event",
    "Trace",
    "TraceMetadata",
    "Recorder",
    "ProfilerConfig",
]
