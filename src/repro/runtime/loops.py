"""Parallel for-loop specifications and chunk dispatch.

OpenMP distributes loop iterations to threads in *chunks*; the time a
thread spends obtaining its next chunk is *book-keeping* (turquoise nodes
in Fig. 3g of the paper).  This module implements the three classic
schedules.  The paper's methodology converts ``schedule(static)`` loops to
``schedule(runtime)`` with ``OMP_SCHEDULE=static`` so chunks are dispatched
from inside the runtime and thus observable — our dispatchers are always
inside the runtime, so every chunk is observable by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..common import SourceLocation, UNKNOWN_LOCATION
from ..machine.cost import Access, WorkRequest


class Schedule(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class LoopSpec:
    """One ``parallel for`` construct.

    ``body(i)`` returns the :class:`WorkRequest` of iteration ``i``; the
    runtime executes each chunk as a single measured segment whose request
    merges its iterations.  ``num_threads`` caps the team (the Freqmine fix
    in Sec. 4.3.4 sets it to 7).
    """

    iterations: int
    body: Callable[[int], WorkRequest]
    schedule: Schedule = Schedule.STATIC
    chunk_size: Optional[int] = None
    num_threads: Optional[int] = None
    loc: SourceLocation = UNKNOWN_LOCATION
    label: str = ""
    definition: str = ""
    # Optional memory footprint of a chunk: ``footprint(start, end)``
    # returns ``(reads, writes)`` footprint specs for iterations
    # ``[start, end)``; recorded on the chunk event for the race linter.
    footprint: Optional[Callable[[int, int], tuple[tuple, tuple]]] = None

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iteration count must be non-negative")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk size must be at least 1")
        if self.num_threads is not None and self.num_threads < 1:
            raise ValueError("num_threads must be at least 1")

    def definition_key(self) -> str:
        return self.definition or str(self.loc)

    def iteration_request(self, i: int) -> WorkRequest:
        """The declared work of iteration ``i`` (bounds-checked) — the
        unit the static analyzer expands loops at: chunking is a
        schedule artifact, the per-iteration structure is the logic."""
        if not 0 <= i < self.iterations:
            raise IndexError(
                f"iteration {i} outside [0, {self.iterations})"
            )
        return self.body(i)

    def iteration_footprints(self, i: int) -> tuple[tuple, tuple]:
        """``(reads, writes)`` footprint specs of iteration ``i`` alone,
        or empty tuples when the loop declares no footprint."""
        if self.footprint is None:
            return ((), ())
        reads, writes = self.footprint(i, i + 1)
        return tuple(reads), tuple(writes)

    def chunk_count_upper(self, team_size: int) -> int:
        """Upper bound on the number of dispatched chunks for this loop
        under any schedule behavior with the given team."""
        n = self.iterations
        if n == 0:
            return 0
        if self.schedule is Schedule.STATIC:
            if self.chunk_size is None:
                return min(team_size, n)
            return -(-n // self.chunk_size)
        # Dynamic and guided grabs each cover at least (chunk_size or 1)
        # iterations, except possibly the final partial grab.
        return -(-n // (self.chunk_size or 1))

    def static_chunk_plan(self, team_size: int) -> list[list[tuple[int, int]]]:
        """The deterministic ``schedule(static)`` assignment: per-thread
        chunk lists in ascending iteration order.  Exposed for the static
        chunk-imbalance analysis; matches :class:`StaticDispatcher`."""
        dispatcher = StaticDispatcher(self, team_size)
        return [list(reversed(queue)) for queue in dispatcher._queues]

    def merged_request(self, start: int, end: int) -> WorkRequest:
        """Aggregate the work of iterations ``[start, end)`` into one
        request: cycles add up; accesses merge per (region, pattern)."""
        cycles = 0
        merged: dict[tuple[int, float], int] = {}
        for i in range(start, end):
            request = self.body(i)
            cycles += request.cycles
            for access in request.accesses:
                key = (access.region_id, access.pattern)
                merged[key] = merged.get(key, 0) + access.nbytes
        accesses = tuple(
            Access(region_id=rid, nbytes=nbytes, pattern=pattern)
            for (rid, pattern), nbytes in sorted(merged.items())
        )
        return WorkRequest(cycles=cycles, accesses=accesses, label=self.label)


class ChunkDispatcher:
    """Hands out chunks to team threads; one instance per loop execution."""

    def __init__(self, spec: LoopSpec, team_size: int) -> None:
        if team_size < 1:
            raise ValueError("team must have at least one thread")
        self.spec = spec
        self.team_size = team_size

    def next_chunk(self, thread: int) -> Optional[tuple[int, int]]:
        """The next ``[start, end)`` chunk for team-relative ``thread``,
        or None when the thread's share of the iteration space is done."""
        raise NotImplementedError

    @staticmethod
    def create(spec: LoopSpec, team_size: int) -> "ChunkDispatcher":
        if spec.schedule is Schedule.STATIC:
            return StaticDispatcher(spec, team_size)
        if spec.schedule is Schedule.DYNAMIC:
            return DynamicDispatcher(spec, team_size)
        if spec.schedule is Schedule.GUIDED:
            return GuidedDispatcher(spec, team_size)
        raise ValueError(f"unknown schedule {spec.schedule}")


class StaticDispatcher(ChunkDispatcher):
    """``schedule(static[, chunk])``.

    With a chunk size, chunk ``k`` goes to thread ``k % team``; without
    one, the space splits into one contiguous block per thread.
    """

    def __init__(self, spec: LoopSpec, team_size: int) -> None:
        super().__init__(spec, team_size)
        self._queues: list[list[tuple[int, int]]] = [[] for _ in range(team_size)]
        n = spec.iterations
        if spec.chunk_size is not None:
            c = spec.chunk_size
            k = 0
            for start in range(0, n, c):
                self._queues[k % team_size].append((start, min(start + c, n)))
                k += 1
        else:
            base, extra = divmod(n, team_size)
            start = 0
            for thread in range(team_size):
                size = base + (1 if thread < extra else 0)
                if size:
                    self._queues[thread].append((start, start + size))
                start += size
        for queue in self._queues:
            queue.reverse()  # pop() yields chunks in ascending order

    def next_chunk(self, thread: int) -> Optional[tuple[int, int]]:
        queue = self._queues[thread]
        return queue.pop() if queue else None


class DynamicDispatcher(ChunkDispatcher):
    """``schedule(dynamic[, chunk])``: a shared counter; default chunk 1."""

    def __init__(self, spec: LoopSpec, team_size: int) -> None:
        super().__init__(spec, team_size)
        self._next = 0
        self._chunk = spec.chunk_size or 1

    def next_chunk(self, thread: int) -> Optional[tuple[int, int]]:
        if self._next >= self.spec.iterations:
            return None
        start = self._next
        self._next = min(start + self._chunk, self.spec.iterations)
        return (start, self._next)


class GuidedDispatcher(ChunkDispatcher):
    """``schedule(guided[, chunk])``: exponentially decreasing chunks,
    ``max(chunk, ceil(remaining / (2 * team)))`` per grab."""

    def __init__(self, spec: LoopSpec, team_size: int) -> None:
        super().__init__(spec, team_size)
        self._next = 0
        self._min_chunk = spec.chunk_size or 1

    def next_chunk(self, thread: int) -> Optional[tuple[int, int]]:
        n = self.spec.iterations
        if self._next >= n:
            return None
        remaining = n - self._next
        size = max(self._min_chunk, -(-remaining // (2 * self.team_size)))
        start = self._next
        self._next = min(start + size, n)
        return (start, self._next)
