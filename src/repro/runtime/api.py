"""User-facing entry point for running simulated OpenMP programs.

A :class:`Program` is a named root-task body; :func:`run_program` executes
it under a runtime flavor on a machine at a thread count and returns the
:class:`~repro.runtime.engine.RunResult` with the profiler trace.

Example::

    from repro.runtime import Program, run_program, MIR
    from repro.runtime.actions import Work
    from repro.machine.cost import WorkRequest

    def main():
        yield Work(WorkRequest(cycles=1000))

    result = run_program(Program("hello", main), flavor=MIR, num_threads=4)
    print(result.makespan_cycles)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Sequence

from ..machine import Machine
from ..profiler.recorder import ProfilerConfig
from .engine import Engine, RunResult
from .flavors import MIR, RuntimeFlavor

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..staticc.model import StaticModel


@dataclass(frozen=True)
class Program:
    """A runnable simulated OpenMP program.

    ``body`` is a zero-argument callable returning the root-task generator
    (the implicit task of the parallel region).  ``input_summary`` is
    recorded in trace metadata for provenance.
    """

    name: str
    body: Callable[[], Generator]
    input_summary: str = ""

    def expand(self) -> "StaticModel":
        """Symbolically expand this program into its static
        series-parallel model (:mod:`repro.staticc`) — structure,
        work/span, footprints — without running the engine."""
        from ..staticc.expansion import expand_program

        return expand_program(self)


def run_program(
    program: Program,
    flavor: RuntimeFlavor = MIR,
    num_threads: int = 1,
    machine: Machine | None = None,
    profiler: ProfilerConfig | None = None,
    replay_steps: Sequence[tuple[str, int]] | None = None,
) -> RunResult:
    """Execute ``program`` and return its run result with trace.

    A fresh machine (cold caches, empty memory map) is built per run unless
    one is supplied; supplying a used machine is rejected to prevent
    accidental state leakage between runs.

    ``replay_steps`` switches the engine into deterministic forced-schedule
    replay: a sequence of ``(task grain id, worker)`` dispatches executed
    in order instead of the flavor's scheduling policy (see
    :mod:`repro.runtime.sched.replay` and ``grain-graphs verify``).
    """
    if machine is None:
        machine = Machine.paper_testbed()
    elif machine.used:
        raise ValueError(
            "machine already hosted a run (caches/contention state is "
            "warm); pass machine.fresh() or None"
        )
    machine.used = True
    engine = Engine(machine, flavor, num_threads, profiler, replay_steps)
    return engine.run(
        program.body, program_name=program.name, input_summary=program.input_summary
    )
