"""Actions a task body may yield to the runtime.

Every interaction between application code and the runtime is a yielded
action, which makes each one an observable OMPT-like event boundary — the
exact granularity the MIR profiler instruments in the paper.  Between two
yields the task executes one *fragment* of one grain.

Usage sketch::

    def fib(n, depth, out):
        def body():
            if depth >= CUTOFF or n < 2:
                yield Work(WorkRequest(cycles=serial_cost(n)))
                out.value = fib_serial(n)
                return
            a, b = Holder(), Holder()
            yield Spawn(fib(n - 1, depth + 1, a), loc=LOC_FIB)
            yield Spawn(fib(n - 2, depth + 1, b), loc=LOC_FIB)
            yield TaskWait()
            yield Work(WorkRequest(cycles=ADD_COST))
            out.value = a.value + b.value
        return body
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..common import SourceLocation, UNKNOWN_LOCATION
from ..machine.cost import WorkRequest
from ..machine.memory import Placement
from .loops import LoopSpec

# A task body is a zero-argument callable returning a generator of actions.
# Yields actions, receives handles back (TaskHandle from Spawn, MemoryRegion
# from Alloc) — hence the loose send/yield types.
BodyFactory = Callable[[], Generator[Any, Any, Any]]


@dataclass(frozen=True)
class Footprint:
    """Byte range ``[start, end)`` of a named region touched by a segment.

    ``end=None`` means "to the end of the region" (resolved against the
    allocation when known, else an open upper bound).  Footprints are pure
    metadata for the lint layer's happens-before race detector; they do not
    influence the cost model (use :class:`~repro.machine.cost.Access` for
    that).
    """

    region: str
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("footprint start must be non-negative")
        if self.end is not None and self.end < self.start:
            raise ValueError("footprint end precedes start")


# A footprint may be given as a bare region name (the whole region).
FootprintSpec = Footprint | str


def normalize_footprints(
    specs: tuple[FootprintSpec, ...],
    region_sizes: Optional[dict[str, int]] = None,
) -> tuple[tuple[str, int, int], ...]:
    """Resolve footprint specs to ``(region, start, end)`` triples.

    Unbounded ends resolve to the region's allocated size when known,
    otherwise to :data:`WHOLE_REGION` (a practically-infinite bound so
    whole-region shorthands conflict with any range).
    """
    out: list[tuple[str, int, int]] = []
    for spec in specs:
        if isinstance(spec, str):
            spec = Footprint(spec)
        end = spec.end
        if end is None:
            end = (region_sizes or {}).get(spec.region, WHOLE_REGION)
        out.append((spec.region, spec.start, end))
    return tuple(out)


WHOLE_REGION = 2**62  # sentinel upper bound for unbounded footprints


@dataclass(frozen=True)
class Work:
    """Execute application computation described by ``request``.

    ``reads``/``writes`` declare the memory-region footprints the segment
    touches (region name, or :class:`Footprint` for a byte range); the
    engine records them on the enclosing fragment so the lint layer can
    check logically-parallel grains for conflicting accesses.
    """

    request: WorkRequest
    reads: tuple[FootprintSpec, ...] = ()
    writes: tuple[FootprintSpec, ...] = ()


@dataclass(frozen=True)
class Spawn:
    """Create a child task (``#pragma omp task``).

    ``yield Spawn(...)`` evaluates to a :class:`~repro.runtime.task.TaskHandle`.

    ``if_clause=False`` corresponds to ``if(0)``: the child is undeferred
    and executes immediately in the parent's context (still a grain).
    ``definition`` groups instances of the same task construct for
    per-definition summaries (defaults to ``str(loc)``).
    """

    body: BodyFactory
    loc: SourceLocation = UNKNOWN_LOCATION
    label: str = ""
    definition: str = ""
    if_clause: bool = True

    def definition_key(self) -> str:
        return self.definition or str(self.loc)


@dataclass(frozen=True)
class TaskWait:
    """Synchronize with all children spawned so far (``#pragma omp taskwait``)."""


@dataclass(frozen=True)
class ParallelFor:
    """Run a parallel for-loop (``#pragma omp parallel for``).

    Only the implicit (root) task may issue this, and only while no other
    tasks are in flight — nested parallelism is unsupported, as in the
    paper's profiler.
    """

    loop: LoopSpec


@dataclass(frozen=True)
class Alloc:
    """Allocate a memory region; ``yield Alloc(...)`` evaluates to the
    :class:`~repro.machine.memory.MemoryRegion`.

    Allocation records a whole-region write footprint on the allocating
    fragment (first-touch initialization), so later readers must be
    ordered after the allocator; pass ``record_write=False`` for
    reservation-only allocations.
    """

    name: str
    size_bytes: int
    placement: Optional[Placement] = None
    record_write: bool = True


Action = Work | Spawn | TaskWait | ParallelFor | Alloc
