"""Task schedulers.

Two policies from the paper:

- :class:`WorkStealingScheduler` — per-worker deques in the style of
  Chase & Lev [8]: owners push and pop at the front (newest first, keeping
  children local to their creator), thieves steal from the back (oldest
  first).  This is MIR's and ICC's policy.
- :class:`CentralQueueScheduler` — one shared FIFO, GCC-libgomp style;
  Sec. 4.3.5 shows it scattering Strassen's sibling tasks across sockets.
"""

from .base import Scheduler, PopResult
from .workstealing import WorkStealingScheduler
from .centralqueue import CentralQueueScheduler
from .replay import ReplayScheduler

__all__ = [
    "Scheduler",
    "PopResult",
    "WorkStealingScheduler",
    "CentralQueueScheduler",
    "ReplayScheduler",
]


def make_scheduler(kind: str, num_workers: int) -> Scheduler:
    """Factory used by runtime flavors."""
    if kind == "workstealing":
        return WorkStealingScheduler(num_workers)
    if kind == "central":
        return CentralQueueScheduler(num_workers)
    raise ValueError(f"unknown scheduler kind {kind!r}")
