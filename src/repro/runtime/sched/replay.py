"""Forced-schedule replay scheduler.

Executes a *witness schedule* — a total order of task dispatches, each
pinned to a worker — instead of a scheduling policy.  The verifier
(:mod:`repro.staticc.verify`) synthesizes such schedules from static
findings and replays them through the real engine, sanitizer-style: the
dynamic trace either exhibits the predicted behavior (CONFIRMED) or the
finding stays UNWITNESSED.

Discipline:

- **Resumptions first.**  Tasks re-enqueued after a taskwait (state
  ``READY``) are not dispatches — the witness only constrains *first*
  executions — so any worker picks them up immediately, FIFO.
- **Witness head next.**  A spawned task whose grain id is the first
  not-yet-dispatched witness step runs only on the step's worker; other
  workers report no work and sleep until the engine's replay wake-all
  re-polls them.
- **FIFO fallback.**  Tasks outside the witness (including the empty
  witness, used for chunk-conflict replays where only the loop schedule
  matters) run in global FIFO order on whichever worker asks.

Steps for tasks the engine *inlines* (``if(0)`` spawns never reach a
scheduler) are retired via :meth:`ReplayScheduler.notify_inline` so the
queue cannot stall behind them.  Determinism is inherited from the
engine's single-threaded event heap plus these FIFO/total-order rules —
replaying one witness twice yields byte-identical traces.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from ...core.ids import task_gid
from ..task import TaskInstance, TaskState
from .base import PopKind, PopResult, Scheduler


class ReplayScheduler(Scheduler):
    def __init__(
        self, steps: Sequence[tuple[str, int]], num_workers: int
    ) -> None:
        super().__init__(num_workers)
        for gid, worker in steps:
            if not 0 <= worker < num_workers:
                raise ValueError(
                    f"witness step {gid!r} targets worker {worker} "
                    f"outside 0..{num_workers - 1}"
                )
        seen: set[str] = set()
        for gid, _ in steps:
            if gid in seen:
                raise ValueError(f"witness dispatches {gid!r} twice")
            seen.add(gid)
        self._order: deque[tuple[str, int]] = deque(steps)
        # Remaining not-yet-dispatched witness gids -> assigned worker.
        self._expected: dict[str, int] = dict(self._order)
        self._spawned: dict[str, TaskInstance] = {}
        self._resumed: deque[TaskInstance] = deque()
        self._fallback: deque[TaskInstance] = deque()

    @property
    def kind_name(self) -> str:
        return "replay"

    # -- engine hooks ---------------------------------------------------
    def push(self, task: TaskInstance, worker: int) -> None:
        if task.state is TaskState.READY:
            # A taskwait resumption, not a dispatch: unconstrained.
            self._resumed.append(task)
            return
        gid = task_gid(task.path)
        if gid in self._expected:
            self._spawned[gid] = task
        else:
            self._fallback.append(task)

    def notify_inline(self, path: tuple[int, ...]) -> None:
        """An ``if(0)`` child executed inline (never enqueued): retire
        its witness step so the schedule cannot stall behind it."""
        self._expected.pop(task_gid(path), None)

    def pop(self, worker: int) -> Optional[PopResult]:
        if self._resumed:
            return PopResult(self._resumed.popleft(), PopKind.LOCAL)
        # Drop retired heads (dispatched already, or executed inline).
        order = self._order
        while order and order[0][0] not in self._expected:
            order.popleft()
        if order:
            gid, wid = order[0]
            if wid == worker and gid in self._spawned:
                order.popleft()
                del self._expected[gid]
                return PopResult(self._spawned.pop(gid), PopKind.LOCAL)
            # The head belongs elsewhere (or is not spawned yet): this
            # worker may still drain non-witness work.
        if self._fallback:
            return PopResult(self._fallback.popleft(), PopKind.LOCAL)
        return None

    def queue_length(self, worker: int) -> int:
        return 0  # inline cutoffs are disabled under replay

    def total_pending(self) -> int:
        return len(self._spawned) + len(self._resumed) + len(self._fallback)
