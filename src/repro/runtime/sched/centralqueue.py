"""Central shared-queue scheduler (GCC libgomp style).

One FIFO serves every worker.  Whichever worker happens to poll next takes
the oldest task, so consecutive siblings land on whichever cores are free —
typically far apart — which is exactly the scatter pathology Fig. 11d shows
for Strassen under "a central queue-based task scheduler".
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..task import TaskInstance
from .base import PopKind, PopResult, Scheduler


class CentralQueueScheduler(Scheduler):
    def __init__(self, num_workers: int) -> None:
        super().__init__(num_workers)
        self._queue: deque[TaskInstance] = deque()

    @property
    def kind_name(self) -> str:
        return "central"

    def push(self, task: TaskInstance, worker: int) -> None:
        self._queue.append(task)

    def pop(self, worker: int) -> Optional[PopResult]:
        if not self._queue:
            return None
        return PopResult(self._queue.popleft(), PopKind.LOCAL)

    def queue_length(self, worker: int) -> int:
        # The shared queue is everyone's queue.
        return len(self._queue)

    def total_pending(self) -> int:
        return len(self._queue)
