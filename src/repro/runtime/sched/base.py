"""Scheduler interface shared by the policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..task import TaskInstance


class PopKind(enum.Enum):
    LOCAL = "local"  # from the worker's own queue (or head of central queue)
    STEAL = "steal"  # taken from another worker's queue


@dataclass(frozen=True)
class PopResult:
    """A dequeued task plus how it was obtained (steals cost more and are
    recorded so scatter analyses can reason about migration)."""

    task: TaskInstance
    kind: PopKind
    victim: Optional[int] = None  # worker the task was stolen from


class Scheduler:
    """Abstract task scheduler.

    The engine is single-threaded, so implementations need no locking;
    *determinism* is the correctness property: identical push/pop sequences
    must yield identical results.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers

    def push(self, task: TaskInstance, worker: int) -> None:
        """Enqueue a task made ready by ``worker``."""
        raise NotImplementedError

    def pop(self, worker: int) -> Optional[PopResult]:
        """Obtain work for ``worker``: own/shared queue first, then steal."""
        raise NotImplementedError

    def queue_length(self, worker: int) -> int:
        """Tasks currently queued for ``worker`` (ICC's internal cutoff
        inspects this)."""
        raise NotImplementedError

    def total_pending(self) -> int:
        """Tasks queued anywhere (GCC's 64 x nthreads throttle inspects
        this)."""
        raise NotImplementedError

    @property
    def kind_name(self) -> str:
        raise NotImplementedError
