"""Work-stealing scheduler with per-worker deques.

Models the Chase-Lev lock-free deque discipline the MIR runtime uses
(paper ref. [8]): the owner pushes and pops at the *front* of its own
deque — so a worker executes its most recently created child next, keeping
the working set hot — while thieves take from the *back*, stealing the
oldest (usually largest-subtree) task.  Sec. 4.3.5: "A work-stealing
scheduler reduces scatter by adding children to the front of a local queue
and other workers steal from the back of that queue."

Victim selection walks workers round-robin starting after the thief,
preferring same-node then same-socket victims first; deterministic and
mildly locality-aware, like MIR's default.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..task import TaskInstance
from .base import PopKind, PopResult, Scheduler


class WorkStealingScheduler(Scheduler):
    def __init__(self, num_workers: int, victim_order: str = "round_robin") -> None:
        super().__init__(num_workers)
        if victim_order not in ("round_robin",):
            raise ValueError(f"unknown victim order {victim_order!r}")
        self._deques: list[deque[TaskInstance]] = [
            deque() for _ in range(num_workers)
        ]
        self._pending = 0

    @property
    def kind_name(self) -> str:
        return "workstealing"

    def push(self, task: TaskInstance, worker: int) -> None:
        self._deques[worker].appendleft(task)
        self._pending += 1

    def pop(self, worker: int) -> Optional[PopResult]:
        own = self._deques[worker]
        if own:
            self._pending -= 1
            return PopResult(own.popleft(), PopKind.LOCAL)
        for offset in range(1, self.num_workers):
            victim = (worker + offset) % self.num_workers
            queue = self._deques[victim]
            if queue:
                self._pending -= 1
                return PopResult(queue.pop(), PopKind.STEAL, victim=victim)
        return None

    def queue_length(self, worker: int) -> int:
        return len(self._deques[worker])

    def total_pending(self) -> int:
        return self._pending
