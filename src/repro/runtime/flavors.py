"""Runtime flavors: the GCC / ICC / MIR systems the paper compares.

A flavor bundles a scheduler policy, per-operation overheads, and an
internal-cutoff (inlining) policy.  The policies follow what the paper
documents:

- **ICC** "overcomes the faulty cutoff in the original program and performs
  well by using an internal cutoff [20] to limit the number of the tasks" —
  a *queue-size based* cutoff found by the authors in the 15.0.1 sources
  (Sec. 4.3.3): once the spawning worker's queue is full, new tasks execute
  undeferred.
- **GCC** "fares poorly despite limiting task creation at 64 times the
  number of threads [34]" — a global pending-task throttle; libgomp also
  schedules from a central, lock-protected queue, whose per-operation cost
  grows with the team size.
- **MIR** "uses a state-of-the-art work-stealing scheduler with lock-free
  task queues [8]" and defers every task.

Overhead magnitudes are calibration constants (cycles); their *ordering*
(MIR cheapest, GCC's central queue most contended) is what reproduces the
relative Fig. 1 shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RuntimeFlavor:
    """Configuration of one simulated OpenMP runtime system."""

    name: str
    scheduler: str  # "workstealing" | "central"

    # Task-path overheads (cycles).
    task_create_cycles: int = 800
    inline_create_cycles: int = 80  # undeferred tasks skip the enqueue
    dispatch_cycles: int = 200  # successful local pop
    steal_cycles: int = 1200  # successful steal (CAS + cold deque line)
    taskwait_cycles: int = 250  # entering/leaving taskwait
    resume_cycles: int = 150  # re-dispatching a task after its wait
    task_finish_cycles: int = 150
    wake_latency_cycles: int = 400  # sleeping worker wake-up

    # Central-queue lock contention: extra cycles per queue operation per
    # additional team member (zero for distributed deques).
    queue_contention_cycles: int = 0
    # Central-queue lock hold time: while non-zero, every task enqueue and
    # dequeue serializes through one lock held this many cycles — the
    # convoy that collapses libgomp's throughput under task floods.
    queue_lock_hold_cycles: int = 0

    # Loop-path overheads (cycles).
    static_dispatch_cycles: int = 40
    dynamic_dispatch_cycles: int = 120
    barrier_cycles: int = 1800

    # Internal cutoffs.  ``inline_queue_threshold``: execute undeferred when
    # the spawning worker's queue has this many tasks (ICC).
    # ``throttle_per_thread``: execute undeferred when total pending tasks
    # exceed this times the team size (GCC).  ``None`` disables a policy.
    inline_queue_threshold: int | None = None
    throttle_per_thread: int | None = None

    def with_scheduler(self, scheduler: str) -> "RuntimeFlavor":
        """The same flavor with a different scheduler (used by the
        Strassen central-queue ablation, Fig. 11 c/d).  Switching to the
        central queue implies its lock: a shared FIFO without one does
        not exist, so a default hold time is applied."""
        lock = self.queue_lock_hold_cycles
        if scheduler == "central" and lock == 0:
            lock = 120
        return replace(
            self,
            scheduler=scheduler,
            queue_lock_hold_cycles=lock,
            name=f"{self.name}+{scheduler}",
        )

    def should_inline(self, own_queue_len: int, total_pending: int, team: int) -> bool:
        """Decide undeferred execution for a new task (internal cutoffs)."""
        if self.inline_queue_threshold is not None:
            if own_queue_len >= self.inline_queue_threshold:
                return True
        if self.throttle_per_thread is not None:
            if total_pending >= self.throttle_per_thread * team:
                return True
        return False


MIR = RuntimeFlavor(
    name="MIR",
    scheduler="workstealing",
    task_create_cycles=600,
    dispatch_cycles=120,
    queue_contention_cycles=12,
    steal_cycles=1000,
    taskwait_cycles=200,
    resume_cycles=120,
    task_finish_cycles=120,
    dynamic_dispatch_cycles=100,
    barrier_cycles=1500,
)

ICC = RuntimeFlavor(
    name="ICC",
    scheduler="workstealing",
    task_create_cycles=900,
    dispatch_cycles=180,
    queue_contention_cycles=8,
    steal_cycles=1400,
    taskwait_cycles=260,
    resume_cycles=160,
    task_finish_cycles=160,
    dynamic_dispatch_cycles=120,
    barrier_cycles=2000,
    # The "queue-size based internal cutoff" the authors found in the
    # 15.0.1 sources: once the ready pool holds a few tasks per thread,
    # new tasks execute undeferred.  GCC's throttle is the same mechanism
    # with a far laxer 64 x threads bound, which is why it "fares poorly
    # despite limiting task creation".
    throttle_per_thread=2,
)

GCC = RuntimeFlavor(
    name="GCC",
    scheduler="central",
    task_create_cycles=1400,
    dispatch_cycles=420,
    steal_cycles=1400,  # unused by the central queue
    taskwait_cycles=350,
    resume_cycles=250,
    task_finish_cycles=250,
    queue_contention_cycles=10,
    queue_lock_hold_cycles=120,
    dynamic_dispatch_cycles=150,
    barrier_cycles=2500,
    throttle_per_thread=64,
)

FLAVORS: dict[str, RuntimeFlavor] = {f.name: f for f in (MIR, ICC, GCC)}


def flavor_by_name(name: str) -> RuntimeFlavor:
    try:
        return FLAVORS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown flavor {name!r}; available: {sorted(FLAVORS)}"
        ) from None
