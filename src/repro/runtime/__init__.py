"""Simulated OpenMP 3.0 runtime system.

The substitute for the GCC/ICC/MIR runtimes of the paper (see DESIGN.md).
Programs are written against :mod:`.api`: task bodies are Python generators
that *yield* runtime actions (:mod:`.actions`) — work segments, task
spawns, taskwaits, parallel for-loops, allocations.  A deterministic
discrete-event engine (:mod:`.engine`) executes them on a simulated
:class:`~repro.machine.Machine`, scheduling tasks with a work-stealing or
central-queue scheduler (:mod:`.sched`) under a runtime *flavor*
(:mod:`.flavors`) that sets overheads and internal-cutoff policies
matching the systems the paper compares.

Nested parallelism (a parallel for inside a task that is not the implicit
task, or nested parallel regions) is unsupported, mirroring the paper's
profiler which excluded 352.nab for the same reason.
"""

from .actions import Work, Spawn, TaskWait, ParallelFor, Alloc
from .task import TaskInstance, TaskHandle
from .loops import LoopSpec, Schedule
from .flavors import RuntimeFlavor, MIR, GCC, ICC, FLAVORS, flavor_by_name
from .engine import Engine, RunResult
from .api import Program, run_program

__all__ = [
    "Work",
    "Spawn",
    "TaskWait",
    "ParallelFor",
    "Alloc",
    "TaskInstance",
    "TaskHandle",
    "LoopSpec",
    "Schedule",
    "RuntimeFlavor",
    "MIR",
    "GCC",
    "ICC",
    "FLAVORS",
    "flavor_by_name",
    "Engine",
    "RunResult",
    "Program",
    "run_program",
]
