"""Task instances and schedule-independent identification.

Grains corresponding to tasks are "identified using path enumeration which
relies on the static nature of the graph for task-based programs"
(Sec. 3.1): a task's path is its parent's path extended with its creation
index.  For a deterministic program and fixed input the path is identical
across machine sizes and schedules, which is what allows per-grain *work
deviation* to join a 1-core run against a 48-core run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..common import SourceLocation, UNKNOWN_LOCATION

TaskPath = tuple[int, ...]

ROOT_PATH: TaskPath = (0,)


class TaskState(enum.Enum):
    CREATED = "created"  # enqueued, never run
    RUNNING = "running"  # generator being driven on a worker
    WAITING = "waiting"  # suspended in taskwait
    BLOCKED_INLINE = "blocked_inline"  # parked behind an undeferred child
    IN_LOOP = "in_loop"  # suspended while its parallel for-loop executes
    READY = "ready"  # unblocked, re-enqueued, awaiting dispatch
    COMPLETED = "completed"


class TaskInstance:
    """One dynamic task (the implicit task included).

    ``tid`` is a dense runtime id (creation order); ``path`` the
    schedule-independent id.  ``outstanding`` counts direct children not
    yet completed — OpenMP ``taskwait`` waits for direct children only.
    """

    __slots__ = (
        "tid",
        "path",
        "parent",
        "depth",
        "generator",
        "state",
        "loc",
        "label",
        "definition",
        "created_at",
        "created_by_core",
        "creation_cycles",
        "inlined",
        "outstanding",
        "children_spawned",
        "fragment_seq",
        "last_worker",
        "handle",
        # Engine bookkeeping.
        "pending_value",  # value the next generator.send() delivers
        "inline_parent",  # parent blocked on this undeferred child
        "resume_reason",  # "taskwait" | "inline" when state is READY
        "frag_start",  # open fragment start time (None when no fragment)
        "frag_counters",  # open fragment CounterSet
        "frag_reads",  # open fragment read footprints (region, start, end)
        "frag_writes",  # open fragment write footprints
        # Synchronization accounting.  A task that ends with outstanding
        # children (fire-and-forget) re-parents them to its own
        # sync_parent; orphans ultimately sync at the root's implicit
        # end-of-region barrier, as in OpenMP.
        "sync_parent",  # live ancestor whose sync point will consume us
        "live_children",  # direct (or adopted) children not yet completed
        "to_sync",  # tids completed but not yet consumed by a sync point
        "in_implicit_barrier",  # root only: generator exhausted, waiting
    )

    def __init__(
        self,
        tid: int,
        path: TaskPath,
        parent: Optional["TaskInstance"],
        generator: Generator,
        loc: SourceLocation | str = UNKNOWN_LOCATION,
        label: str = "",
        definition: str = "",
        created_at: int = 0,
        created_by_core: int = 0,
        creation_cycles: int = 0,
        inlined: bool = False,
    ) -> None:
        self.tid = tid
        self.path = path
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.generator = generator
        self.state = TaskState.CREATED
        self.loc = loc
        self.label = label
        self.definition = definition or str(loc)
        self.created_at = created_at
        self.created_by_core = created_by_core
        self.creation_cycles = creation_cycles
        self.inlined = inlined
        self.outstanding = 0
        self.children_spawned = 0
        self.fragment_seq = 0
        self.last_worker = created_by_core
        self.handle = TaskHandle(self)
        self.pending_value = None
        self.inline_parent: Optional["TaskInstance"] = None
        self.resume_reason = ""
        self.frag_start: Optional[int] = None
        self.frag_counters = None
        self.frag_reads: list[tuple[str, int, int]] = []
        self.frag_writes: list[tuple[str, int, int]] = []
        self.sync_parent: Optional["TaskInstance"] = parent
        self.live_children: set["TaskInstance"] = set()
        self.to_sync: list[int] = []
        self.in_implicit_barrier = False

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def child_path(self) -> TaskPath:
        """Path for the next child (call before incrementing the count)."""
        return self.path + (self.children_spawned,)

    def next_fragment_seq(self) -> int:
        seq = self.fragment_seq
        self.fragment_seq += 1
        return seq

    def path_str(self) -> str:
        return "/".join(str(i) for i in self.path)

    def __repr__(self) -> str:
        return (
            f"TaskInstance(tid={self.tid}, path={self.path_str()}, "
            f"state={self.state.value}, def={self.definition!r})"
        )


@dataclass
class TaskHandle:
    """What ``yield Spawn(...)`` evaluates to in the parent body.

    ``result`` may be set by the child body through its own handle or a
    shared holder; the runtime never touches it (tasks communicate through
    shared memory in OpenMP).
    """

    task: TaskInstance
    result: Any = None

    @property
    def completed(self) -> bool:
        return self.task.state is TaskState.COMPLETED
