"""Deterministic discrete-event execution engine.

The engine plays the role of the OpenMP runtime + operating system + CPU:
it drives task generators on simulated workers (one per core), advances an
integer virtual clock through a single event heap, charges flavor-specific
runtime overheads, evaluates work segments against the machine's cost
model, and notifies the profiler recorder at every OMPT-like boundary.

Determinism: the heap orders events by ``(time, sequence)``; sequence
numbers are allocated in scheduling order, so identical programs produce
identical traces — the property that lets work deviation join runs at
different thread counts by grain identity.

Execution model highlights (rationale in DESIGN.md):

- **Deferred spawn**: child enqueued on the creating worker's queue; a
  sleeping worker near the creator is woken.
- **Undeferred (inlined) spawn** — internal cutoffs or ``if(0)``: the
  parent blocks on that specific child and the child starts immediately on
  the same worker (work-first execution); when the child completes, the
  parent is re-enqueued at the completing worker's queue front, so it
  typically resumes right away on that worker.  The child remains a fully
  observable grain, which is why "the graph structure is robust under
  runtime system optimizations such as task inlining" holds here too.
- **Taskwait**: the task suspends if direct children are outstanding; the
  worker moves on to other work.  The completion of the last child
  re-enqueues the parent on the completing worker.
- **Parallel for**: only the root (implicit) task may issue one, with no
  tasks in flight — nested parallelism is unsupported exactly like the
  paper's profiler.  Team threads alternate book-keeping and chunk
  execution until the dispatcher runs dry, then join a barrier.

Hot-path structure: events flow through the recorder's *typed* emit
methods straight into the columnar store (no event objects), the action
dispatch in ``_drive`` is a single class-keyed dict lookup instead of an
``isinstance`` chain, per-flavor overhead constants are hoisted to
instance attributes at construction, fragment counters alias the first
work outcome's :class:`~repro.machine.counters.CounterSet` instead of
copying into a fresh accumulator, and spawn-site source locations are
stringified once per distinct location.  None of this changes a single
emitted byte — ``tests/runtime/test_columnar_diff.py`` holds the engine
to the golden digests pinned from the pre-refactor code.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence

from ..common import SourceLocation
from ..machine import Machine
from ..profiler.recorder import Recorder, ProfilerConfig
from ..profiler.trace import Trace, TraceMetadata
from .actions import (
    Alloc,
    ParallelFor,
    Spawn,
    TaskWait,
    Work,
    normalize_footprints,
)
from .flavors import RuntimeFlavor
from .loops import ChunkDispatcher, LoopSpec, Schedule
from .sched import make_scheduler
from .sched.base import PopKind
from .sched.replay import ReplayScheduler
from .task import ROOT_PATH, TaskInstance, TaskState

from ..obs import registry as _obs


_invocations = 0


def engine_invocations() -> int:
    """Process-global count of :meth:`Engine.run` calls.

    The study-execution layer (:mod:`repro.exec`) relies on never
    simulating the same point twice; its regression tests read this
    counter before and after an operation to prove a cache hit skipped
    the engine entirely.
    """
    return _invocations


class NestedParallelismError(RuntimeError):
    """Raised for constructs the profiler does not support (Sec. 4.1)."""


class DeadlockError(RuntimeError):
    """The event heap drained before the root task completed."""


@dataclass
class RunStats:
    tasks_created: int = 0
    tasks_inlined: int = 0
    steals: int = 0
    local_pops: int = 0
    chunks_executed: int = 0
    loops_executed: int = 0
    events_emitted: int = 0
    fragments: int = 0


@dataclass
class RunResult:
    """Outcome of one simulated program run."""

    trace: Trace
    makespan_cycles: int
    stats: RunStats
    flavor: str
    num_threads: int
    machine: Machine

    @property
    def makespan_seconds(self) -> float:
        return self.machine.seconds(self.makespan_cycles)


class _Worker:
    __slots__ = ("wid", "sleeping", "current", "find_cb")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.sleeping = True
        self.current: Optional[TaskInstance] = None
        # Prebound "go find work" heap callback (one closure per worker
        # for the engine lifetime, not one per task completion).
        self.find_cb: Callable[[int], None] = lambda _t: None


class _LoopExec:
    """State of one in-flight parallel for-loop."""

    __slots__ = (
        "loop_id",
        "spec",
        "dispatcher",
        "team_workers",
        "remaining",
        "chunk_seq",
        "issuing_task",
        "issuing_worker",
        "lock_free_at",  # dynamic/guided chunk counter serialization
    )

    def __init__(
        self,
        loop_id: int,
        spec: LoopSpec,
        dispatcher: ChunkDispatcher,
        team_workers: list[int],
        issuing_task: TaskInstance,
        issuing_worker: int,
    ) -> None:
        self.loop_id = loop_id
        self.spec = spec
        self.dispatcher = dispatcher
        self.team_workers = team_workers
        self.remaining = len(team_workers)
        self.chunk_seq = 0
        self.issuing_task = issuing_task
        self.issuing_worker = issuing_worker
        self.lock_free_at = 0


BodyFactory = Callable[[], Generator[Any, Any, Any]]


class Engine:
    """One engine instance executes one program run."""

    def __init__(
        self,
        machine: Machine,
        flavor: RuntimeFlavor,
        num_threads: int,
        profiler: ProfilerConfig | None = None,
        replay_steps: Optional[Sequence[tuple[str, int]]] = None,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be at least 1")
        if num_threads > machine.num_cores:
            raise ValueError(
                f"num_threads {num_threads} exceeds machine cores "
                f"{machine.num_cores}"
            )
        self.machine = machine
        self.flavor = flavor
        self.num_threads = num_threads
        # Forced-schedule replay (verifier witness playback): the policy
        # scheduler is swapped for a ReplayScheduler, inline cutoffs are
        # disabled, and wakes become wake-all so the pinned-to-a-worker
        # witness head can never be stranded on a sleeping worker.  With
        # replay_steps=None nothing below behaves differently — the
        # golden-digest differential tests hold the normal path to that.
        self._replay_sched: Optional[ReplayScheduler] = None
        if replay_steps is None:
            self.scheduler = make_scheduler(flavor.scheduler, num_threads)
        else:
            self._replay_sched = ReplayScheduler(replay_steps, num_threads)
            self.scheduler = self._replay_sched
        self.recorder = Recorder(profiler)
        self.workers = [_Worker(w) for w in range(num_threads)]
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0
        self._next_tid = 0
        self._next_loop_id = 0
        self._loop_seq_by_thread: dict[int, int] = {}
        self._sleeping: set[int] = set(range(num_threads))
        self._root: Optional[TaskInstance] = None
        self._queue_lock_free_at = 0  # central-queue lock (convoy model)
        self._region_sizes: dict[str, int] = {}  # footprint normalization
        self._makespan: Optional[int] = None
        self.stats = RunStats()
        self._ran = False
        # Flavor overhead constants, hoisted off the per-event paths.
        # ``_queue_contention`` folds the per-contender multiply done at
        # every enqueue/dequeue: ``queue_contention_cycles * (threads-1)``.
        self._queue_contention = flavor.queue_contention_cycles * (num_threads - 1)
        self._queue_lock_hold = flavor.queue_lock_hold_cycles
        self._task_finish_cycles = flavor.task_finish_cycles
        self._taskwait_cycles = flavor.taskwait_cycles
        self._wake_latency = flavor.wake_latency_cycles
        # str(SourceLocation) per distinct spawn site, not per spawn.
        self._loc_strs: dict[SourceLocation, str] = {}
        for worker in self.workers:
            worker.find_cb = (
                lambda t, w=worker: self._find_work(w, t)  # noqa: B008
            )
        # Deterministic wake order per pusher, precomputed: the ranking
        # _wake_one used to evaluate through topology calls on every
        # wake — (NUMA distance, core-id distance, id) — is a total
        # order, so a rank table preserves the choice exactly.
        topo = machine.topology
        self._wake_rank: list[list[int]] = []
        for pusher in range(num_threads):
            order = sorted(
                range(num_threads),
                key=lambda wid: (
                    topo.core_distance(pusher, wid),  # noqa: B023
                    abs(wid - pusher),  # noqa: B023
                    wid,
                ),
            )
            rank = [0] * num_threads
            for position, wid in enumerate(order):
                rank[wid] = position
            self._wake_rank.append(rank)
        # Class-keyed action dispatch (flattened isinstance chain); every
        # handler consumes the worker's turn, so _drive returns after one.
        self._dispatch: dict[
            type,
            Callable[[_Worker, TaskInstance, int, Any], None],
        ] = {
            Work: self._do_work,
            Spawn: self._do_spawn,
            TaskWait: self._do_taskwait,
            ParallelFor: self._do_parallel_for,
        }

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(
        self,
        body_factory: BodyFactory,
        program_name: str = "",
        input_summary: str = "",
    ) -> RunResult:
        with _obs.span("engine.run"):
            result = self._run(body_factory, program_name, input_summary)
        _obs.count("engine.invocations")
        for stat_name, value in vars(result.stats).items():
            _obs.count(f"engine.{stat_name}", value)
        return result

    def _run(
        self,
        body_factory: BodyFactory,
        program_name: str = "",
        input_summary: str = "",
    ) -> RunResult:
        if self._ran:
            raise RuntimeError("an Engine instance runs exactly one program")
        self._ran = True
        global _invocations
        _invocations += 1
        root = self._make_task(
            parent=None, generator=body_factory(), created_at=0, core=0,
            creation_cycles=0, loc="<root>", definition="<root>", label="root",
            inlined=False,
        )
        self._root = root
        self.recorder.task_create(
            root.tid, root.path, None, 0, 0, 0, 0,
            str(root.loc), root.definition, root.label, False,
        )
        self._sleeping.discard(0)
        self.workers[0].sleeping = False
        self._at(0, lambda t: self._begin_task(self.workers[0], root, t))
        while self._heap:
            time, _, fn = heapq.heappop(self._heap)
            fn(time)
        if self._makespan is None:
            raise DeadlockError(self._deadlock_report())
        meta = TraceMetadata(
            program=program_name,
            input_summary=input_summary,
            flavor=self.flavor.name,
            num_threads=self.num_threads,
            machine=self.machine.topology.name,
            frequency_hz=self.machine.topology.frequency_hz,
            makespan_cycles=self._makespan,
            num_cores_total=self.machine.num_cores,
            cores_per_socket=self.machine.topology.cores_per_socket,
            num_numa_nodes=self.machine.topology.num_nodes,
        )
        self.stats.events_emitted = self.recorder.events_recorded
        trace = self.recorder.finalize(meta)
        return RunResult(
            trace=trace,
            makespan_cycles=self._makespan,
            stats=self.stats,
            flavor=self.flavor.name,
            num_threads=self.num_threads,
            machine=self.machine,
        )

    # ------------------------------------------------------------------
    # Event-heap plumbing
    # ------------------------------------------------------------------
    def _at(self, time: int, fn: Callable[[int], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def _queue_lock_cycles(self, now: int) -> int:
        """Serialize an enqueue/dequeue through the central-queue lock.

        Returns the wait-plus-hold cycles charged to the operation.  With
        the heap processing events in time order, ``_queue_lock_free_at``
        advances monotonically, so the convoy is deterministic: under a
        task flood the lock saturates and per-op cost grows with the
        number of contending workers — libgomp's collapse.
        """
        hold = self._queue_lock_hold
        if hold == 0:
            return 0
        start = max(now, self._queue_lock_free_at)
        self._queue_lock_free_at = start + hold
        return (start - now) + hold

    def _loc_str(self, loc: SourceLocation) -> str:
        text = self._loc_strs.get(loc)
        if text is None:
            text = str(loc)
            self._loc_strs[loc] = text
        return text

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def _make_task(
        self,
        parent: Optional[TaskInstance],
        generator: Generator[Any, Any, Any],
        created_at: int,
        core: int,
        creation_cycles: int,
        loc: str,
        definition: str,
        label: str,
        inlined: bool,
    ) -> TaskInstance:
        tid = self._next_tid
        self._next_tid += 1
        path = ROOT_PATH if parent is None else parent.child_path()
        task = TaskInstance(
            tid=tid, path=path, parent=parent, generator=generator,
            loc=loc, label=label, definition=definition,
            created_at=created_at, created_by_core=core,
            creation_cycles=creation_cycles, inlined=inlined,
        )
        self.stats.tasks_created += 1
        return task

    def _begin_fragment(self, task: TaskInstance, time: int) -> None:
        # Footprint lists were reset by the previous _end_fragment (or
        # are fresh from TaskInstance.__init__); counters stay None until
        # the first work segment so its outcome's CounterSet can serve as
        # the accumulator directly instead of being copied into one.
        task.frag_start = time

    def _end_fragment(self, worker: _Worker, task: TaskInstance, time: int) -> int:
        """Record the open fragment; returns profiling overhead cycles."""
        if task.frag_start is None:
            return 0
        seq = task.fragment_seq
        task.fragment_seq = seq + 1
        overhead = self.recorder.fragment(
            task.tid,
            seq,
            task.frag_start,
            time,
            worker.wid,
            task.frag_counters,
            tuple(task.frag_reads),
            tuple(task.frag_writes),
        )
        task.frag_start = None
        task.frag_counters = None
        if task.frag_reads:
            task.frag_reads = []
        if task.frag_writes:
            task.frag_writes = []
        self.stats.fragments += 1
        return overhead

    def _begin_task(self, worker: _Worker, task: TaskInstance, time: int) -> None:
        worker.current = task
        worker.sleeping = False
        task.last_worker = worker.wid
        if task.state is TaskState.READY and task.resume_reason == "taskwait":
            synced = tuple(task.to_sync)
            task.to_sync.clear()
            self.recorder.taskwait_end(task.tid, time, worker.wid, synced)
        task.state = TaskState.RUNNING
        task.resume_reason = ""
        self._begin_fragment(task, time)
        self._drive(worker, task, time)

    def _drive(self, worker: _Worker, task: TaskInstance, time: int) -> None:
        """Advance the task's generator until it blocks or yields time."""
        dispatch = self._dispatch
        generator = task.generator
        while True:
            try:
                value, task.pending_value = task.pending_value, None
                action = generator.send(value)
            except StopIteration:
                self._task_done(worker, task, time)
                return
            handler = dispatch.get(action.__class__)
            if handler is not None:
                handler(worker, task, time, action)
                return
            if action.__class__ is Alloc:
                region = self.machine.allocate(
                    action.name, action.size_bytes, action.placement
                )
                self._region_sizes[region.name] = region.size_bytes
                if action.record_write:
                    task.frag_writes.append(
                        (region.name, 0, region.size_bytes)
                    )
                task.pending_value = region
                continue
            raise TypeError(f"task yielded non-action {action!r}")

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _do_work(
        self, worker: _Worker, task: TaskInstance, time: int, action: Work
    ) -> None:
        outcome = self.machine.cost.charge(worker.wid, action.request)
        self.machine.contention.register(outcome.node_weights)
        counters = task.frag_counters
        if counters is None:
            # First work of the fragment: adopt the freshly built outcome
            # counters as the fragment accumulator (charge never retains
            # them, so no aliasing hazard).
            task.frag_counters = outcome.counters
        else:
            counters += outcome.counters
        if action.reads:
            task.frag_reads.extend(
                normalize_footprints(action.reads, self._region_sizes)
            )
        if action.writes:
            task.frag_writes.extend(
                normalize_footprints(action.writes, self._region_sizes)
            )

        def _done(
            t2: int, weights: list[float] = outcome.node_weights
        ) -> None:
            self.machine.contention.withdraw(weights)
            self._drive(worker, task, t2)

        self._at(time + outcome.duration, _done)

    def _do_spawn(
        self, worker: _Worker, task: TaskInstance, time: int, action: Spawn
    ) -> None:
        overhead = self._end_fragment(worker, task, time)
        flavor = self.flavor
        inline = (not action.if_clause) or (
            self._replay_sched is None
            and flavor.should_inline(
                self.scheduler.queue_length(worker.wid),
                self.scheduler.total_pending(),
                self.num_threads,
            )
        )
        if inline:
            cost = flavor.inline_create_cycles
            self.stats.tasks_inlined += 1
        else:
            cost = flavor.task_create_cycles + self._queue_contention
        loc_str = self._loc_str(action.loc)
        child = self._make_task(
            parent=task, generator=action.body(), created_at=time,
            core=worker.wid, creation_cycles=cost, loc=loc_str,
            definition=action.definition or loc_str, label=action.label,
            inlined=inline,
        )
        task.children_spawned += 1
        task.outstanding += 1
        task.live_children.add(child)
        cost += self.recorder.task_create(
            child.tid, child.path, task.tid, time, worker.wid, cost,
            child.depth, loc_str, child.definition, child.label, inline,
        ) + overhead
        task.pending_value = child.handle
        if inline:
            task.state = TaskState.BLOCKED_INLINE
            child.inline_parent = task
            worker.current = None
            if self._replay_sched is not None:
                # An if(0) child never reaches the scheduler; retire its
                # witness step so the queue cannot stall behind it.
                self._replay_sched.notify_inline(child.path)
                self._replay_wake_all(time)
            self._at(time + cost, lambda t2: self._begin_task(worker, child, t2))
        else:

            def _pushed(t3: int) -> None:
                self.scheduler.push(child, worker.wid)
                self._wake_one(worker.wid, t3)
                self._begin_fragment(task, t3)
                self._drive(worker, task, t3)

            def _enqueued(t2: int) -> None:
                lock = self._queue_lock_cycles(t2)
                if lock:
                    self._at(t2 + lock, _pushed)
                else:
                    _pushed(t2)

            self._at(time + cost, _enqueued)

    def _do_taskwait(
        self, worker: _Worker, task: TaskInstance, time: int, action: TaskWait
    ) -> None:
        overhead = self._end_fragment(worker, task, time)
        overhead += self.recorder.taskwait_begin(task.tid, time, worker.wid, False)
        cost = self._taskwait_cycles + overhead

        def _check(t2: int) -> None:
            if task.outstanding == 0:
                synced = tuple(task.to_sync)
                task.to_sync.clear()
                self.recorder.taskwait_end(task.tid, t2, worker.wid, synced)
                self._begin_fragment(task, t2)
                self._drive(worker, task, t2)
            else:
                task.state = TaskState.WAITING
                worker.current = None
                self._find_work(worker, t2)

        self._at(time + cost, _check)

    def _task_done(self, worker: _Worker, task: TaskInstance, time: int) -> None:
        if task.is_root and task.outstanding > 0 and not task.in_implicit_barrier:
            # End-of-parallel-region barrier: the root waits for every
            # remaining descendant (fire-and-forget tasks sync here).
            task.in_implicit_barrier = True
            overhead = self._end_fragment(worker, task, time)
            overhead += self.recorder.taskwait_begin(
                task.tid, time, worker.wid, True
            )
            task.state = TaskState.WAITING
            worker.current = None
            self._find_work(worker, time + self._taskwait_cycles + overhead)
            return
        self._end_fragment(worker, task, time)
        self.recorder.task_complete(task.tid, time, worker.wid)
        task.state = TaskState.COMPLETED
        sync_parent = task.sync_parent
        if task.outstanding > 0:
            # Fire-and-forget: re-parent live children (and any completed
            # but unconsumed ones) to our own sync ancestor.
            assert sync_parent is not None
            for child in task.live_children:
                child.sync_parent = sync_parent
                sync_parent.live_children.add(child)
            sync_parent.outstanding += len(task.live_children)
            sync_parent.to_sync.extend(task.to_sync)
            task.live_children.clear()
            task.to_sync.clear()
        if sync_parent is not None:
            sync_parent.outstanding -= 1
            sync_parent.live_children.discard(task)
            sync_parent.to_sync.append(task.tid)
            if task.inline_parent is not None:
                # Parent was blocked behind this undeferred child; resume
                # it directly on this worker — an undeferred task's end is
                # a function return, not a scheduling event.
                parent = task.inline_parent
                parent.state = TaskState.READY
                parent.resume_reason = "inline"
                worker.current = None
                self._at(
                    time + self._task_finish_cycles,
                    lambda t2: self._begin_task(worker, parent, t2),
                )
                return
            if (
                sync_parent.state is TaskState.WAITING
                and sync_parent.outstanding == 0
            ):
                sync_parent.state = TaskState.READY
                sync_parent.resume_reason = "taskwait"
                self.scheduler.push(sync_parent, worker.wid)
        else:
            self._makespan = time
        worker.current = None
        self._at(time + self._task_finish_cycles, worker.find_cb)

    # ------------------------------------------------------------------
    # Work finding / waking
    # ------------------------------------------------------------------
    def _find_work(self, worker: _Worker, time: int) -> None:
        lock = self._queue_lock_cycles(time)  # even empty checks take it
        result = self.scheduler.pop(worker.wid)
        if result is None:
            worker.sleeping = True
            self._sleeping.add(worker.wid)
            return
        task = result.task
        if result.kind is PopKind.STEAL:
            cost = lock + self.flavor.steal_cycles
            self.stats.steals += 1
        else:
            cost = lock + self.flavor.dispatch_cycles + self._queue_contention
            self.stats.local_pops += 1
        if task.state is TaskState.READY:
            cost += self.flavor.resume_cycles
        self._at(time + cost, lambda t2: self._begin_task(worker, task, t2))
        if self._replay_sched is not None:
            # Dispatching the head may expose the next head, which can be
            # pinned to any worker: re-poll every sleeper.
            self._replay_wake_all(time)

    def _replay_wake_all(self, time: int) -> None:
        """Replay-mode wake policy: every scheduler state change (push,
        successful dispatch, inline retirement) re-polls all sleepers.
        The witness head is pinned to one worker, so the nearest-single
        wake could strand it; waking everyone keeps replay deadlock-free
        whenever the witness itself is realizable (and if it is not, the
        heap drains and DeadlockError reports it)."""
        if not self._sleeping:
            return
        for wid in sorted(self._sleeping):
            self.workers[wid].sleeping = False
            self._at(time + self._wake_latency, self.workers[wid].find_cb)
        self._sleeping.clear()

    def _wake_one(self, pusher: int, time: int) -> None:
        """Wake the sleeping worker nearest to ``pusher`` (NUMA distance,
        then core-id distance, then id — fully deterministic)."""
        if self._replay_sched is not None:
            self._replay_wake_all(time)
            return
        if not self._sleeping:
            return
        best = min(self._sleeping, key=self._wake_rank[pusher].__getitem__)
        self._sleeping.discard(best)
        self.workers[best].sleeping = False
        self._at(time + self._wake_latency, self.workers[best].find_cb)

    # ------------------------------------------------------------------
    # Parallel for-loops
    # ------------------------------------------------------------------
    def _do_parallel_for(
        self, worker: _Worker, task: TaskInstance, time: int, action: ParallelFor
    ) -> None:
        if not task.is_root:
            raise NestedParallelismError(
                "parallel for-loops inside explicit tasks are nested "
                "parallelism, which the profiler does not support "
                "(the paper likewise omits 352.nab)"
            )
        if self.scheduler.total_pending() or task.outstanding:
            raise NestedParallelismError(
                "parallel for-loops cannot start while tasks are in flight"
            )
        spec = action.loop
        team = min(self.num_threads, spec.num_threads or self.num_threads)
        if len(self._sleeping) < team - 1:
            # Team members may still be draining their task-finish or
            # failed-steal transitions; with no tasks in flight they all
            # reach sleep within a bounded number of events, so retry.
            self._at(
                time + self._wake_latency,
                lambda t2: self._do_parallel_for(worker, task, t2, action),
            )
            return
        self._end_fragment(worker, task, time)
        loop_id = self._next_loop_id
        self._next_loop_id += 1
        seq = self._loop_seq_by_thread.get(worker.wid, 0)
        self._loop_seq_by_thread[worker.wid] = seq + 1
        self.recorder.loop_begin(
            loop_id, seq, worker.wid, time, spec.iterations,
            spec.schedule.value, spec.chunk_size, team, str(spec.loc),
            spec.definition_key(), spec.label,
        )
        # Team = issuing worker + the lowest-id sleeping workers.
        others = sorted(self._sleeping)[: team - 1]
        for wid in others:
            self._sleeping.discard(wid)
            self.workers[wid].sleeping = False
        team_workers = [worker.wid] + others
        dispatcher = ChunkDispatcher.create(spec, team)
        le = _LoopExec(loop_id, spec, dispatcher, team_workers, task, worker.wid)
        task.state = TaskState.IN_LOOP
        worker.current = None
        self.stats.loops_executed += 1
        for thread, wid in enumerate(team_workers):
            delay = 0 if wid == worker.wid else self._wake_latency
            self._at(
                time + delay,
                lambda t2, wid=wid, thread=thread: self._loop_step(
                    le, wid, thread, t2
                ),
            )
        le.lock_free_at = time

    def _loop_step(self, le: _LoopExec, wid: int, thread: int, time: int) -> None:
        """One book-keeping span followed by a chunk (or barrier arrival)."""
        spec = le.spec
        if spec.schedule is Schedule.STATIC:
            # Static chunk assignment needs no shared state.
            cost = self.flavor.static_dispatch_cycles
        else:
            # Dynamic/guided chunks come from a shared counter: grabs
            # serialize through its cache line.  With a large team and
            # tiny chunks the counter saturates — the "high
            # synchronization cost for most cores" existing tools show
            # for Freqmine's FPGF loop (Sec. 4.3.4).
            hold = self.flavor.dynamic_dispatch_cycles
            start = max(time, le.lock_free_at)
            le.lock_free_at = start + hold
            cost = (start - time) + hold

        def _dispatched(t2: int) -> None:
            chunk = le.dispatcher.next_chunk(thread)
            overhead = self.recorder.bookkeeping(
                le.loop_id, thread, wid, time, t2, chunk is not None
            )
            if chunk is None:
                le.remaining -= 1
                if le.remaining == 0:
                    self._at(
                        t2 + self.flavor.barrier_cycles + overhead,
                        lambda t3: self._loop_finish(le, t3),
                    )
                return
            start_it, end_it = chunk
            request = spec.merged_request(start_it, end_it)
            if spec.footprint is not None:
                fp_reads, fp_writes = spec.footprint(start_it, end_it)
                chunk_reads = normalize_footprints(
                    tuple(fp_reads), self._region_sizes
                )
                chunk_writes = normalize_footprints(
                    tuple(fp_writes), self._region_sizes
                )
            else:
                chunk_reads = chunk_writes = ()
            outcome = self.machine.cost.charge(wid, request)
            self.machine.contention.register(outcome.node_weights)
            chunk_seq = le.chunk_seq
            le.chunk_seq += 1
            self.stats.chunks_executed += 1

            def _chunk_done(
                t3: int, weights: list[float] = outcome.node_weights
            ) -> None:
                self.machine.contention.withdraw(weights)
                oh = self.recorder.chunk(
                    le.loop_id, chunk_seq, thread, start_it, end_it,
                    t2 + overhead, t3, wid, outcome.counters,
                    chunk_reads, chunk_writes,
                )
                self._loop_step(le, wid, thread, t3 + oh)

            self._at(t2 + overhead + outcome.duration, _chunk_done)

        self._at(time + cost, _dispatched)

    def _loop_finish(self, le: _LoopExec, time: int) -> None:
        self.recorder.loop_end(le.loop_id, time)
        for wid in le.team_workers:
            if wid != le.issuing_worker:
                self._find_work(self.workers[wid], time)
        task = le.issuing_task
        task.state = TaskState.RUNNING
        issuing = self.workers[le.issuing_worker]
        issuing.current = task
        self._begin_fragment(task, time)
        self._drive(issuing, task, time)

    # ------------------------------------------------------------------
    def _deadlock_report(self) -> str:
        lines = ["event heap drained before the root task completed;"]
        for worker in self.workers:
            lines.append(
                f"  worker {worker.wid}: sleeping={worker.sleeping} "
                f"current={worker.current!r}"
            )
        lines.append(f"  scheduler pending: {self.scheduler.total_pending()}")
        return "\n".join(lines)
