"""Optimization advisor: turn problem patterns into actionable advice.

The paper's walkthroughs follow recognizable recipes — low parallel
benefit concentrated in a definition → add a cutoff (FFT); widespread work
inflation plus first-touch pages → distribute pages round-robin (Sort);
bad load balance with chunk grains of wildly uneven size → minimize cores
instead (Freqmine); a shallow graph despite a cutoff parameter → suspect a
broken cutoff (376.kdtree, Strassen).  The advisor encodes those recipes
so average programmers get the paper's guidance automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.grains import GrainKind
from .problems import ProblemKind
from .report import AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..advisor.report import Recommendation


@dataclass(frozen=True)
class Advice:
    title: str
    detail: str
    definition: str = ""  # source definition to act on, when known

    def __str__(self) -> str:
        target = f" [{self.definition}]" if self.definition else ""
        return f"{self.title}{target}: {self.detail}"


def advise(report: AnalysisReport) -> list[Advice]:
    """Derive advice from an analysis report (ordered by expected value)."""
    out: list[Advice] = []
    graph = report.graph
    problems = report.problems
    task_grains = [
        g for g in graph.grains.values() if g.kind is GrainKind.TASK
    ]
    chunk_grains = [
        g for g in graph.grains.values() if g.kind is GrainKind.CHUNK
    ]

    # 1. Low parallel benefit concentrated in heavy definitions -> cutoffs.
    for row in report.definitions:
        if row.definition == "<root>":
            continue
        if row.low_benefit_fraction > 0.5 and row.work_share > 0.10:
            if row.kind == GrainKind.TASK.value:
                out.append(
                    Advice(
                        title="add a cutoff",
                        definition=row.definition,
                        detail=(
                            f"{100 * row.low_benefit_fraction:.0f}% of its "
                            f"{row.count} grains have parallel benefit below "
                            "threshold; prevent creation of too-small tasks "
                            "(e.g. a recursion-depth cutoff) so grains are "
                            "big enough to amortize parallelization cost"
                        ),
                    )
                )
            else:
                out.append(
                    Advice(
                        title="increase chunk size",
                        definition=row.definition,
                        detail=(
                            "most chunks are too small to amortize "
                            "book-keeping; but verify load balance first — "
                            "bigger chunks worsen imbalanced loops"
                        ),
                    )
                )

    # 2. Work inflation widespread -> page distribution.
    inflated = problems.affected_fraction(ProblemKind.WORK_INFLATION)
    if inflated > 0.25:
        out.append(
            Advice(
                title="distribute memory pages round-robin",
                detail=(
                    f"{100 * inflated:.0f}% of grains show work inflation; "
                    "cache misses and remote-memory contention are the main "
                    "sources — spread pages across NUMA nodes, or apply "
                    "locality-aware scheduling / data distribution"
                ),
            )
        )

    # 3. Low instantaneous parallelism on many grains -> structural limit.
    low_par = problems.affected_fraction(
        ProblemKind.LOW_INSTANTANEOUS_PARALLELISM
    )
    if low_par > 0.3 and task_grains:
        out.append(
            Advice(
                title="program exposes insufficient parallelism",
                detail=(
                    f"{100 * low_par:.0f}% of grains run at parallelism below "
                    "the core count; lowering cutoffs increases parallelism "
                    "but check parallel benefit — if both degrade, the "
                    "imbalance is incurable by scheduling (Sort, Sec. 4.3.1)"
                ),
            )
        )

    # 4. Chunk load imbalance with uneven grains -> core minimization.
    lb = report.metrics.load_balance
    if lb.value > 4.0 and chunk_grains:
        out.append(
            Advice(
                title="minimize cores for the imbalanced loop",
                detail=(
                    f"load balance {lb.value:.1f} is dominated by grain "
                    f"{lb.longest_grain}; if chunk sizes cannot be evened "
                    "out, compute the minimum cores preserving the makespan "
                    "with repro.binpack and set num_threads accordingly "
                    "(Freqmine, Sec. 4.3.4)"
                ),
            )
        )

    # 5. Shallow recursion despite many identical definitions -> suspect
    # broken cutoff (the kdtree/Strassen signature is the opposite: a huge
    # flat flood of tasks from one definition).
    if task_grains:
        max_depth = max(g.depth for g in task_grains)
        n = len(task_grains)
        if n > 500 and max_depth > 14:
            out.append(
                Advice(
                    title="check cutoff effectiveness",
                    detail=(
                        f"{n} tasks recurse to depth {max_depth}; if a cutoff "
                        "parameter should bound this, verify the depth is "
                        "actually incremented on recursive calls "
                        "(376.kdtree, Sec. 2) and that no hard-coded value "
                        "overrides it (Strassen, Sec. 4.3.5)"
                    ),
                )
            )

    # 6. High scatter -> scheduler choice.
    scattered = problems.affected_fraction(ProblemKind.HIGH_SCATTER)
    if scattered > 0.25:
        out.append(
            Advice(
                title="use a work-stealing scheduler",
                detail=(
                    f"{100 * scattered:.0f}% of grains execute far from "
                    "their siblings; central-queue scheduling scatters "
                    "siblings across sockets (Strassen, Fig. 11d)"
                ),
            )
        )

    # 7. Poor MHU widespread even with work stealing -> algorithmic.
    poor_mhu = problems.affected_fraction(
        ProblemKind.POOR_MEMORY_HIERARCHY_UTILIZATION
    )
    if poor_mhu > 0.5:
        out.append(
            Advice(
                title="algorithmic locality work needed",
                detail=(
                    f"{100 * poor_mhu:.0f}% of grains underuse the memory "
                    "hierarchy; critical-path-only optimization will not "
                    "suffice — consider blocked algorithms, access-pattern "
                    "fixes (loop interchange) or locality-aware scheduling "
                    "(FFT Fig. 8, 359.botsspar Sec. 4.3.2)"
                ),
            )
        )
    return out


def advice_from_recommendations(
    recommendations: "Sequence[Recommendation]",
) -> list[Advice]:
    """Bridge the static advisor's ranked recommendations into the
    measured-study advice stream (``profile_program(advise=True)``):
    each pattern finding becomes one :class:`Advice`, keeping the
    advisor's win-ranked order after the report-derived recipes."""
    out: list[Advice] = []
    for rec in recommendations:
        finding = rec.finding
        detail = finding.detail
        if finding.benefit:
            detail += f"; {finding.benefit}"
        if finding.fix_hint:
            detail += f"; fix: {finding.fix_hint}"
        out.append(
            Advice(
                title=f"{finding.pattern.value} pattern "
                f"(win {rec.win_cycles} cycles)",
                detail=detail,
                definition=finding.target,
            )
        )
    return out
