"""Top-level analysis report: metrics + problems + per-definition table.

:func:`analyze` is the summary-form output of Sec. 3.3; each experiment's
benchmark prints one of these next to the paper's claimed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.nodes import GrainGraph
from ..metrics.facade import MetricSet
from ..metrics.parallelism import IntervalPreset
from ..metrics.summary import (
    DefinitionSummary,
    format_definition_table,
    per_definition_summary,
)
from ..obs import registry as _obs
from .problems import ProblemKind, ProblemReport, detect_problems
from .thresholds import Thresholds


@dataclass
class AnalysisReport:
    metrics: MetricSet
    problems: ProblemReport
    thresholds: Thresholds
    definitions: list[DefinitionSummary] = field(default_factory=list)

    @property
    def graph(self) -> GrainGraph:
        return self.metrics.graph

    def affected_percent(self, kind: ProblemKind) -> float:
        return 100.0 * self.problems.affected_fraction(kind)

    def summary(self) -> str:
        """Human-readable digest of the whole analysis."""
        graph = self.graph
        meta = graph.meta
        lines = []
        if meta:
            lines.append(
                f"program={meta.program} input={meta.input_summary} "
                f"flavor={meta.flavor} threads={meta.num_threads}"
            )
            lines.append(
                f"makespan: {meta.makespan_cycles} cycles "
                f"({meta.makespan_cycles / meta.frequency_hz:.4f} s)"
            )
        lines.append(graph.summary())
        lb = self.metrics.load_balance
        lines.append(
            f"load balance: {lb.value:.2f} "
            f"(longest grain {lb.longest_grain}, {lb.num_chains} chains)"
        )
        par = self.metrics.parallelism
        lines.append(
            f"instantaneous parallelism: peak={par.peak} mean={par.mean:.1f} "
            f"interval={par.interval_cycles} cycles"
        )
        cp = self.metrics.critical_path
        lines.append(f"critical path: {cp.length_cycles} cycles, "
                     f"{len(cp.node_ids)} nodes")
        lines.append("problems:")
        for kind in ProblemKind:
            count = self.problems.count(kind)
            if count:
                lines.append(
                    f"  {kind.value}: {count} findings, "
                    f"{self.affected_percent(kind):.2f}% of grains affected"
                )
        if not self.problems.problems:
            lines.append("  none — all metrics indicate good behavior")
        lines.append("")
        lines.append(format_definition_table(self.definitions[:12]))
        return "\n".join(lines)


def analyze(
    graph: GrainGraph,
    reference: GrainGraph | None = None,
    thresholds: Thresholds | None = None,
    interval: int | IntervalPreset = IntervalPreset.MEDIAN_GRAIN_LENGTH,
    optimistic: bool = True,
) -> AnalysisReport:
    """Compute metrics, detect problems, and summarize per definition."""
    thresholds = thresholds or Thresholds()
    metrics = MetricSet.compute(
        graph, reference=reference, interval=interval, optimistic=optimistic
    )
    with _obs.span("analysis.problems"):
        problems = detect_problems(metrics, thresholds)
    with _obs.span("analysis.definitions"):
        definitions = per_definition_summary(
            graph,
            benefit_threshold=thresholds.parallel_benefit,
            mhu_threshold=thresholds.memory_hierarchy_utilization,
            deviation=metrics.deviation.deviation if metrics.deviation else None,
            deviation_threshold=thresholds.work_deviation,
        )
    return AnalysisReport(
        metrics=metrics,
        problems=problems,
        thresholds=thresholds,
        definitions=definitions,
    )
