"""Problem detection: metric values crossing thresholds become
source-linked :class:`Problem` records.

"Performance crippling conditions such as low parallelism, work-inflation,
and poor parallelization benefit are derived at the grain level and
depicted directly on the grain graph with precise links that connect
problem areas to source code."
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..metrics.facade import MetricSet
from ..metrics.scatter import topology_from_meta
from .thresholds import Thresholds


class ProblemKind(enum.Enum):
    LOW_PARALLEL_BENEFIT = "low_parallel_benefit"
    POOR_MEMORY_HIERARCHY_UTILIZATION = "poor_memory_hierarchy_utilization"
    WORK_INFLATION = "work_inflation"
    LOW_INSTANTANEOUS_PARALLELISM = "low_instantaneous_parallelism"
    HIGH_SCATTER = "high_scatter"
    LOAD_IMBALANCE = "load_imbalance"


@dataclass(frozen=True)
class Problem:
    """One problematic grain (or the whole graph, for load imbalance)."""

    kind: ProblemKind
    gid: str  # empty for graph-level problems
    value: float
    threshold: float
    definition: str = ""
    loc: str = ""

    @property
    def severity(self) -> float:
        """How far past the threshold, normalized to [0, 1]; drives the
        red-to-yellow highlight gradients."""
        if self.threshold == 0:
            return 1.0
        if self.kind in (
            ProblemKind.LOW_PARALLEL_BENEFIT,
            ProblemKind.POOR_MEMORY_HIERARCHY_UTILIZATION,
            ProblemKind.LOW_INSTANTANEOUS_PARALLELISM,
        ):
            # Below-threshold problems: 0 at the threshold, 1 at zero.
            return min(1.0, max(0.0, 1.0 - self.value / self.threshold))
        # Above-threshold problems: saturate at 4x the threshold.
        excess = (self.value - self.threshold) / (3.0 * self.threshold)
        return min(1.0, max(0.0, excess))


@dataclass
class ProblemReport:
    problems: list[Problem] = field(default_factory=list)
    by_kind: dict[ProblemKind, list[Problem]] = field(default_factory=dict)
    total_grains: int = 0

    def add(self, problem: Problem) -> None:
        self.problems.append(problem)
        self.by_kind.setdefault(problem.kind, []).append(problem)

    def count(self, kind: ProblemKind) -> int:
        return len(self.by_kind.get(kind, []))

    def affected_fraction(self, kind: ProblemKind) -> float:
        """Fraction of grains affected (the Sort table's "Affected grains
        (%)" statistic)."""
        if not self.total_grains:
            return 0.0
        gids = {p.gid for p in self.by_kind.get(kind, []) if p.gid}
        return len(gids) / self.total_grains

    def grains_with(self, kind: ProblemKind) -> set[str]:
        return {p.gid for p in self.by_kind.get(kind, []) if p.gid}


def detect_problems(
    metrics: MetricSet, thresholds: Thresholds | None = None
) -> ProblemReport:
    """Run every detector over a computed metric set."""
    thresholds = thresholds or Thresholds()
    graph = metrics.graph
    meta = graph.meta
    num_threads = meta.num_threads if meta else 1
    topo = topology_from_meta(meta) if meta else None
    scatter_threshold = thresholds.resolve_scatter(
        topo.same_socket_distance if topo else 16.0
    )
    parallelism_threshold = thresholds.resolve_parallelism(num_threads)

    report = ProblemReport(total_grains=len(graph.grains))
    for gid, gm in metrics.per_grain.items():
        grain = graph.grains[gid]
        if gm.parallel_benefit < thresholds.parallel_benefit:
            report.add(
                Problem(
                    kind=ProblemKind.LOW_PARALLEL_BENEFIT,
                    gid=gid,
                    value=gm.parallel_benefit,
                    threshold=thresholds.parallel_benefit,
                    definition=grain.definition,
                    loc=grain.loc,
                )
            )
        mhu = gm.memory_hierarchy_utilization
        if math.isfinite(mhu) and mhu < thresholds.memory_hierarchy_utilization:
            report.add(
                Problem(
                    kind=ProblemKind.POOR_MEMORY_HIERARCHY_UTILIZATION,
                    gid=gid,
                    value=mhu,
                    threshold=thresholds.memory_hierarchy_utilization,
                    definition=grain.definition,
                    loc=grain.loc,
                )
            )
        if (
            gm.work_deviation is not None
            and gm.work_deviation > thresholds.work_deviation
        ):
            report.add(
                Problem(
                    kind=ProblemKind.WORK_INFLATION,
                    gid=gid,
                    value=gm.work_deviation,
                    threshold=thresholds.work_deviation,
                    definition=grain.definition,
                    loc=grain.loc,
                )
            )
        if gm.instantaneous_parallelism < parallelism_threshold:
            report.add(
                Problem(
                    kind=ProblemKind.LOW_INSTANTANEOUS_PARALLELISM,
                    gid=gid,
                    value=float(gm.instantaneous_parallelism),
                    threshold=float(parallelism_threshold),
                    definition=grain.definition,
                    loc=grain.loc,
                )
            )
        if gm.scatter > scatter_threshold:
            report.add(
                Problem(
                    kind=ProblemKind.HIGH_SCATTER,
                    gid=gid,
                    value=gm.scatter,
                    threshold=scatter_threshold,
                    definition=grain.definition,
                    loc=grain.loc,
                )
            )
    if metrics.load_balance.value > thresholds.load_balance + 1e-9:
        report.add(
            Problem(
                kind=ProblemKind.LOAD_IMBALANCE,
                gid="",
                value=metrics.load_balance.value,
                threshold=thresholds.load_balance,
                definition=metrics.load_balance.longest_grain,
            )
        )
    return report
