"""Thread-timeline view — what "existing visualizations" show (Fig. 4).

The paper's Fig. 4 critique: tools like VTune show per-core busy/runtime
fractions and load imbalance but "nothing links the load imbalance to the
culprit tasks".  This module reproduces that aggregate view from the same
trace, so every experiment can print the existing-tools picture next to
the grain-graph picture and demonstrate the information gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profiler.trace import Trace
from ..profiler.events import ChunkEvent, FragmentEvent


@dataclass
class ThreadTimeline:
    """Per-core aggregate statistics (the existing-tools view)."""

    makespan: int
    busy_cycles: dict[int, int] = field(default_factory=dict)
    runtime_cycles: dict[int, int] = field(default_factory=dict)  # overhead/idle
    spans: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    @property
    def num_cores(self) -> int:
        return len(self.busy_cycles)

    def busy_fraction(self, core: int) -> float:
        if self.makespan == 0:
            return 0.0
        return self.busy_cycles.get(core, 0) / self.makespan

    def imbalance(self) -> float:
        """Max over mean busy time — the only signal this view offers."""
        values = [v for v in self.busy_cycles.values()]
        if not values or sum(values) == 0:
            return 1.0
        mean = sum(values) / len(values)
        return max(values) / mean if mean else 1.0

    def summary(self) -> str:
        lines = [
            f"thread timeline: {self.num_cores} cores, makespan "
            f"{self.makespan} cycles, busy-time imbalance "
            f"{self.imbalance():.2f}"
        ]
        for core in sorted(self.busy_cycles):
            frac = self.busy_fraction(core)
            bar = "#" * int(round(40 * frac))
            lines.append(f"  core {core:3d} |{bar:<40}| {100 * frac:5.1f}% busy")
        lines.append(
            "  (no per-task information: load imbalance is visible but "
            "nothing links it to culprit grains)"
        )
        return "\n".join(lines)


def thread_timeline(trace: Trace) -> ThreadTimeline:
    """Aggregate the trace the way a thread-timeline tool would."""
    makespan = trace.meta.makespan_cycles
    cores = range(trace.meta.num_threads)
    timeline = ThreadTimeline(makespan=makespan)
    for core in cores:
        timeline.busy_cycles[core] = 0
        timeline.runtime_cycles[core] = 0
        timeline.spans[core] = []
    for event in trace.events:
        if isinstance(event, (FragmentEvent, ChunkEvent)):
            span = event.end - event.start
            timeline.busy_cycles[event.core] = (
                timeline.busy_cycles.get(event.core, 0) + span
            )
            timeline.spans.setdefault(event.core, []).append(
                (event.start, event.end)
            )
    for core in timeline.busy_cycles:
        timeline.runtime_cycles[core] = makespan - timeline.busy_cycles[core]
    return timeline
