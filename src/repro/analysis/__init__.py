"""Problem highlighting and reporting (Sec. 3.3 and the Sec. 4 workflow).

"Derived metric values that are likely to be problematic are highlighted
... and also made available in a summary form."  This package holds the
default thresholds, the problem detectors producing source-linked
:class:`Problem` records, the per-problem color-encoded views (one problem
per view, non-problematic elements dimmed), the textual report, an
optimization advisor, and — for contrast with "existing visualizations" —
a thread-timeline view in the style the paper's Fig. 4 critiques.
"""

from .thresholds import Thresholds
from .problems import Problem, ProblemKind, detect_problems, ProblemReport
from .views import View, make_view, heat_color, dim_color, VIEW_KINDS
from .report import AnalysisReport, analyze
from .advisor import Advice, advise
from .timeline import thread_timeline, ThreadTimeline

__all__ = [
    "Thresholds",
    "Problem",
    "ProblemKind",
    "detect_problems",
    "ProblemReport",
    "View",
    "make_view",
    "heat_color",
    "dim_color",
    "VIEW_KINDS",
    "AnalysisReport",
    "analyze",
    "Advice",
    "advise",
    "thread_timeline",
    "ThreadTimeline",
]
