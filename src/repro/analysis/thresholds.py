"""Default problem thresholds (Sec. 3.3).

"We highlight memory hierarchy utilization less than two, parallel
benefit below one, load balance greater than one, work deviation greater
than two, instantaneous parallelism less than the number of cores used to
execute the program, and scatter farther than the number of cores in a
CPU socket as likely problems."

"Problem thresholds have sensible defaults ... and can be refined by
programmers" (Sec. 4.2) — e.g. the 359.botsspar walkthrough lowers the
work-deviation threshold from 2 to 1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Thresholds:
    """Problem thresholds; ``None`` core-dependent entries are resolved
    against the run's trace metadata at detection time."""

    memory_hierarchy_utilization: float = 2.0  # problem when below
    parallel_benefit: float = 1.0  # problem when below
    load_balance: float = 1.0  # problem when above
    work_deviation: float = 2.0  # problem when above
    instantaneous_parallelism: int | None = None  # below; None = cores used
    scatter: float | None = None  # above; None = socket size / distance

    def refined(self, **overrides) -> "Thresholds":
        """A copy with some thresholds replaced (the programmer-refinement
        path of Sec. 4.2)."""
        return replace(self, **overrides)

    def resolve_parallelism(self, num_threads: int) -> int:
        if self.instantaneous_parallelism is not None:
            return self.instantaneous_parallelism
        return num_threads

    def resolve_scatter(self, same_socket_distance: float) -> float:
        """Scatter is problematic beyond one socket: with the NUMA-distance
        convention that is any median above the same-socket table entry."""
        if self.scatter is not None:
            return self.scatter
        return same_socket_distance
