"""Color-encoded views: one problem or property per view (Sec. 4.2).

"The grain graph has multiple views with colors encoding a single problem
or property per view.  Problematic grains, i.e., those that have crossed
thresholds, are highlighted and other elements are dimmed in views where
grain colors encode problems."

Gradients follow the paper's figures: problems use a red-to-yellow linear
gradient over severity (red = worst); the scatter view uses a
violet-to-red rainbow gradient keyed to the executing core (Fig. 11c/d);
the definition view assigns a categorical color per source definition
(Fig. 6a, 9a, 11a).  Colors are plain ``#rrggbb`` strings consumed by the
SVG and GraphML exporters.
"""

from __future__ import annotations

import colorsys
from dataclasses import dataclass, field

from ..metrics.facade import MetricSet
from .problems import ProblemKind, ProblemReport

DIM = "#d9d9d9"
DEFAULT = "#9ecae1"
CRITICAL = "#d62728"

VIEW_KINDS = (
    "parallel_benefit",
    "memory_hierarchy_utilization",
    "work_inflation",
    "instantaneous_parallelism",
    "scatter",
    "definition",
    "critical_path",
)

_PROBLEM_OF_VIEW = {
    "parallel_benefit": ProblemKind.LOW_PARALLEL_BENEFIT,
    "memory_hierarchy_utilization": ProblemKind.POOR_MEMORY_HIERARCHY_UTILIZATION,
    "work_inflation": ProblemKind.WORK_INFLATION,
    "instantaneous_parallelism": ProblemKind.LOW_INSTANTANEOUS_PARALLELISM,
    "scatter": ProblemKind.HIGH_SCATTER,
}


def heat_color(severity: float) -> str:
    """Red-to-yellow linear gradient; severity in [0, 1], 1 = red."""
    severity = min(1.0, max(0.0, severity))
    # Hue from 60 (yellow) down to 0 (red).
    hue = (1.0 - severity) * 60.0 / 360.0
    r, g, b = colorsys.hsv_to_rgb(hue, 0.95, 0.95)
    return f"#{int(r * 255):02x}{int(g * 255):02x}{int(b * 255):02x}"


def rainbow_color(fraction: float) -> str:
    """Violet-to-red gradient (the scatter view's core encoding)."""
    fraction = min(1.0, max(0.0, fraction))
    hue = (0.75 * (1.0 - fraction)) % 1.0  # violet (0.75) -> red (0.0)
    r, g, b = colorsys.hsv_to_rgb(hue, 0.85, 0.9)
    return f"#{int(r * 255):02x}{int(g * 255):02x}{int(b * 255):02x}"


def categorical_color(index: int) -> str:
    """Well-separated categorical palette (definition views)."""
    palette = (
        "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
        "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
        "#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5",
    )
    return palette[index % len(palette)]


def dim_color() -> str:
    return DIM


@dataclass
class View:
    """Grain id -> fill color for one view, plus legend info."""

    kind: str
    colors: dict[str, str] = field(default_factory=dict)
    legend: dict[str, str] = field(default_factory=dict)
    highlighted: set[str] = field(default_factory=set)

    def color_of(self, gid: str) -> str:
        return self.colors.get(gid, DIM)


def make_view(
    metrics: MetricSet,
    problems: ProblemReport,
    kind: str,
) -> View:
    """Build a view: problem views highlight offending grains with a
    severity heat gradient and dim the rest; the definition view colors
    all grains categorically; the critical-path view marks CP grains."""
    if kind not in VIEW_KINDS:
        raise ValueError(f"unknown view {kind!r}; options: {VIEW_KINDS}")
    graph = metrics.graph
    view = View(kind=kind)

    if kind == "definition":
        definitions = sorted({g.definition for g in graph.grains.values()})
        color_of_def = {
            definition: categorical_color(i)
            for i, definition in enumerate(definitions)
        }
        for gid, grain in graph.grains.items():
            view.colors[gid] = color_of_def[grain.definition]
        view.legend = color_of_def
        view.highlighted = set(graph.grains)
        return view

    if kind == "critical_path":
        on_path = metrics.critical_path.grain_ids(graph)
        for gid in graph.grains:
            if gid in on_path:
                view.colors[gid] = CRITICAL
                view.highlighted.add(gid)
            else:
                view.colors[gid] = DIM
        view.legend = {"on critical path": CRITICAL, "off path": DIM}
        return view

    if kind == "scatter":
        # Scatter highlights use the executing core encoded on a rainbow
        # gradient (Fig. 11c/d); non-problematic grains are dimmed.
        num_cores = max(1, (graph.meta.num_cores_total if graph.meta else 1))
        offenders = problems.grains_with(ProblemKind.HIGH_SCATTER)
        for gid, grain in graph.grains.items():
            if gid in offenders:
                view.colors[gid] = rainbow_color(
                    grain.primary_core / max(1, num_cores - 1)
                )
                view.highlighted.add(gid)
            else:
                view.colors[gid] = DIM
        view.legend = {
            "core 0": rainbow_color(0.0),
            f"core {num_cores - 1}": rainbow_color(1.0),
        }
        return view

    problem_kind = _PROBLEM_OF_VIEW[kind]
    severity_of: dict[str, float] = {}
    for problem in problems.by_kind.get(problem_kind, []):
        if problem.gid:
            severity_of[problem.gid] = max(
                severity_of.get(problem.gid, 0.0), problem.severity
            )
    for gid in graph.grains:
        if gid in severity_of:
            view.colors[gid] = heat_color(severity_of[gid])
            view.highlighted.add(gid)
        else:
            view.colors[gid] = DIM
    view.legend = {
        "worst": heat_color(1.0),
        "at threshold": heat_color(0.0),
        "no problem": DIM,
    }
    return view
