"""Strassen from BOTS (Sec. 4.3.5, Figs. 1, 11).

Recursive Strassen matrix multiplication: each level decomposes the
matrices and spawns seven sub-multiplications; the submatrix-size cutoff
``SC`` should bound the recursion.  The paper found "a hard-coded cutoff
that overrides SC and limits the exposed parallelism in the functions for
matrix decomposition": no matter the input or SC, tasks are only created
for the top two levels — the graph stays shallow with 58 grains for the
2048x2048 input (7 + 49 tasks + main + root) and "the cutoff has no
effect".

Variants:

- :func:`program` — the original: tasks for two levels only (the
  hard-coded bound), each depth-2 task multiplying its whole submatrix
  serially.
- :func:`program_fixed` — the fix ("performance improves without cutoff
  ... since that provides sufficient parallelism"): recursion spawns
  tasks all the way to SC-sized leaves; for 2048 with SC=128 that is
  7 + 49 + 343 + 2401 = 2800 tasks, the 2801-grain graph of Fig. 11b.

After the fix, poor memory hierarchy utilization surfaces (leaf
multiplications use the naive triple loop, pattern 0.35); the catalog of
further fixes (blocked leaf multiply, Morton-ordered placement) is
exposed through :func:`program_fixed`'s ``leaf_pattern`` knob.

Scheduler scatter (Fig. 11c/d) is an engine-level ablation: run the same
program under ``flavor.with_scheduler("central")``.

Costs: multiplying an n x n submatrix serially via Strassen costs
~n^2.807; additions cost ~n^2; grains touch their 8-byte-double
submatrices.  Matrices are interleaved across NUMA nodes (BOTS allocates
them up front; the paper's runs do not report page-placement problems for
Strassen), which keeps memory-controller contention from masking the
parallelism contrast the cutoff bug causes.
"""

from __future__ import annotations

from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..machine.memory import Placement, RoundRobin
from ..runtime.actions import Alloc, Spawn, TaskWait, Work
from ..runtime.api import Program
from .common import flops_cycles

LOC_MULT = SourceLocation("strassen.c", 614, "OptimizedStrassenMultiply")
LOC_MAIN = SourceLocation("strassen.c", 1222, "strassen_main_par")

_ELEM = 8
_HARDCODED_LEVELS = 2  # the bug: decomposition stops spawning here
_STRASSEN_EXP = 2.807


def _serial_multiply_cycles(n: int) -> int:
    return flops_cycles(3.0 * (n ** _STRASSEN_EXP))


def _mult_request(region_id: int, n: int, pattern: float) -> WorkRequest:
    # The naive (unblocked) leaf multiply re-streams its operands: the
    # column operand is re-read once per ~32 rows, which is what the
    # paper's catalogued fixes (blocked multiply, Morton ordering) would
    # remove.  This is the traffic behind Fig. 11b's poor MHU.
    reread = max(1, n // 32)
    return WorkRequest(
        cycles=_serial_multiply_cycles(n),
        accesses=(
            Access(region_id, 3 * n * n * _ELEM * reread, pattern=pattern),
        ),
    )


def _add_request(region_id: int, n: int) -> WorkRequest:
    return WorkRequest(
        cycles=flops_cycles(2.0 * n * n),
        accesses=(Access(region_id, 2 * n * n * _ELEM, pattern=0.9),),
    )


def _make_program(
    name: str,
    matrix: int,
    sc: int,
    honor_sc: bool,
    leaf_pattern: float,
    placement: Placement | None,
) -> Program:
    if matrix < 2 or matrix & (matrix - 1):
        raise ValueError("matrix size must be a power of two >= 2")
    placement = placement or RoundRobin()

    def multiply(region_id: int, branch_regions, n: int, level: int):
        """One Strassen multiplication task.  The seven level-1 branches
        work on disjoint quadrant combinations, so each owns a region:
        this is what makes sibling *scatter* expensive — a branch's tasks
        reuse their region's cache footprint when kept together and cold-
        miss it when a central queue sprays them across sockets."""

        def body():
            spawn_more = (n > sc) if honor_sc else (level < _HARDCODED_LEVELS)
            if n <= sc or not spawn_more:
                # Multiply the whole submatrix serially in this grain
                # (naive triple loop at the true leaves: poor pattern).
                yield Work(_mult_request(region_id, n, leaf_pattern))
                return
            # Decomposition additions happen in the parent grain.
            yield Work(_add_request(region_id, n // 2))
            for k in range(7):
                child_region = (
                    branch_regions[k] if branch_regions else region_id
                )
                yield Spawn(
                    multiply(child_region, None, n // 2, level + 1),
                    loc=LOC_MULT,
                )
            yield TaskWait()
            # Recombination additions.
            yield Work(_add_request(region_id, n // 2))

        return body

    def main():
        region = yield Alloc(
            "matrices", 3 * matrix * matrix * _ELEM, placement
        )
        branch_regions = []
        for k in range(7):
            branch = yield Alloc(
                f"branch{k}", 3 * (matrix // 2) ** 2 * _ELEM, placement
            )
            branch_regions.append(branch.region_id)
        yield Spawn(
            multiply(region.region_id, branch_regions, matrix, 0),
            loc=LOC_MAIN,
        )
        yield TaskWait()

    return Program(
        name=name,
        body=main,
        input_summary=f"matrix={matrix} SC={sc} honor_sc={honor_sc}",
    )


def program(matrix: int = 2048, sc: int = 128) -> Program:
    """The original: the hard-coded two-level bound overrides SC."""
    return _make_program(
        "strassen", matrix, sc, honor_sc=False, leaf_pattern=0.35,
        placement=None,
    )


def program_fixed(
    matrix: int = 2048, sc: int = 128, leaf_pattern: float = 0.35
) -> Program:
    """The fix: recursion honors SC, exposing full parallelism.
    ``leaf_pattern`` > 0.35 models the catalogued follow-up fixes
    (blocked leaf multiplication / Morton ordering)."""
    return _make_program(
        "strassen-fixed", matrix, sc, honor_sc=True,
        leaf_pattern=leaf_pattern, placement=None,
    )
