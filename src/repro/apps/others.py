"""The Sec. 4.3.6 round-up benchmarks.

Grouped as in the paper by 48-core speedup with MIR:

Speedup over 30: Blackscholes (poor-MHU/low-benefit chunks),
367.imagick (five loops missing ``omp_throttle``), 372.smithwa
(imbalanced parallel blocks), NQueens and 358.botsalgn (linear scaling,
all metrics good), Fibonacci (teaching example: depth cutoffs control
leaf grain size).

Speedup under 20: UTS (poor parallel benefit across millions of tiny
grains), Bodytrack (small chunks, low MHU, serial sections), Floorplan
(non-deterministic pruning — represented by a seed parameter changing the
graph shape, mirroring its thread-count-dependent shape).
"""

from __future__ import annotations

from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..machine.memory import FirstTouch, RoundRobin
from ..runtime.actions import Alloc, ParallelFor, Spawn, TaskWait, Work
from ..runtime.api import Program
from ..runtime.loops import LoopSpec, Schedule
from .common import DeterministicRandom, linear_cycles

# ---------------------------------------------------------------------------
# Fibonacci
# ---------------------------------------------------------------------------
LOC_FIB = SourceLocation("fib.c", 33, "fib")


def fib_serial(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def _fib_leaf_cycles(n: int) -> int:
    """Serial recursive fib(n) costs ~phi^n call frames, ~12 cycles each."""
    return max(8, int(12 * (1.618 ** min(n, 30))))


def fib(n: int = 30, cutoff: int = 12) -> Program:
    """Task-parallel Fibonacci with a depth cutoff — the paper's teaching
    example: "the grain graph immediately demonstrates how depth cutoffs
    control recursion depth and amount of computation performed by leaf
    grains"."""

    def task(m: int, depth: int):
        def body():
            if m < 2 or depth >= cutoff:
                yield Work(WorkRequest(cycles=_fib_leaf_cycles(m)))
                return
            yield Spawn(task(m - 1, depth + 1), loc=LOC_FIB)
            yield Spawn(task(m - 2, depth + 1), loc=LOC_FIB)
            yield TaskWait()
            yield Work(WorkRequest(cycles=12))

        return body

    def main():
        yield Spawn(task(n, 0), loc=LOC_FIB)
        yield TaskWait()

    return Program("fib", main, input_summary=f"n={n} cutoff={cutoff}")


# ---------------------------------------------------------------------------
# NQueens — real board propagation, one task per safe placement.
# ---------------------------------------------------------------------------
LOC_NQUEENS = SourceLocation("nqueens.c", 28, "nqueens")


def nqueens(n: int = 10, cutoff: int = 4) -> Program:
    """BOTS NQueens (manual cutoff version): scales linearly and "all
    metrics indicate good behavior"."""

    def safe(board: tuple[int, ...], col: int) -> bool:
        row = len(board)
        return all(
            placed != col and abs(placed - col) != row - placed_row
            for placed_row, placed in enumerate(board)
        )

    def count_serial(board: tuple[int, ...]) -> int:
        if len(board) == n:
            return 1
        return sum(
            count_serial(board + (col,))
            for col in range(n)
            if safe(board, col)
        )

    def subtree_cycles(board: tuple[int, ...]) -> int:
        """Cost of exploring a subtree serially: ~35 cycles per node; the
        node count comes from the real solver."""
        nodes = _count_nodes(board)
        return max(20, 35 * nodes)

    def _count_nodes(board: tuple[int, ...]) -> int:
        if len(board) == n:
            return 1
        total = 1
        for col in range(n):
            if safe(board, col):
                total += _count_nodes(board + (col,))
        return total

    def task(board: tuple[int, ...]):
        def body():
            if len(board) >= cutoff or len(board) == n:
                yield Work(WorkRequest(cycles=subtree_cycles(board)))
                return
            spawned = False
            for col in range(n):
                if safe(board, col):
                    yield Spawn(task(board + (col,)), loc=LOC_NQUEENS)
                    spawned = True
            yield Work(WorkRequest(cycles=40))
            if spawned:
                yield TaskWait()

        return body

    def main():
        yield Spawn(task(()), loc=LOC_NQUEENS)
        yield TaskWait()

    return Program("nqueens", main, input_summary=f"n={n} cutoff={cutoff}")


# ---------------------------------------------------------------------------
# UTS — unbalanced tree search; geometric branching from a per-node hash.
# ---------------------------------------------------------------------------
LOC_UTS = SourceLocation("uts.c", 134, "parTreeSearch")


def uts(
    expected_nodes: int = 4000, branch: int = 2, decay: float = 0.96,
    max_depth: int = 48, seed: int = 42,
) -> Program:
    """UTS "suffers from poor parallel benefit for most of the 4 million
    grains" — tiny tasks, one per tree node, highly imbalanced subtrees.

    The tree shape is a pure function of (node id, depth, seed) — the
    per-node hash of real UTS — so it is identical on every run and
    thread count (schedule-independent grain identities hold).
    ``expected_nodes`` scales the subcritical branching process;
    ``max_depth`` is a hard cap like UTS's own depth bound.
    """
    # Galton-Watson sizing: mean children branch * decay^depth; the scale
    # knob shifts the supercritical region's width.
    import math

    scale = max(0.5, math.log2(max(2, expected_nodes)) / 11.0)

    def num_children(node_id: int, depth: int) -> int:
        if depth >= max_depth:
            return 0
        rng = DeterministicRandom(seed * 2654435761 + node_id * 40503 + depth)
        p = min(1.0, scale * decay ** depth)
        return sum(1 for _ in range(branch) if rng.uniform() < p)

    def task(node_id: int, depth: int):
        def body():
            yield Work(WorkRequest(cycles=180))  # the per-node "hash"
            for child in range(num_children(node_id, depth)):
                child_id = node_id * (branch + 1) + child + 1
                yield Spawn(task(child_id, depth + 1), loc=LOC_UTS)
            # fire-and-forget, as in UTS: sync at the region barrier

        return body

    def main():
        yield Spawn(task(0, 0), loc=LOC_UTS)

    return Program(
        "uts", main,
        input_summary=f"expected~{expected_nodes} b={branch} d={decay}",
    )


# ---------------------------------------------------------------------------
# Blackscholes — one parallel for-loop over options.
# ---------------------------------------------------------------------------
LOC_BLACKSCHOLES = SourceLocation("blackscholes.c", 370, "bs_thread")


def blackscholes(options: int = 40_000, chunk: int = 64) -> Program:
    """"Over 65% of chunks of the sole parallel for-loop ... have poor
    memory hierarchy utilization.  Around 33% of the chunks also have low
    parallel benefit": a streaming option-pricing loop whose working set
    (first-touch on the master node) never fits in cache."""

    def main():
        data = yield Alloc("options", options * 256, FirstTouch(0))
        rid = data.region_id

        def body(i: int) -> WorkRequest:
            return WorkRequest(
                cycles=420,
                accesses=(Access(rid, 256, pattern=0.5),),
            )

        yield ParallelFor(
            LoopSpec(
                iterations=options,
                body=body,
                schedule=Schedule.STATIC,
                chunk_size=chunk,
                loc=LOC_BLACKSCHOLES,
            )
        )

    return Program(
        "blackscholes", main, input_summary=f"options={options} chunk={chunk}"
    )


# ---------------------------------------------------------------------------
# 358.botsalgn — protein alignment: big uniform tasks, linear scaling.
# ---------------------------------------------------------------------------
LOC_ALIGN = SourceLocation("alignment.c", 560, "align")


def botsalgn(sequences: int = 200) -> Program:
    """358.botsalgn: one alignment task per sequence pair batch, all large
    and uniform — "scale[s] linearly and all metrics indicate good
    behavior"."""

    def task(size: int, rid: int):
        def body():
            yield Work(
                WorkRequest(
                    cycles=linear_cycles(size, per_element=900.0),
                    accesses=(Access(rid, size * 128, pattern=0.85),),
                )
            )

        return body

    def main():
        data = yield Alloc("sequences", sequences * 4096, RoundRobin())
        for i in range(sequences):
            yield Spawn(task(64, data.region_id), loc=LOC_ALIGN)
        yield TaskWait()

    return Program("358.botsalgn", main, input_summary=f"prot.{sequences}.aa")


# ---------------------------------------------------------------------------
# 372.smithwa — imbalanced parallel blocks.
# ---------------------------------------------------------------------------
LOC_MERGE_ALIGN = SourceLocation("mergeAlignment.c", 160, "mergeAlignment")
LOC_VERIFY = SourceLocation("verifyData.c", 46, "verifyData")


def smithwa(size: int = 34) -> Program:
    """372.smithwa: the ``mergeAlignment.c:160`` and ``verifyData.c:46``
    blocks "suffer from load imbalance, low memory hierarchy utilization
    and poor parallel benefit"; verifyData's imbalance hides from timings
    because the timed region excludes it — the grain graph shows it since
    "the graph represents the whole program"."""
    n = size * 40

    def main():
        data = yield Alloc("matrix", n * n * 2, FirstTouch(0))
        rid = data.region_id

        def merge_body(i: int) -> WorkRequest:
            skew = 1 + (7 if i % 37 == 0 else 0)  # few heavy rows
            return WorkRequest(
                cycles=300 * skew,
                accesses=(Access(rid, 1024 * skew, pattern=0.4),),
            )

        def verify_body(i: int) -> WorkRequest:
            # Strongly imbalanced triangular sweep.
            return WorkRequest(
                cycles=40 + 3 * i,
                accesses=(Access(rid, 256 + i, pattern=0.45),),
            )

        yield ParallelFor(
            LoopSpec(iterations=n, body=merge_body, schedule=Schedule.STATIC,
                     chunk_size=8, loc=LOC_MERGE_ALIGN)
        )
        yield ParallelFor(
            LoopSpec(iterations=n, body=verify_body, schedule=Schedule.STATIC,
                     loc=LOC_VERIFY)
        )

    return Program("372.smithwa", main, input_summary=f"input {size}")


# ---------------------------------------------------------------------------
# 367.imagick — filter chain; some loops miss omp_throttle.
# ---------------------------------------------------------------------------
_IMAGICK_THROTTLED = (
    SourceLocation("magick_resize.c", 2215, "HorizontalFilter"),
    SourceLocation("magick_effect.c", 1440, "ConvolveImage"),
)
_IMAGICK_UNTHROTTLED = (
    SourceLocation("magick_shear.c", 1694, "XShearImage"),
    SourceLocation("magick_decorate.c", 406, "FrameImage"),
    SourceLocation("magick_enhance.c", 3554, "NegateImage"),
    SourceLocation("magick_shear.c", 1474, "YShearImage"),
    SourceLocation("magick_transform.c", 650, "FlopImage"),
)


def imagick(rows: int = 960) -> Program:
    """367.imagick: loops carrying the conditional ``omp_throttle``
    macros chunk sensibly; the five loops that miss it run row-per-chunk
    with poor parallel benefit — "Our method points out these
    inconsistencies"."""

    def main():
        image = yield Alloc("image", rows * 1280 * 8, RoundRobin())
        rid = image.region_id
        for loc in _IMAGICK_THROTTLED:
            def heavy(i: int, rid=rid) -> WorkRequest:
                return WorkRequest(
                    cycles=120_000,
                    accesses=(Access(rid, 1280 * 8 * 16, pattern=0.7),),
                )
            yield ParallelFor(
                LoopSpec(iterations=rows // 16, body=heavy,
                         schedule=Schedule.STATIC, loc=loc)
            )
        for loc in _IMAGICK_UNTHROTTLED:
            def light(i: int, rid=rid) -> WorkRequest:
                return WorkRequest(
                    cycles=220,
                    accesses=(Access(rid, 1280, pattern=0.6),),
                )
            yield ParallelFor(
                LoopSpec(iterations=rows, body=light,
                         schedule=Schedule.DYNAMIC, chunk_size=1, loc=loc)
            )

    return Program(
        "367.imagick", main,
        # rows must appear here: the exec cache keys runs by
        # (name, input_summary, ...), so the summary has to pin the input.
        input_summary=f"-shear 31 -resize 1280x960 ... -edge 100 rows={rows}",
    )


# ---------------------------------------------------------------------------
# Bodytrack — small chunks in every function except CalcWeights.
# ---------------------------------------------------------------------------
LOC_CALC_WEIGHTS = SourceLocation(
    "ParticleFilterOMP.h", 64, "ParticleFilterOMP::CalcWeights"
)
LOC_FILTER_ROW = SourceLocation("FlexImageFilter.h", 114, "FlexFilterRowVOMP")
LOC_FILTER_COL = SourceLocation("FlexImageFilter.h", 153, "FlexFilterColumnVOMP")


def bodytrack(particles: int = 4000, rows: int = 480) -> Program:
    """Bodytrack: "chunks of parallel for-loops in all functions except
    ParticleFilterOMP::CalcWeights() suffer from poor parallel benefit and
    low memory hierarchy utilization.  Loop fusion might improve the
    scaling ... loops in FlexFilterRowVOMP() and FlexFilterColumnVOMP()"
    — plus serial sections between the loops."""

    def main():
        frame = yield Alloc("frame", rows * 640 * 4, FirstTouch(0))
        rid = frame.region_id

        def weights(i: int) -> WorkRequest:
            return WorkRequest(
                cycles=45_000, accesses=(Access(rid, 8192, pattern=0.8),)
            )

        def filter_row(i: int) -> WorkRequest:
            return WorkRequest(
                cycles=260, accesses=(Access(rid, 640 * 4, pattern=0.4),)
            )

        for _ in range(2):  # two frames
            yield ParallelFor(
                LoopSpec(iterations=rows, body=filter_row,
                         schedule=Schedule.DYNAMIC, chunk_size=1,
                         loc=LOC_FILTER_ROW)
            )
            yield ParallelFor(
                LoopSpec(iterations=rows, body=filter_row,
                         schedule=Schedule.DYNAMIC, chunk_size=1,
                         loc=LOC_FILTER_COL)
            )
            yield Work(WorkRequest(cycles=350_000))  # serial section
            yield ParallelFor(
                LoopSpec(iterations=particles // 100, body=weights,
                         schedule=Schedule.DYNAMIC, loc=LOC_CALC_WEIGHTS)
            )

    return Program(
        "bodytrack", main, input_summary=f"particles={particles} rows={rows}"
    )


# ---------------------------------------------------------------------------
# Floorplan — branch-and-bound with execution-order-dependent pruning.
# ---------------------------------------------------------------------------
LOC_FLOORPLAN = SourceLocation("floorplan.c", 219, "add_cell")


def floorplan(cells: int = 8, cutoff: int = 4, seed: int = 5) -> Program:
    """BOTS Floorplan: "a branch-and-bound optimal solution search that
    has non-deterministic behavior built-in due to pruning of the search
    space.  This behavior is reflected by the grain graph since the shape
    of the graph changes for different thread counts."

    Tasks explore cell placements and prune against a shared incumbent
    bound; which subtrees are pruned depends on the order tasks run, so
    the task tree (and hence the grain graph) legitimately differs across
    thread counts — while any single configuration stays deterministic.
    """
    rng = DeterministicRandom(seed)
    areas = [rng.randint(2, 9) for _ in range(cells)]
    # Initial incumbent: every cell in its worst orientation.
    best = [sum(areas) + cells]  # shared, tightened during the run

    def lower_bound(level: int, used: int) -> int:
        """Optimistic completion: every remaining cell at its bare area."""
        return used + sum(areas[level:])

    def explore(level: int, used: int):
        def body():
            yield Work(WorkRequest(cycles=260))
            if lower_bound(level, used) >= best[0]:
                return  # pruned: no children spawned
            for orientation in range(2):
                grown = used + areas[level] + orientation
                if lower_bound(level + 1, grown) >= best[0]:
                    continue
                if level + 1 < cutoff:
                    yield Spawn(explore(level + 1, grown), loc=LOC_FLOORPLAN)
                else:
                    # Serial exploration below the cutoff; it finds a
                    # completion of this partial placement and tightens
                    # the shared incumbent, which prunes siblings that
                    # run *later in execution order* — so the task tree
                    # depends on the schedule, as the paper observes.
                    yield Work(
                        WorkRequest(cycles=90 * (cells - level) ** 2)
                    )
                    completion = (
                        grown
                        + sum(areas[level + 1:])
                        + (cells - level - 1) // 2
                    )
                    if completion < best[0]:
                        best[0] = completion
            yield TaskWait()

        return body

    def main():
        best[0] = sum(areas) + cells  # reset per run
        yield Spawn(explore(0, 0), loc=LOC_FLOORPLAN)
        yield TaskWait()

    return Program(
        "floorplan", main, input_summary=f"cells={cells} cutoff={cutoff}"
    )
