"""Shared helpers for the benchmark applications.

Applications describe computation with :class:`WorkRequest` cost models
calibrated per algorithm (documented in each module); structure — which
tasks are created, when they synchronize, which loops run — follows the
original C sources.  The deterministic generator here replaces the
benchmarks' input files and ``rand()`` seeds.
"""

from __future__ import annotations

import math


class DeterministicRandom:
    """A tiny, fully deterministic LCG (Numerical Recipes constants).

    Substitutes the benchmarks' libc ``rand()`` so inputs are identical on
    every run and platform without carrying data files.
    """

    _A = 1664525
    _C = 1013904223
    _M = 2**32

    def __init__(self, seed: int = 20160312) -> None:  # PPoPP'16 dates
        self._state = seed % self._M

    def next_u32(self) -> int:
        self._state = (self._A * self._state + self._C) % self._M
        return self._state

    def uniform(self) -> float:
        """Float in [0, 1)."""
        return self.next_u32() / self._M

    def randint(self, lo: int, hi: int) -> int:
        """Integer in [lo, hi]."""
        if hi < lo:
            raise ValueError("empty range")
        return lo + self.next_u32() % (hi - lo + 1)

    def shuffle(self, items: list) -> None:
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u32() % (i + 1)
            items[i], items[j] = items[j], items[i]


def flops_cycles(flops: float, flops_per_cycle: float = 2.0) -> int:
    """Convert a flop estimate to compute cycles (superscalar factor 2)."""
    return max(1, int(flops / flops_per_cycle))


def nlogn_cycles(n: int, per_element: float = 4.0) -> int:
    """Cost of an O(n log n) phase over ``n`` elements."""
    if n <= 1:
        return max(1, int(per_element))
    return max(1, int(per_element * n * math.log2(n)))


def linear_cycles(n: int, per_element: float = 2.0) -> int:
    return max(1, int(per_element * n))
