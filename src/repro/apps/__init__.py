"""The paper's benchmark programs, re-expressed for the simulated runtime.

Each module provides ``program(...)`` factories returning
:class:`repro.runtime.Program` objects, in original (bugs included) and
optimized variants exactly as analysed in Sec. 2 and Sec. 4:

- :mod:`.kdtree` — SPEC 376.kdtree; the sweep recursion forgets to
  increment its depth, so the cutoff never fires (Sec. 2 / Fig. 2).
- :mod:`.sort` — BOTS Sort; non-uniform waxing/waning parallelism and
  NUMA work inflation fixed by round-robin pages (Sec. 4.3.1 / Fig. 5).
- :mod:`.sparselu` — SPEC 359.botsspar; two interleaved phases and
  widespread work inflation from the cache-unfriendly ``bmod`` loop
  (Sec. 4.3.2 / Fig. 6).
- :mod:`.fft` — BOTS FFT; too-small grains fixed by depth cutoffs, then
  poor memory-hierarchy utilization remains (Sec. 4.3.3 / Figs. 7-8).
- :mod:`.freqmine` — Parsec Freqmine; the skewed FPGF loop, incurable
  imbalance, core minimization (Sec. 4.3.4 / Figs. 9-10, Table 1).
- :mod:`.strassen` — BOTS Strassen; a hard-coded cutoff overrides the
  submatrix-size parameter (Sec. 4.3.5 / Fig. 11).
- :mod:`.others` — the Sec. 4.3.6 round-up: Blackscholes, 367.imagick,
  372.smithwa, NQueens, 358.botsalgn, Fibonacci, UTS, Bodytrack.
- :mod:`.micro` — the Fig. 3 illustration programs used by tests.
"""

from . import kdtree, sort, sparselu, fft, freqmine, strassen, others, micro

__all__ = [
    "kdtree",
    "sort",
    "sparselu",
    "fft",
    "freqmine",
    "strassen",
    "others",
    "micro",
]
