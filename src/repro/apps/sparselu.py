"""359.botsspar / SparseLU (Sec. 4.3.2, Figs. 1, 6).

Iterative task-based L-U factorization of a sparse blocked matrix.  For
each elimination step ``k``: factor the diagonal block (``lu0``), spawn
``fwd`` tasks for the non-null blocks of row ``k`` and ``bdiv`` tasks for
column ``k``, taskwait; then spawn a ``bmod`` task per non-null inner
block ``(i, j)`` and taskwait.  This produces the paper's "two distinct,
interleaved computation phases that expose gradually decreasing
parallelism" — the fwd/bdiv phase offers O(NB - k) tasks, the bmod phase
O((NB - k)^2).

The performance bug: ``bmod`` contains "a triple-nested loop with a
cache-unfriendly access pattern"; the paper's fix is a manual loop
interchange.  Here the access-pattern friendliness of the ``bmod``
accesses carries that distinction (0.3 original vs 0.9 interchanged),
which the cost model turns into stall cycles and — combined with
first-touch pages on the master's NUMA node — into widespread work
inflation, Fig. 6c/d.

Sparsity follows the BOTS generator shape: a deterministic pattern with
denser blocks near the diagonal (~45% overall fill).  Costs: ``lu0`` and
``bmod`` are O(B^3) block kernels, ``fwd``/``bdiv`` O(B^3) triangular
solves at roughly half the constant; all stream their blocks (8-byte
doubles).
"""

from __future__ import annotations

from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..machine.memory import Placement, FirstTouch
from ..runtime.actions import Alloc, Spawn, TaskWait, Work
from ..runtime.api import Program
from .common import DeterministicRandom, flops_cycles

LOC_LU0 = SourceLocation("sparselu.c", 222, "lu0")
LOC_FWD = SourceLocation("sparselu.c", 229, "fwd")
LOC_BDIV = SourceLocation("sparselu.c", 235, "bdiv")
LOC_BMOD = SourceLocation("sparselu.c", 246, "bmod")

_ELEM = 8  # doubles


def sparsity_pattern(nb: int, fill: float = 0.45, seed: int = 11) -> list[list[bool]]:
    """Deterministic block-sparsity map, denser near the diagonal (the
    BOTS generator's qualitative shape)."""
    rng = DeterministicRandom(seed)
    pattern = [[False] * nb for _ in range(nb)]
    for i in range(nb):
        for j in range(nb):
            distance = abs(i - j) / max(1, nb - 1)
            p = fill * (1.35 - 0.7 * distance)
            pattern[i][j] = (i == j) or rng.uniform() < p
    return pattern


def _block_kernel(
    region_id: int, b: int, flop_factor: float, pattern: float, blocks: int
) -> WorkRequest:
    """An O(B^3) kernel touching ``blocks`` BxB blocks."""
    return WorkRequest(
        cycles=flops_cycles(flop_factor * b * b * b),
        accesses=(
            Access(region_id, blocks * b * b * _ELEM, pattern=pattern),
        ),
    )


def program(
    nb: int = 30,
    block: int = 64,
    bmod_pattern: float = 0.3,
    placement: Placement | None = None,
    name: str = "359.botsspar",
    fill: float = 0.45,
) -> Program:
    """SparseLU.  ``bmod_pattern`` is the access friendliness of the
    ``bmod`` kernel: 0.3 models the original column-major inner loop, 0.9
    the interchanged (cache-friendly) version."""
    placement = placement or FirstTouch(0)
    pattern = sparsity_pattern(nb, fill=fill)

    def kernel_task(region_id: int, flop_factor: float, access_pattern: float,
                    blocks: int):
        def body():
            yield Work(
                _block_kernel(region_id, block, flop_factor, access_pattern, blocks)
            )
        return body

    def main():
        matrix = yield Alloc(
            "matrix", nb * nb * block * block * _ELEM, placement
        )
        rid = matrix.region_id
        # Mirror the BOTS in-place update of the sparsity map: bmod fills
        # in blocks as elimination proceeds.
        live = [row[:] for row in pattern]
        for k in range(nb):
            # lu0 on the diagonal block runs in the implicit task.
            yield Work(_block_kernel(rid, block, 1.0, 0.8, 1))
            for j in range(k + 1, nb):
                if live[k][j]:
                    yield Spawn(
                        kernel_task(rid, 0.5, 0.8, 2), loc=LOC_FWD,
                    )
            for i in range(k + 1, nb):
                if live[i][k]:
                    yield Spawn(
                        kernel_task(rid, 0.5, 0.8, 2), loc=LOC_BDIV,
                    )
            yield TaskWait()
            for i in range(k + 1, nb):
                if not live[i][k]:
                    continue
                for j in range(k + 1, nb):
                    if not live[k][j]:
                        continue
                    live[i][j] = True  # fill-in
                    yield Spawn(
                        kernel_task(rid, 2.0, bmod_pattern, 3), loc=LOC_BMOD,
                    )
            yield TaskWait()

    return Program(
        name=name,
        body=main,
        input_summary=(
            f"nb={nb} block={block} bmod_pattern={bmod_pattern} "
            f"pages={placement.describe()}"
        ),
    )


def program_interchanged(
    nb: int = 30, block: int = 64, placement: Placement | None = None
) -> Program:
    """The paper's fix: loop interchange in ``bmod`` for a cache-friendly
    access pattern."""
    return program(
        nb=nb,
        block=block,
        bmod_pattern=0.9,
        placement=placement,
        name="359.botsspar-interchanged",
    )
