"""Name -> :class:`Program` registry for every benchmark program.

The CLI, the study runner (:mod:`repro.exec`), and the test suites all
resolve programs through this table.  Keeping it importable without the
CLI matters for :mod:`repro.exec.runner`: process-pool workers rebuild
programs from ``(registry name, kwargs)`` pairs, because program bodies
are closures and cannot cross a process boundary.
"""

from __future__ import annotations

from typing import Callable

from ..runtime.api import Program
from . import fft, freqmine, kdtree, micro, others, sort, sparselu, strassen

PROGRAMS: dict[str, Callable[..., Program]] = {
    "kdtree": kdtree.program,
    "kdtree-fixed": kdtree.program_fixed,
    "sort": sort.program,
    "sort-roundrobin": sort.program_round_robin,
    "sort-lowcutoff": sort.program_low_cutoff,
    "botsspar": sparselu.program,
    "botsspar-interchanged": sparselu.program_interchanged,
    "fft": fft.program,
    "fft-optimized": fft.program_optimized,
    "strassen": strassen.program,
    "strassen-fixed": strassen.program_fixed,
    "freqmine": freqmine.program,
    "freqmine-7core": freqmine.program_seven_cores,
    "fib": others.fib,
    "floorplan": others.floorplan,
    "nqueens": others.nqueens,
    "uts": others.uts,
    "blackscholes": others.blackscholes,
    "botsalgn": others.botsalgn,
    "smithwa": others.smithwa,
    "imagick": others.imagick,
    "bodytrack": others.bodytrack,
    "fig3a": micro.fig3a,
    "fig3b": micro.fig3b,
    "racy": micro.racy,
    "racy-fixed": micro.racy_fixed,
}


# Shrunken inputs for the heavyweight entries, used by the regression
# suites (and CI smoke matrices) that iterate over *every* program: the
# properties under test — structural validity, determinism, round-trip
# fidelity — are shape properties, not size properties.
SMALL_INPUTS: dict[str, dict] = {
    "fft": dict(samples=1 << 12),
    "fft-optimized": dict(samples=1 << 12),
    "fib": dict(n=22, cutoff=10),
    "nqueens": dict(n=9),
    "sort": dict(elements=1 << 17),
    "sort-roundrobin": dict(elements=1 << 17),
    "sort-lowcutoff": dict(elements=1 << 17),
    "botsspar": dict(nb=10),
    "botsspar-interchanged": dict(nb=10),
    "uts": dict(expected_nodes=800),
    "imagick": dict(rows=240),
    "bodytrack": dict(particles=1000, rows=240),
    "blackscholes": dict(options=8000),
}


def resolve_small(name: str) -> Program:
    """Instantiate ``name`` with its :data:`SMALL_INPUTS` (if any)."""
    return resolve(name, **SMALL_INPUTS.get(name, {}))


def resolve(name: str, **kwargs) -> Program:
    """Instantiate the registered program ``name`` with input ``kwargs``."""
    try:
        factory = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; known: {', '.join(sorted(PROGRAMS))}"
        ) from None
    return factory(**kwargs)
