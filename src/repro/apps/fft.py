"""FFT from BOTS (Sec. 4.3.3, Figs. 1, 7, 8).

Recursive Cooley-Tukey 1-D DFT over complex samples.  "Many tasks are
created even for small inputs since several tasks are created for each
divide": each divide spawns four sub-transforms plus recursive
twiddle-generation tasks (``fft_twiddle_gen`` splits its range in halves,
as in BOTS), and the original program has *no* cutoff, so "most grains
are too small to provide parallel benefit".

The paper's optimization adds two recursion-depth cutoffs (found via the
graph's structural feedback, the heaviest candidate being the
``fft_aux`` call at ``fft.c:4680``); grains then show good parallel
benefit on every runtime, but "a majority of grains have poor memory
hierarchy utilization" remains (Fig. 8) because the butterfly access
pattern strides through the array — algorithmic change territory.

Source definitions carry the paper's Fig. 7 labels (``fft.c:4680``,
``fft.c:3522``, ``fft.c:2329``, ``fft.c:1511``).

Cost calibration: leaves cost ~6 n log2 n cycles, twiddle/combine passes
~3 n cycles, over 16-byte complex elements with stride pattern 0.6 —
enough misses that most grains sit below the MHU threshold of 2 (the
Fig. 8 signal) without the stalls swallowing the parallelism win of the
cutoff fix.
"""

from __future__ import annotations


from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..machine.memory import Placement, RoundRobin
from ..runtime.actions import Alloc, Spawn, TaskWait, Work
from ..runtime.api import Program
from .common import linear_cycles, nlogn_cycles

LOC_FFT_AUX = SourceLocation("fft.c", 4680, "fft_aux")
LOC_TWIDDLE = SourceLocation("fft.c", 3522, "fft_twiddle_gen")
LOC_UNSHUFFLE = SourceLocation("fft.c", 2329, "fft_unshuffle")
LOC_BASE = SourceLocation("fft.c", 1511, "fft_base")

_ELEM = 16  # complex doubles
_PATTERN = 0.6  # strided butterflies


def _leaf_request(region_id: int, n: int) -> WorkRequest:
    return WorkRequest(
        cycles=nlogn_cycles(n, per_element=6.0),
        accesses=(Access(region_id, n * _ELEM, pattern=_PATTERN),),
    )


def _twiddle_request(region_id: int, n: int) -> WorkRequest:
    return WorkRequest(
        cycles=linear_cycles(n, per_element=3.0),
        accesses=(Access(region_id, n * _ELEM, pattern=_PATTERN),),
    )


def program(
    samples: int = 1 << 16,
    base: int = 32,
    cutoff_depth: int | None = None,
    placement: Placement | None = None,
    name: str = "fft",
) -> Program:
    """BOTS FFT.  ``cutoff_depth=None`` is the original (no cutoff);
    setting it enables the paper's optimization — below that divide depth
    sub-transforms and twiddle ranges run serially inside one grain."""
    if samples < 4 or samples & (samples - 1):
        raise ValueError("samples must be a power of two >= 4")
    placement = placement or RoundRobin()
    # Serial-leaf size implied by the cutoff; twiddle recursion stops at
    # the same granularity ("the same cutoff could be used in several
    # places").
    serial_n = (
        max(base, samples >> (2 * cutoff_depth))
        if cutoff_depth is not None
        else base
    )

    def twiddle_leaf(region_id: int, n: int):
        def body():
            yield Work(_twiddle_request(region_id, n))

        return body

    def twiddle_gen(region_id: int, n: int):
        """Twiddle generation over ``n`` samples, one task per
        ``serial_n`` range (BOTS splits recursively; the flat split
        produces the same leaf grains with fewer zero-work parents)."""

        def body():
            if n <= serial_n:
                yield Work(_twiddle_request(region_id, n))
                return
            remaining = n
            while remaining > 0:
                piece = min(serial_n, remaining)
                yield Spawn(twiddle_leaf(region_id, piece), loc=LOC_TWIDDLE)
                remaining -= piece
            # Range-splitting bookkeeping happens in this grain.
            yield Work(_twiddle_request(region_id, max(1, n // 16)))
            yield TaskWait()

        return body

    def serial_subtree(region_id: int, n: int):
        """A whole sub-transform in one grain (below the cutoff)."""

        def body():
            yield Work(_leaf_request(region_id, n))

        return body

    def fft_aux(region_id: int, n: int, depth: int):
        def body():
            if n <= base:
                yield Work(_leaf_request(region_id, n))
                return
            quarter = n // 4
            # Decompose/bit-reversal copy pass before dividing.
            yield Work(_twiddle_request(region_id, n // 8))
            for _ in range(4):
                if cutoff_depth is not None and depth + 1 >= cutoff_depth:
                    yield Spawn(
                        serial_subtree(region_id, quarter), loc=LOC_FFT_AUX
                    )
                else:
                    yield Spawn(
                        fft_aux(region_id, quarter, depth + 1), loc=LOC_FFT_AUX
                    )
            yield TaskWait()
            # The combine/twiddle pass runs after the sub-transforms, as
            # two recursive task trees over each half of the range.
            yield Spawn(twiddle_gen(region_id, n // 2), loc=LOC_TWIDDLE)
            yield Spawn(twiddle_gen(region_id, n // 2), loc=LOC_TWIDDLE)
            yield TaskWait()
            yield Work(WorkRequest(cycles=200))  # glue

        return body

    def unshuffle_task(region_id: int, n: int):
        def body():
            yield Work(
                WorkRequest(
                    cycles=linear_cycles(n, per_element=1.2),
                    accesses=(Access(region_id, n * _ELEM, pattern=_PATTERN),),
                )
            )

        return body

    def main():
        data = yield Alloc("samples", samples * _ELEM, placement)
        rid = data.region_id
        # Bit-reversal unshuffle passes (tasked in BOTS).
        pieces = min(64, max(1, samples // max(serial_n, 1)))
        for _ in range(pieces):
            yield Spawn(unshuffle_task(rid, samples // pieces), loc=LOC_UNSHUFFLE)
        yield TaskWait()
        yield Spawn(fft_aux(rid, samples, 0), loc=LOC_FFT_AUX)
        yield TaskWait()

    return Program(
        name=name,
        body=main,
        input_summary=f"n={samples} base={base} cutoff_depth={cutoff_depth}",
    )


def program_optimized(
    samples: int = 1 << 16, cutoff_depth: int = 4, base: int = 32
) -> Program:
    """The paper's fix: recursion-depth cutoffs ("The same cutoff could be
    used in several places which allowed us to reduce the number of
    cutoffs to two")."""
    return program(
        samples=samples,
        base=base,
        cutoff_depth=cutoff_depth,
        name="fft-optimized",
    )
