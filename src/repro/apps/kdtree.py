"""376.kdtree from SPEC OMP 2012 (Sec. 2, Figs. 1-2).

The program builds a k-d tree over random points and then, in parallel,
(a) *sweeps* the tree with one task per node and (b) spawns a *search*
task per point to find neighbors within a radius.  A ``cutoff`` parameter
should stop task creation below a recursion depth, but
``kdnode::sweeptree()`` "has a recursive call where the depth is not
incremented", so the cutoff never fires and the reference input creates
1,488,595 tasks of mostly trivial size.

Variants:

- :func:`program` — the original, bug included.
- :func:`program_fixed` — the paper's fix: the depth is incremented on
  recursive calls and the sweep gets its own, separate cutoff ("We
  increase the value of the original cutoff from 2 to 8 and use 10 as the
  sweep cutoff").

The k-d tree is built for real (median splits over deterministic points),
so the task tree has the genuine shape; per-task costs are analytic:
sweeping a node is a handful of comparisons, searching is
O(log n + neighbors) node visits.

Cost calibration: a sweep visit is ~60 cycles and a neighbor search
~(140 log2 n + 30 k) cycles, touching the tree region.  With the paper's
small input (tree size 200, radius 10, cutoff 2) the buggy program yields
~740 grains — Fig. 2's count — because every one of the 2n-1 tree nodes
and every point becomes a task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..runtime.actions import Alloc, Spawn, TaskWait, Work
from ..runtime.api import Program
from .common import DeterministicRandom

LOC_SWEEP = SourceLocation("kdtree.cpp", 402, "kdnode::sweeptree")
LOC_SEARCH = SourceLocation("kdtree.cpp", 517, "kdnode::searchradius")
LOC_MAIN = SourceLocation("kdtree.cpp", 88, "main")

_POINT_BYTES = 24  # 3 doubles


@dataclass
class _KDNode:
    point: tuple[float, float, float]
    left: "_KDNode | None" = None
    right: "_KDNode | None" = None
    size: int = 1  # nodes in this subtree


def build_tree(n: int, seed: int = 7) -> _KDNode | None:
    """A real k-d tree over ``n`` deterministic points (median splits)."""
    rng = DeterministicRandom(seed)
    points = [
        (rng.uniform() * 100, rng.uniform() * 100, rng.uniform() * 100)
        for _ in range(n)
    ]

    def build(items: list, axis: int) -> _KDNode | None:
        if not items:
            return None
        items.sort(key=lambda p: p[axis])
        mid = len(items) // 2
        node = _KDNode(point=items[mid])
        node.left = build(items[:mid], (axis + 1) % 3)
        node.right = build(items[mid + 1 :], (axis + 1) % 3)
        node.size = (
            1
            + (node.left.size if node.left else 0)
            + (node.right.size if node.right else 0)
        )
        return node

    return build(points, 0)


def _sweep_cost(region_id: int) -> WorkRequest:
    """Visiting one tree node during the sweep: a few comparisons."""
    return WorkRequest(
        cycles=60,
        accesses=(Access(region_id, 2 * _POINT_BYTES, pattern=0.6),),
    )


def _search_cost(region_id: int, tree_size: int, radius: float) -> WorkRequest:
    """One radius search: ~log2(n) descent plus neighbor scanning."""
    log_n = max(1.0, math.log2(max(2, tree_size)))
    expected_neighbors = min(tree_size, max(1, int(radius * 0.8)))
    visits = int(60 * log_n + 15 * expected_neighbors)
    return WorkRequest(
        cycles=visits,
        accesses=(
            Access(
                region_id,
                (int(log_n) + expected_neighbors) * _POINT_BYTES,
                pattern=0.5,  # pointer chasing through the tree
            ),
        ),
    )


def _make_program(
    name: str,
    tree_size: int,
    radius: float,
    cutoff: int,
    fixed: bool,
    sweep_cutoff: int,
) -> Program:
    root = build_tree(tree_size)

    def serial_subtree_request(node: _KDNode, region_id: int) -> WorkRequest:
        """Sweeping a whole subtree — visits plus per-point searches —
        inside one grain (what happens below an effective cutoff)."""
        log_n = max(1.0, math.log2(max(2, tree_size)))
        neighbors = min(tree_size, max(1, int(radius * 0.8)))
        per_point = int(60 + 60 * log_n + 15 * neighbors)
        return WorkRequest(
            cycles=per_point * node.size,
            accesses=(
                Access(
                    region_id,
                    node.size * (int(log_n) + neighbors) * _POINT_BYTES,
                    pattern=0.5,
                ),
            ),
        )

    def search(region_id: int):
        """One find-neighbors task for a single point."""

        def body():
            yield Work(_search_cost(region_id, tree_size, radius))

        return body

    def sweep(node: _KDNode, depth: int, region_id: int):
        """One sweep task: visit the node, spawn the point's search task,
        recurse.  In the original, the recursive Spawn passes ``depth``
        unchanged — the SPEC bug that defeats the cutoff; the fix passes
        ``depth + 1`` and checks the dedicated sweep cutoff."""

        def body():
            yield Work(_sweep_cost(region_id))
            yield Spawn(search(region_id), loc=LOC_SEARCH)
            limit = sweep_cutoff if fixed else cutoff
            for child in (node.left, node.right):
                if child is None:
                    continue
                child_depth = depth + 1 if fixed else depth  # <-- the bug
                if child_depth < limit:
                    yield Spawn(
                        sweep(child, child_depth, region_id), loc=LOC_SWEEP
                    )
                else:
                    # Below the cutoff the whole subtree (sweep visits and
                    # its points' searches) runs serially in this grain.
                    yield Work(serial_subtree_request(child, region_id))
            # Fire-and-forget, as in the original: synchronization happens
            # at the end of the parallel region.

        return body

    def main():
        region = yield Alloc("kdtree", tree_size * 3 * _POINT_BYTES)
        if root is not None:
            yield Spawn(sweep(root, 0, region.region_id), loc=LOC_SWEEP)
        yield TaskWait()

    return Program(
        name=name,
        body=main,
        input_summary=(
            f"tree={tree_size} radius={radius} cutoff={cutoff}"
            + (f" sweep_cutoff={sweep_cutoff}" if fixed else "")
        ),
    )


def program(
    tree_size: int = 200, radius: float = 10.0, cutoff: int = 2
) -> Program:
    """The original 376.kdtree with the missing depth increment."""
    return _make_program(
        "376.kdtree", tree_size, radius, cutoff, fixed=False, sweep_cutoff=0
    )


def program_fixed(
    tree_size: int = 200,
    radius: float = 10.0,
    cutoff: int = 8,
    sweep_cutoff: int = 10,
) -> Program:
    """The paper's fix: incremented depth plus a separate sweep cutoff."""
    return _make_program(
        "376.kdtree-fixed", tree_size, radius, cutoff,
        fixed=True, sweep_cutoff=sweep_cutoff,
    )
