"""Sort from BOTS (Sec. 4.3.1, Figs. 1, 4, 5).

"Sort is a recursive fork-join task-based program from BOTS that sorts an
array using divide-and-conquer in three phases.  The first phase uses
parallel merge-sort, the second phase uses sequential quick sort, and the
third uses sequential insertion sort.  Phase shifts occur when the size
of the divided array reaches thresholds specified by cutoffs."

Structure follows BOTS cilksort: ``sort(n)`` splits into four quarters,
spawns four recursive sorts, taskwaits, then merges pairs with two
parallel ``cilkmerge`` tasks followed by a final merge; ``cilkmerge``
itself recurses with binary splits down to a merge cutoff.  Leaves below
``quick_cutoff`` run quicksort (with insertion sort below
``insertion_cutoff`` folded into the same grain, as in BOTS).

The paper's findings this program reproduces:

- non-uniform, waxing-and-waning parallelism: the merge tree near the
  root exposes fewer, larger grains, so instantaneous parallelism dips
  below the 48 cores repeatedly (Fig. 5a);
- lowering the cutoffs raises parallelism but creates grains too small to
  pay for themselves — ~48% with low parallel benefit (Fig. 5b);
- work inflation from first-touch page placement (all pages on the
  master's node), reduced by round-robin distribution: the Sec. 4.3.1
  table's 68.54% -> 37.08% inflated and 56.05% -> 30.11% poor-MHU moves.

Cost calibration: quicksort leaves cost ~7 n log2 n cycles and stream
their subarray (8-byte elements); merges cost ~3.5 n cycles and stream
both inputs and the output.  Sizes are in elements; the evaluation input
of the paper is 16M elements (scaled down by default here).
"""

from __future__ import annotations

import math

from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..machine.memory import Placement, FirstTouch, RoundRobin
from ..runtime.actions import Alloc, Spawn, TaskWait, Work
from ..runtime.api import Program
from .common import nlogn_cycles, linear_cycles

LOC_SORT = SourceLocation("sort.c", 329, "cilksort_par")
LOC_MERGE = SourceLocation("sort.c", 219, "cilkmerge_par")
LOC_QUICK = SourceLocation("sort.c", 128, "seqquick")
LOC_MAIN = SourceLocation("sort.c", 401, "sort_par")

_ELEM = 8  # 8-byte keys, as in BOTS


def _quick_request(region_id: int, n: int) -> WorkRequest:
    return WorkRequest(
        cycles=nlogn_cycles(n, per_element=7.0),
        accesses=(Access(region_id, 3 * n * _ELEM, pattern=0.55),),
    )


def _merge_request(region_id: int, tmp_id: int, n: int) -> WorkRequest:
    return WorkRequest(
        cycles=linear_cycles(n, per_element=3.5),
        accesses=(
            Access(region_id, n * _ELEM, pattern=0.7),
            Access(tmp_id, n * _ELEM, pattern=0.7),
        ),
    )


def program(
    elements: int = 1 << 20,
    quick_cutoff: int = 1 << 14,
    merge_cutoff: int = 1 << 14,
    placement: Placement | None = None,
    name: str = "sort",
) -> Program:
    """BOTS Sort.  ``placement`` switches the array's page policy:
    ``None``/:class:`FirstTouch` is the original; :class:`RoundRobin` is
    the paper's optimization."""
    if elements < 4:
        raise ValueError("need at least 4 elements")
    placement = placement or FirstTouch(0)

    def cilkmerge(region_id: int, tmp_id: int, n: int):
        """Merge ``n`` elements; binary split above the merge cutoff."""

        def body():
            if n <= merge_cutoff:
                yield Work(_merge_request(region_id, tmp_id, n))
                return
            half = n // 2
            yield Spawn(cilkmerge(region_id, tmp_id, half), loc=LOC_MERGE)
            yield Spawn(cilkmerge(region_id, tmp_id, n - half), loc=LOC_MERGE)
            yield TaskWait()
            # Binary-search split of the merge ranges.
            yield Work(
                WorkRequest(cycles=int(20 * math.log2(max(2, n))))
            )

        return body

    def cilksort(region_id: int, tmp_id: int, n: int):
        def body():
            if n <= quick_cutoff:
                # Phases two and three: sequential quicksort finishing
                # with insertion sort, one grain.
                yield Work(_quick_request(region_id, n))
                return
            quarter = n // 4
            sizes = [quarter, quarter, quarter, n - 3 * quarter]
            for size in sizes:
                yield Spawn(cilksort(region_id, tmp_id, size), loc=LOC_SORT)
            yield TaskWait()
            # Merge quarters pairwise in parallel, then the halves.
            yield Spawn(
                cilkmerge(region_id, tmp_id, sizes[0] + sizes[1]),
                loc=LOC_MERGE,
            )
            yield Spawn(
                cilkmerge(region_id, tmp_id, sizes[2] + sizes[3]),
                loc=LOC_MERGE,
            )
            yield TaskWait()
            yield Work(_merge_request(region_id, tmp_id, n))

        return body

    def main():
        array = yield Alloc("array", elements * _ELEM, placement)
        tmp = yield Alloc("tmp", elements * _ELEM, placement)
        yield Spawn(
            cilksort(array.region_id, tmp.region_id, elements), loc=LOC_MAIN
        )
        yield TaskWait()

    return Program(
        name=name,
        body=main,
        input_summary=(
            f"n={elements} quick_cutoff={quick_cutoff} "
            f"merge_cutoff={merge_cutoff} pages={placement.describe()}"
        ),
    )


def program_round_robin(
    elements: int = 1 << 20,
    quick_cutoff: int = 1 << 14,
    merge_cutoff: int = 1 << 14,
) -> Program:
    """The paper's optimization: round-robin page distribution."""
    return program(
        elements=elements,
        quick_cutoff=quick_cutoff,
        merge_cutoff=merge_cutoff,
        placement=RoundRobin(),
        name="sort-roundrobin",
    )


def program_low_cutoff(
    elements: int = 1 << 20, factor: int = 32
) -> Program:
    """The Fig. 5b experiment: cutoffs lowered by ``factor`` to raise
    instantaneous parallelism — grains become too small to be worth it."""
    return program(
        elements=elements,
        quick_cutoff=max(4, (1 << 14) // factor),
        merge_cutoff=max(4, (1 << 14) // factor),
        name="sort-lowcutoff",
    )
