"""Freqmine from Parsec (Sec. 4.3.4, Figs. 9-10, Table 1).

Parallel-for based FP-growth frequent-itemset mining.  The performance
problem lives in the dynamically scheduled loop in
``FP_tree::FP_growth_first()`` (*FPGF*): "grains of FPGF have uneven
size ... Most grains are small and provide poor parallel benefit.  Only a
few grains are large.  ...  the large grains execute single loop
iterations that are spaced irregularly across the iteration range".

Program shape (simlarge-equivalent, scaled):

- two setup loops (database scan, FP-tree build) of 1554 iterations each,
- three instances of the FPGF loop, 1292 iterations, dynamic schedule
  with chunk size one; "The loop is instantiated thrice and the second
  instance takes up 70% of the program execution time."

With the root grain this gives the 6985 grains of Fig. 9.  The second
FPGF instance carries twelve large iterations at deterministic, irregular
positions; their sizes are calibrated so the paper's numbers emerge from
the definition of load balance: ~35 on 48 cores, ~1.06 on 7 cores, a
makespan bound by the largest grain on both, a ~6.6-7.2x speedup ceiling,
and a bin-packing minimum of 7 cores (Table 1).

:func:`program_seven_cores` is the paper's resource fix: ``num_threads``
set to 7 on the dominant instance.
"""

from __future__ import annotations

from ..common import SourceLocation
from ..machine.cost import Access, WorkRequest
from ..machine.memory import RoundRobin
from ..runtime.actions import Alloc, ParallelFor
from ..runtime.api import Program
from ..runtime.loops import LoopSpec, Schedule

LOC_FPGF = SourceLocation("fp_tree.cpp", 1437, "FP_tree::FP_growth_first")
LOC_SCAN = SourceLocation("fp_tree.cpp", 211, "FP_tree::scan1_DB")
LOC_BUILD = SourceLocation("fp_tree.cpp", 688, "FP_tree::scan2_DB")

FPGF_ITERATIONS = 1292
SETUP_ITERATIONS = 1554

# Large-iteration placement: irregular, spread over the range, not
# clustered ("spaced irregularly across the iteration range and not
# isolated to a particular portion").
_LARGE_POSITIONS = (37, 149, 263, 389, 449, 587, 683, 787, 887, 1013, 1117, 1231)
# Size fractions of the largest grain; see module docstring calibration.
_LARGE_FRACTIONS = (
    1.0, 0.82, 0.70, 0.60, 0.52, 0.45, 0.40, 0.36, 0.32, 0.29, 0.26, 0.23,
)

LMAX_CYCLES = 3_000_000
SMALL_CYCLES = 2_700
_SETUP_CYCLES = 500
_ITEM_BYTES = 48


def fpgf_iteration_cycles(
    i: int, heavy_scale: float = 1.0, small_scale: float = 1.0
) -> int:
    """Cost of FPGF iteration ``i``.  ``heavy_scale`` scales the large
    iterations and ``small_scale`` the background ones; the second
    instance uses (1.0, 1.0), the first and third are lighter, keeping
    instance two at ~70% of program time."""
    try:
        index = _LARGE_POSITIONS.index(i)
    except ValueError:
        return max(1, int(SMALL_CYCLES * small_scale))
    return max(
        int(SMALL_CYCLES * small_scale),
        int(LMAX_CYCLES * _LARGE_FRACTIONS[index] * heavy_scale),
    )


def _fpgf_loop(
    region_id: int, heavy_scale: float, num_threads=None, small_scale: float = 1.0
) -> LoopSpec:
    def body(i: int) -> WorkRequest:
        cycles = fpgf_iteration_cycles(i, heavy_scale, small_scale)
        touched = _ITEM_BYTES * max(8, cycles // 600)
        return WorkRequest(
            cycles=cycles,
            accesses=(Access(region_id, touched, pattern=0.55),),
        )

    return LoopSpec(
        iterations=FPGF_ITERATIONS,
        body=body,
        schedule=Schedule.DYNAMIC,
        chunk_size=1,
        num_threads=num_threads,
        loc=LOC_FPGF,
    )


def _setup_loop(region_id: int, loc: SourceLocation) -> LoopSpec:
    def body(i: int) -> WorkRequest:
        return WorkRequest(
            cycles=_SETUP_CYCLES,
            accesses=(Access(region_id, 40 * _ITEM_BYTES, pattern=0.8),),
        )

    return LoopSpec(
        iterations=SETUP_ITERATIONS,
        body=body,
        schedule=Schedule.DYNAMIC,
        chunk_size=1,
        loc=loc,
    )


def program(
    fpgf_threads: int | None = None, name: str = "freqmine"
) -> Program:
    """Freqmine (simlarge-equivalent).  ``fpgf_threads`` caps the team of
    the dominant second FPGF instance (the paper's fix uses 7)."""

    def main():
        db = yield Alloc("transaction_db", 64 << 20, RoundRobin())
        rid = db.region_id
        yield ParallelFor(_setup_loop(rid, LOC_SCAN))
        yield ParallelFor(_setup_loop(rid, LOC_BUILD))
        # Three FPGF instances; the second dominates (~70% of exec time).
        yield ParallelFor(_fpgf_loop(rid, heavy_scale=0.08, small_scale=0.5))
        yield ParallelFor(_fpgf_loop(rid, heavy_scale=1.0, num_threads=fpgf_threads))
        yield ParallelFor(_fpgf_loop(rid, heavy_scale=0.05, small_scale=0.5))

    return Program(
        name=name,
        body=main,
        input_summary=(
            f"db=kosarak_990k-equivalent min_support=11000 "
            f"fpgf_threads={fpgf_threads or 'all'}"
        ),
    )


def program_seven_cores() -> Program:
    """The paper's optimization: 7 threads for the dominant instance."""
    return program(fpgf_threads=7, name="freqmine-7core")
