"""Micro programs: the Fig. 3 illustrations and test fixtures.

- :func:`fig3a` — "Task foo creates tasks bar and baz, performs
  computation in-between and synchronizes with the children tasks."
- :func:`fig3b` — "Iteration space is divided into 5 chunks of size 4 and
  distributed evenly on two threads."
- :func:`fire_and_forget` — a sweep-style tree without taskwaits,
  synchronizing at the region barrier.
- :func:`serial_only` — a program with no parallel constructs at all.
- :func:`racy` / :func:`racy_fixed` — the seeded data-race fixture for
  ``repro.lint``'s happens-before checker: two sibling tasks write one
  region with no ordering ``TaskWait`` (and the corrected variant).
"""

from __future__ import annotations

from ..common import SourceLocation
from ..machine.cost import WorkRequest
from ..runtime.actions import Alloc, Footprint, ParallelFor, Spawn, TaskWait, Work
from ..runtime.api import Program
from ..runtime.loops import LoopSpec, Schedule

LOC_FOO = SourceLocation("fig3.c", 2, "foo")
LOC_BAR = SourceLocation("fig3.c", 4, "bar")
LOC_BAZ = SourceLocation("fig3.c", 7, "baz")
LOC_LOOP = SourceLocation("fig3.c", 20, "loop")
LOC_SWEEP = SourceLocation("micro.c", 40, "sweep")
LOC_RACY = SourceLocation("racy.c", 12, "update")


def _leaf(cycles: int):
    def body():
        yield Work(WorkRequest(cycles=cycles))

    return body


def fig3a(
    bar_cycles: int = 3000, baz_cycles: int = 2000, between: int = 500
) -> Program:
    """The Fig. 3a task program."""

    def foo():
        yield Work(WorkRequest(cycles=1000))
        yield Spawn(_leaf(bar_cycles), loc=LOC_BAR, label="bar")
        yield Work(WorkRequest(cycles=between))
        yield Spawn(_leaf(baz_cycles), loc=LOC_BAZ, label="baz")
        yield Work(WorkRequest(cycles=between))
        yield TaskWait()
        yield Work(WorkRequest(cycles=200))

    def main():
        yield Spawn(foo, loc=LOC_FOO, label="foo")
        yield TaskWait()

    return Program(
        "fig3a", main,
        input_summary=(
            f"foo/bar/baz bar={bar_cycles} baz={baz_cycles} between={between}"
        ),
    )


def fig3b(
    iterations: int = 20, chunk: int = 4, threads: int = 2,
    iter_cycles: int = 250,
) -> Program:
    """The Fig. 3b loop program: 5 chunks of 4 on two threads."""

    def main():
        yield ParallelFor(
            LoopSpec(
                iterations=iterations,
                chunk_size=chunk,
                num_threads=threads,
                body=lambda i: WorkRequest(cycles=iter_cycles),
                schedule=Schedule.STATIC,
                loc=LOC_LOOP,
            )
        )

    return Program(
        "fig3b", main,
        input_summary=(
            f"n={iterations} chunk={chunk} T={threads} iter={iter_cycles}"
        ),
    )


def fire_and_forget(depth: int = 5, work: int = 300) -> Program:
    """A binary sweep without taskwaits (region-barrier sync)."""

    def sweep(level: int):
        def body():
            yield Work(WorkRequest(cycles=work))
            if level < depth:
                yield Spawn(sweep(level + 1), loc=LOC_SWEEP)
                yield Spawn(sweep(level + 1), loc=LOC_SWEEP)

        return body

    def main():
        yield Spawn(sweep(0), loc=LOC_SWEEP)

    return Program("fire_and_forget", main, input_summary=f"depth={depth}")


def serial_only(cycles: int = 10_000) -> Program:
    """No parallel constructs: one root grain."""

    def main():
        yield Work(WorkRequest(cycles=cycles))

    return Program("serial_only", main, input_summary=f"cycles={cycles}")


def _writer(cycles: int, start: int, end: int):
    def body():
        yield Work(
            WorkRequest(cycles=cycles),
            writes=(Footprint("shared", start, end),),
        )

    return body


def racy(size_bytes: int = 4096, cycles: int = 800) -> Program:
    """Two sibling tasks write the whole of one region with no ordering
    ``TaskWait`` between the spawns: a schedule-dependent outcome that
    ``race.conflict`` must flag (write/write, and read/write against the
    parent's post-wait read)."""

    def main():
        yield Alloc("shared", size_bytes)
        yield Spawn(_writer(cycles, 0, size_bytes), loc=LOC_RACY, label="w0")
        yield Spawn(_writer(cycles, 0, size_bytes), loc=LOC_RACY, label="w1")
        yield TaskWait()
        yield Work(
            WorkRequest(cycles=100),
            reads=(Footprint("shared", 0, size_bytes),),
        )

    return Program(
        "racy", main, input_summary=f"bytes={size_bytes} cycles={cycles}"
    )


def racy_fixed(size_bytes: int = 4096, cycles: int = 800) -> Program:
    """The corrected :func:`racy`: a ``TaskWait`` between the spawns
    orders the writers, and disjoint halves would also have sufficed.
    ``race.conflict`` must report nothing here."""

    def main():
        yield Alloc("shared", size_bytes)
        yield Spawn(_writer(cycles, 0, size_bytes), loc=LOC_RACY, label="w0")
        yield TaskWait()
        yield Spawn(_writer(cycles, 0, size_bytes), loc=LOC_RACY, label="w1")
        yield TaskWait()
        yield Work(
            WorkRequest(cycles=100),
            reads=(Footprint("shared", 0, size_bytes),),
        )

    return Program(
        "racy_fixed", main,
        input_summary=f"bytes={size_bytes} cycles={cycles}",
    )
