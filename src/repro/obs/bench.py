"""The perf-trajectory harness behind ``grain-graphs bench``.

A bench run executes a *pinned* program × flavor × threads matrix
through :class:`repro.exec.StudyRunner` against a cold, throwaway
cache, with the process-wide observability registry reset at the
start — so per-stage wall-clock, engine throughput, cache traffic, and
peak RSS all describe exactly this matrix and nothing else.

The result is a :class:`BenchReport`, serialized as
``BENCH_<iso-date>.json`` (schema ``grain-bench/v1``; documented in
README.md).  Reports are the repo's perf trajectory: every future
hot-path PR is judged by comparing its report ``--against`` the
previous one.  :func:`compare` computes per-stage deltas and flags
regressions past a wall-clock threshold; deterministic counters
(engine events, tasks, cache ops) are reported as drift but never
gate, since they legitimately change whenever simulator behavior does.

Wall-clock thresholds are per *stage*, guarded by an absolute floor
(``min_seconds``) so a 3 ms stage jittering to 5 ms cannot fail a run.
"""

from __future__ import annotations

import json
import platform
import resource
import time
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Mapping, Sequence

from ..exec.cache import RunCache
from ..exec.runner import MatrixPoint, StudyRunner
from . import registry as obs
from .export import ObsSnapshot, to_prometheus

BENCH_SCHEMA = "grain-bench/v1"

# The pinned default matrix: 8 programs x 2 flavors at 8 threads, with
# inputs small enough that a full bench stays interactive (seconds, not
# minutes) yet large enough that stage timings dominate span overhead.
_PINNED = (
    ("fib", {"n": 18, "cutoff": 9}),
    ("nqueens", {"n": 7}),
    ("uts", {"expected_nodes": 800}),
    ("fig3a", {}),
    ("fig3b", {}),
    ("racy-fixed", {}),
    ("sort", {"elements": 1 << 15}),
    ("fft", {"samples": 1 << 10}),
)
_FLAVORS = ("MIR", "GCC")


def default_matrix(quick: bool = False) -> list[MatrixPoint]:
    """The pinned bench matrix (``quick`` halves thread count only —
    coverage stays at the full program x flavor grid so every trajectory
    file is comparable in shape)."""
    threads = 4 if quick else 8
    return [
        MatrixPoint.of(name, flavor, threads, **kwargs)
        for name, kwargs in _PINNED
        for flavor in _FLAVORS
    ]


@dataclass
class BenchReport:
    """One point on the perf trajectory, as written to BENCH_*.json."""

    created: str
    quick: bool
    jobs: int
    matrix: list[dict[str, object]]
    host: dict[str, object]
    totals: dict[str, int | float]
    stages: dict[str, dict[str, float]]
    counters: dict[str, float]
    schema: str = BENCH_SCHEMA

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "schema": self.schema,
            "created": self.created,
            "quick": self.quick,
            "jobs": self.jobs,
            "matrix": self.matrix,
            "host": self.host,
            "totals": self.totals,
            "stages": self.stages,
            "counters": self.counters,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchReport":
        schema = payload.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"unsupported bench schema {schema!r}; expected {BENCH_SCHEMA!r}"
            )
        return cls(
            created=str(payload.get("created", "")),
            quick=bool(payload.get("quick", False)),
            jobs=int(payload.get("jobs", 1)),
            matrix=list(payload.get("matrix", ())),
            host=dict(payload.get("host", {})),
            totals=dict(payload.get("totals", {})),
            stages=dict(payload.get("stages", {})),
            counters=dict(payload.get("counters", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: bench report must be a JSON object")
        return cls.from_dict(payload)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def filename(self) -> str:
        """Canonical trajectory filename: ``BENCH_<iso-date>.json``."""
        date = self.created.split("T")[0] if self.created else "undated"
        return f"BENCH_{date}.json"


def _peak_rss_kib() -> float:
    """Peak resident set of this process and its (pool) children, KiB."""
    self_kib = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    child_kib = float(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return max(self_kib, child_kib)


def run_bench(
    points: Sequence[MatrixPoint] | None = None,
    quick: bool = False,
    jobs: int = 1,
    created: str | None = None,
) -> BenchReport:
    """Execute the bench matrix cold and assemble its trajectory report.

    Resets the process-wide observability registry first, so the
    snapshot embedded in the report covers exactly this run.
    """
    if points is None:
        points = default_matrix(quick=quick)
    if created is None:
        created = time.strftime("%Y-%m-%dT%H:%M:%S")
    obs.reset()
    started = time.perf_counter()
    with TemporaryDirectory(prefix="grain-bench-") as cold_root:
        cache = RunCache(cold_root)
        runner = StudyRunner(cache=cache, jobs=jobs)
        studies = runner.run_matrix(list(points))
        cache_stats = cache.stats
        wall = time.perf_counter() - started

    snap = obs.snapshot()
    engine_events = float(snap.counters.get("engine.events_emitted", 0))
    engine_seconds = (
        snap.spans["engine.run"].total_seconds
        if "engine.run" in snap.spans
        else 0.0
    )
    probes = cache_stats.trace_hits + cache_stats.trace_misses
    totals: dict[str, int | float] = {
        "wall_seconds": wall,
        "points": len(studies),
        "simulations": runner.simulated,
        "engine_seconds": engine_seconds,
        "engine_events": engine_events,
        "events_per_second": (
            engine_events / engine_seconds if engine_seconds else 0.0
        ),
        "cache_trace_hits": cache_stats.trace_hits,
        "cache_trace_misses": cache_stats.trace_misses,
        "cache_trace_stores": cache_stats.trace_stores,
        "cache_hit_ratio": (
            cache_stats.trace_hits / probes if probes else 0.0
        ),
        "peak_rss_kib": _peak_rss_kib(),
    }
    stages = {
        name: {
            "count": float(record.count),
            "total_seconds": record.total_seconds,
            "mean_seconds": record.mean_seconds,
            "max_seconds": record.max_seconds,
            "share": record.total_seconds / wall if wall else 0.0,
        }
        for name, record in snap.spans.items()
    }
    counters = {name: float(v) for name, v in snap.counters.items()}
    return BenchReport(
        created=created,
        quick=quick,
        jobs=jobs,
        matrix=[
            {
                "program": p.program,
                "flavor": p.flavor,
                "threads": p.threads,
                "kwargs": dict(p.kwargs),
            }
            for p in points
        ],
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        totals=totals,
        stages=stages,
        counters=counters,
    )


def bench_snapshot(report: BenchReport) -> ObsSnapshot:
    """Rebuild an :class:`ObsSnapshot` view of a report (for Prometheus
    export of an already-written trajectory file)."""
    from .export import SpanRecord
    from .registry import derive_gauges

    spans = {
        name: SpanRecord(
            name=name,
            count=int(fields.get("count", 0)),
            total_seconds=float(fields.get("total_seconds", 0.0)),
            min_seconds=0.0,
            max_seconds=float(fields.get("max_seconds", 0.0)),
        )
        for name, fields in report.stages.items()
    }
    counters = dict(report.counters)
    return ObsSnapshot(
        spans=spans,
        counters=counters,
        derived=derive_gauges(spans, counters),
    )


def report_prometheus(report: BenchReport) -> str:
    return to_prometheus(bench_snapshot(report))


# ---------------------------------------------------------------------------
# Trajectory comparison (--against)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StageDelta:
    stage: str
    previous_seconds: float
    current_seconds: float
    regression: bool

    @property
    def ratio(self) -> float:
        if self.previous_seconds == 0.0:
            return 1.0 if self.current_seconds == 0.0 else float("inf")
        return self.current_seconds / self.previous_seconds


@dataclass
class BenchComparison:
    threshold: float
    min_seconds: float
    wall_delta: StageDelta
    stages: list[StageDelta] = field(default_factory=list)
    counter_drift: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def regressions(self) -> list[StageDelta]:
        flagged = [d for d in self.stages if d.regression]
        if self.wall_delta.regression:
            flagged.insert(0, self.wall_delta)
        return flagged

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"{'stage':32} {'prev(s)':>10} {'cur(s)':>10} {'ratio':>7}",
        ]
        lines.append("-" * len(lines[0]))
        rows = [self.wall_delta] + sorted(
            self.stages, key=lambda d: -d.current_seconds
        )
        for d in rows:
            marker = "  << REGRESSION" if d.regression else ""
            ratio = f"{d.ratio:7.2f}" if d.ratio != float("inf") else "    inf"
            lines.append(
                f"{d.stage[:32]:32} {d.previous_seconds:>10.4f} "
                f"{d.current_seconds:>10.4f} {ratio}{marker}"
            )
        if self.counter_drift:
            lines.append("")
            lines.append("counter drift (informational, never gates):")
            for name in sorted(self.counter_drift):
                prev, cur = self.counter_drift[name]
                lines.append(f"  {name}: {prev:g} -> {cur:g}")
        verdict = (
            "OK: no stage regressed past "
            f"{100 * self.threshold:.0f}% (floor {self.min_seconds}s)"
            if self.ok
            else f"FAIL: {len(self.regressions)} stage(s) regressed past "
            f"{100 * self.threshold:.0f}%"
        )
        lines.append("")
        lines.append(verdict)
        return "\n".join(lines)


def compare(
    current: BenchReport,
    previous: BenchReport,
    threshold: float = 0.25,
    min_seconds: float = 0.05,
) -> BenchComparison:
    """Per-stage wall-clock deltas; a stage regresses when it slows by
    more than ``threshold`` (fraction) *and* either side spends at least
    ``min_seconds`` — tiny stages are all jitter."""

    def flag(prev: float, cur: float) -> bool:
        if max(prev, cur) < min_seconds:
            return False
        if prev == 0.0:
            return cur >= min_seconds
        return (cur - prev) / prev > threshold

    wall_prev = float(previous.totals.get("wall_seconds", 0.0))
    wall_cur = float(current.totals.get("wall_seconds", 0.0))
    wall = StageDelta(
        stage="(total wall-clock)",
        previous_seconds=wall_prev,
        current_seconds=wall_cur,
        regression=flag(wall_prev, wall_cur),
    )
    stages = []
    for name in sorted(set(previous.stages) | set(current.stages)):
        prev = float(previous.stages.get(name, {}).get("total_seconds", 0.0))
        cur = float(current.stages.get(name, {}).get("total_seconds", 0.0))
        stages.append(
            StageDelta(
                stage=name,
                previous_seconds=prev,
                current_seconds=cur,
                regression=flag(prev, cur),
            )
        )
    drift = {
        name: (
            float(previous.counters.get(name, 0.0)),
            float(current.counters.get(name, 0.0)),
        )
        for name in sorted(set(previous.counters) | set(current.counters))
        if previous.counters.get(name, 0.0) != current.counters.get(name, 0.0)
    }
    return BenchComparison(
        threshold=threshold,
        min_seconds=min_seconds,
        wall_delta=wall,
        stages=stages,
        counter_drift=drift,
    )
