"""``repro.obs`` — pipeline self-telemetry (spans, counters, bench).

The paper's pitch is making performance *visible*; this package turns
that lens on the pipeline itself.  Public surface::

    span("stage") / count(name, d) / observe(name, s)
        Record into the process-wide default registry (cheap; no-ops
        when disabled via set_enabled(False) or GRAIN_OBS=0).
    snapshot() -> ObsSnapshot
        Immutable copy of every span and counter so far.
    ObsSnapshot.to_json() / from_json()        canonical JSON round-trip
    to_prometheus(snap) / render_table(snap)   exposition formats
    ObsRegistry                                an isolated registry
    absorb(snap) / reset() / set_enabled(flag) / get_registry()

    run_bench(...) -> BenchReport              the perf-trajectory harness
    compare(current, previous, threshold)      --against regression check
    default_matrix(quick=...)                  the pinned bench matrix

Instrumented stages (see DESIGN.md for the full list): ``engine.run``,
``exec.simulate``, ``exec.run_matrix``, ``cache.trace_read/write``,
``cache.report_read/write``, ``graph.build``, ``graph.validate``,
``lint.run``, ``static.check``, ``analysis.analyze``,
``analysis.timeline``, one ``metrics.<family>`` span per metric, and
the advisor stages ``advisor.run``, ``advisor.expand``,
``advisor.patterns``, ``advisor.pattern.<kind>`` (one per detector),
``advisor.whatif``, and ``advisor.rank``.
Counters unify the engine's ``RunStats`` (``engine.*``), the cache's
``CacheStats`` (``cache.*``), and the study runner's simulation count
(``exec.simulated``) into one structured snapshot.
"""

from __future__ import annotations

from typing import Any

from .export import (
    SNAPSHOT_SCHEMA,
    ObsSnapshot,
    SpanRecord,
    render_table,
    to_prometheus,
)
from .registry import (
    ObsRegistry,
    SpanStats,
    absorb,
    count,
    get_registry,
    observe,
    reset,
    set_enabled,
    snapshot,
    span,
)

# The bench harness pulls in repro.exec (and through it the runtime),
# while the runtime itself imports this package for its span/counter
# hooks — so bench names are re-exported lazily (PEP 562) to keep the
# core registry import-cycle-free and cheap to load.
_BENCH_EXPORTS = {
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchReport",
    "StageDelta",
    "compare",
    "default_matrix",
    "report_prometheus",
    "run_bench",
}


def __getattr__(name: str) -> Any:
    if name in _BENCH_EXPORTS:
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchReport",
    "ObsRegistry",
    "ObsSnapshot",
    "SNAPSHOT_SCHEMA",
    "SpanRecord",
    "SpanStats",
    "StageDelta",
    "absorb",
    "compare",
    "count",
    "default_matrix",
    "get_registry",
    "observe",
    "render_table",
    "report_prometheus",
    "reset",
    "run_bench",
    "set_enabled",
    "snapshot",
    "span",
    "to_prometheus",
]
