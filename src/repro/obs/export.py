"""Structured exports of an observability snapshot.

Two machine-readable formats plus a human table:

**Canonical JSON** — :meth:`ObsSnapshot.to_json` emits a byte-stable
encoding (sorted keys, fixed separators, schema tag) so snapshots can
be diffed, committed, and golden-tested; :meth:`ObsSnapshot.from_json`
round-trips it exactly.

**Prometheus text exposition format** — :func:`to_prometheus` renders
the snapshot as ``grain_stage_seconds_total{stage="..."}`` /
``grain_counter_total{name="..."}`` families with HELP/TYPE headers,
suitable for a node-exporter textfile collector or a scrape endpoint.

**Table** — :func:`render_table` is what ``grain-graphs analyze
--timings`` and ``grain-graphs bench`` print.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

SNAPSHOT_SCHEMA = "grain-obs/v1"

#: What a scrape endpoint (``grain-graphs serve`` mounts one at
#: ``/metrics``) should declare for :func:`to_prometheus` output.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class SpanRecord:
    """One stage's folded timings inside an immutable snapshot."""

    name: str
    count: int
    total_seconds: float
    min_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass(frozen=True)
class ObsSnapshot:
    """A point-in-time copy of a registry's spans and counters.

    ``derived`` holds gauges computed *from* the spans and counters at
    snapshot time (e.g. ``engine.events_per_sec`` = events emitted per
    cumulative ``engine.run`` second).  They are a pure function of the
    other two sections, so :meth:`ObsRegistry.absorb
    <repro.obs.registry.ObsRegistry.absorb>` deliberately ignores them —
    the absorbing registry recomputes them at its own next snapshot,
    which keeps worker aggregation double-count-free.
    """

    spans: Mapping[str, SpanRecord]
    counters: Mapping[str, int | float]
    derived: Mapping[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Canonical JSON
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "spans": {
                name: {
                    "count": record.count,
                    "total_seconds": record.total_seconds,
                    "min_seconds": record.min_seconds,
                    "max_seconds": record.max_seconds,
                }
                for name, record in self.spans.items()
            },
            "counters": dict(self.counters),
            "derived": dict(self.derived),
        }

    def to_json(self) -> str:
        """Byte-stable canonical encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ObsSnapshot":
        schema = payload.get("schema", SNAPSHOT_SCHEMA)
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported snapshot schema {schema!r}; "
                f"expected {SNAPSHOT_SCHEMA!r}"
            )
        raw_spans = payload.get("spans", {})
        raw_counters = payload.get("counters", {})
        if not isinstance(raw_spans, Mapping) or not isinstance(
            raw_counters, Mapping
        ):
            raise ValueError("snapshot spans/counters must be mappings")
        spans = {
            str(name): SpanRecord(
                name=str(name),
                count=int(fields["count"]),
                total_seconds=float(fields["total_seconds"]),
                min_seconds=float(fields["min_seconds"]),
                max_seconds=float(fields["max_seconds"]),
            )
            for name, fields in raw_spans.items()
        }
        counters: dict[str, int | float] = {
            str(name): value for name, value in raw_counters.items()
        }
        raw_derived = payload.get("derived", {})
        if not isinstance(raw_derived, Mapping):
            raise ValueError("snapshot derived gauges must be a mapping")
        derived = {str(name): float(value) for name, value in raw_derived.items()}
        return cls(spans=spans, counters=counters, derived=derived)

    @classmethod
    def from_json(cls, text: str) -> "ObsSnapshot":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("snapshot JSON must be an object")
        return cls.from_dict(payload)


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: int | float) -> str:
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(float(value))


def to_prometheus(snap: ObsSnapshot, prefix: str = "grain") -> str:
    """Render the snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    spans = sorted(snap.spans)

    def family(
        name: str, help_text: str, kind: str, samples: list[tuple[str, str]]
    ) -> None:
        if not samples:
            return
        lines.append(f"# HELP {prefix}_{name} {help_text}")
        lines.append(f"# TYPE {prefix}_{name} {kind}")
        for labels, value in samples:
            lines.append(f"{prefix}_{name}{{{labels}}} {value}")

    family(
        "stage_seconds_total",
        "Cumulative wall-clock seconds spent in each pipeline stage.",
        "counter",
        [
            (
                f'stage="{_escape_label(s)}"',
                _format_value(snap.spans[s].total_seconds),
            )
            for s in spans
        ],
    )
    family(
        "stage_invocations_total",
        "Number of timed entries into each pipeline stage.",
        "counter",
        [
            (f'stage="{_escape_label(s)}"', _format_value(snap.spans[s].count))
            for s in spans
        ],
    )
    family(
        "stage_seconds_min",
        "Shortest single observation of each pipeline stage.",
        "gauge",
        [
            (
                f'stage="{_escape_label(s)}"',
                _format_value(snap.spans[s].min_seconds),
            )
            for s in spans
        ],
    )
    family(
        "stage_seconds_max",
        "Longest single observation of each pipeline stage.",
        "gauge",
        [
            (
                f'stage="{_escape_label(s)}"',
                _format_value(snap.spans[s].max_seconds),
            )
            for s in spans
        ],
    )
    family(
        "counter_total",
        "Unified pipeline counters (engine RunStats, cache stats, ...).",
        "counter",
        [
            (
                f'name="{_escape_label(c)}"',
                _format_value(snap.counters[c]),
            )
            for c in sorted(snap.counters)
        ],
    )
    family(
        "derived_gauge",
        "Gauges derived from spans and counters at snapshot time "
        "(e.g. engine.events_per_sec).",
        "gauge",
        [
            (
                f'name="{_escape_label(d)}"',
                _format_value(snap.derived[d]),
            )
            for d in sorted(snap.derived)
        ],
    )
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Human-readable table
# ---------------------------------------------------------------------------
def render_table(snap: ObsSnapshot, counters: bool = True) -> str:
    """Fixed-width stage/counter table, longest stages first."""
    lines: list[str] = []
    if snap.spans:
        header = (
            f"{'stage':32} {'count':>7} {'total(s)':>10} "
            f"{'mean(ms)':>10} {'max(ms)':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for record in sorted(
            snap.spans.values(), key=lambda r: -r.total_seconds
        ):
            lines.append(
                f"{record.name[:32]:32} {record.count:>7} "
                f"{record.total_seconds:>10.4f} "
                f"{1e3 * record.mean_seconds:>10.3f} "
                f"{1e3 * record.max_seconds:>10.3f}"
            )
    if counters and snap.counters:
        if lines:
            lines.append("")
        lines.append(f"{'counter':40} {'value':>14}")
        lines.append("-" * 55)
        for name in sorted(snap.counters):
            lines.append(f"{name[:40]:40} {_format_value(snap.counters[name]):>14}")
    return "\n".join(lines)
