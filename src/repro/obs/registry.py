"""Span timers and counters: the pipeline's self-telemetry core.

An :class:`ObsRegistry` accumulates two kinds of signal:

**Spans** — wall-clock timers around named pipeline stages
(``engine.run``, ``graph.build``, ``metrics.scatter``,
``cache.trace_read``, ...).  Each stage keeps a count, a cumulative
total, and min/max observations; individual timings are folded in
immediately, so memory stays O(stages) no matter how many runs a
process executes.

**Counters** — monotonically accumulated numeric totals.  The engine
folds its :class:`~repro.runtime.engine.RunStats` in after every run
(``engine.tasks_created``, ``engine.steals``, ...), the artifact cache
mirrors its :class:`~repro.exec.cache.CacheStats`
(``cache.trace_hits``, ...), and the study runner counts simulations —
one registry unifies what three layers previously reported through
three ad-hoc structs.

A process-wide default registry is what the instrumented call sites
use (:func:`span` / :func:`count` in :mod:`repro.obs`); pool workers
snapshot their registry per task and ship the
:class:`~repro.obs.export.ObsSnapshot` back to the parent, which
:meth:`ObsRegistry.absorb`\\ s it — so a ``--jobs 8`` study reports the
same totals as the serial equivalent.

Disabled registries make every operation a no-op; the overhead of the
*enabled* path is bounded by ``tests/obs/test_overhead.py`` at < 5 % of
pipeline wall-clock (two ``perf_counter`` calls and a dict update per
stage, against stages that simulate whole program runs).
"""

from __future__ import annotations

import math
import os
import threading
import time
from contextlib import AbstractContextManager, contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .export import ObsSnapshot, SpanRecord


def derive_gauges(
    spans: "dict[str, SpanRecord]", counters: dict[str, int | float]
) -> dict[str, float]:
    """Gauges computed from raw spans/counters at snapshot time.

    ``engine.events_per_sec`` — trace events emitted per cumulative
    second inside ``engine.run`` — is the headline throughput number the
    columnar-engine work optimizes, surfaced here so every snapshot
    consumer (JSON goldens, Prometheus scrapes, ``bench``) sees it
    without recomputing.  Derived values are **not** absorbed from
    worker snapshots; they are recomputed from the merged raw totals.
    """
    derived: dict[str, float] = {}
    events = counters.get("engine.events_emitted")
    run = spans.get("engine.run")
    if events and run is not None and run.total_seconds > 0.0:
        derived["engine.events_per_sec"] = events / run.total_seconds
    return derived


class SpanStats:
    """Folded observations for one named stage."""

    __slots__ = ("name", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(
        self,
        name: str,
        count: int = 0,
        total_seconds: float = 0.0,
        min_seconds: float = math.inf,
        max_seconds: float = 0.0,
    ) -> None:
        self.name = name
        self.count = count
        self.total_seconds = total_seconds
        self.min_seconds = min_seconds
        self.max_seconds = max_seconds

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def fold(self, other: "SpanStats") -> None:
        """Merge another stage's folded observations into this one."""
        self.count += other.count
        self.total_seconds += other.total_seconds
        if other.min_seconds < self.min_seconds:
            self.min_seconds = other.min_seconds
        if other.max_seconds > self.max_seconds:
            self.max_seconds = other.max_seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpanStats({self.name!r}, count={self.count}, "
            f"total={self.total_seconds:.6f}s)"
        )


class ObsRegistry:
    """Thread-safe accumulator of spans and counters for one process."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: dict[str, SpanStats] = {}
        self._counters: dict[str, int | float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def observe(self, name: str, seconds: float) -> None:
        """Fold one externally-timed observation into stage ``name``."""
        if not self.enabled:
            return
        with self._lock:
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = SpanStats(name)
            stats.add(seconds)

    def count(self, name: str, delta: int | float = 1) -> None:
        """Add ``delta`` to counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> "ObsSnapshot":
        """An immutable copy of the current spans and counters, plus
        gauges derived from them (see :func:`derive_gauges`)."""
        from .export import ObsSnapshot, SpanRecord

        with self._lock:
            spans = {
                name: SpanRecord(
                    name=name,
                    count=s.count,
                    total_seconds=s.total_seconds,
                    min_seconds=s.min_seconds if s.count else 0.0,
                    max_seconds=s.max_seconds,
                )
                for name, s in self._spans.items()
            }
            counters = dict(self._counters)
        return ObsSnapshot(
            spans=spans,
            counters=counters,
            derived=derive_gauges(spans, counters),
        )

    def absorb(self, snap: "ObsSnapshot") -> None:
        """Merge a snapshot (typically from a pool worker) into this
        registry, even when disabled — aggregation is bookkeeping, not
        new measurement."""
        with self._lock:
            for name, record in snap.spans.items():
                stats = self._spans.get(name)
                if stats is None:
                    stats = self._spans[name] = SpanStats(name)
                stats.fold(
                    SpanStats(
                        name,
                        count=record.count,
                        total_seconds=record.total_seconds,
                        min_seconds=(
                            record.min_seconds if record.count else math.inf
                        ),
                        max_seconds=record.max_seconds,
                    )
                )
            for name, value in snap.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value

    def reset(self) -> None:
        """Drop every span and counter (enabled flag is untouched)."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()


# ---------------------------------------------------------------------------
# The process-wide default registry
# ---------------------------------------------------------------------------
def _initially_enabled() -> bool:
    return os.environ.get("GRAIN_OBS", "1") not in ("0", "off", "false")


_registry = ObsRegistry(enabled=_initially_enabled())


def get_registry() -> ObsRegistry:
    return _registry


def span(name: str) -> AbstractContextManager[None]:
    """``with obs.span("stage"):`` on the default registry."""
    return _registry.span(name)


def count(name: str, delta: int | float = 1) -> None:
    _registry.count(name, delta)


def observe(name: str, seconds: float) -> None:
    _registry.observe(name, seconds)


def snapshot() -> "ObsSnapshot":
    return _registry.snapshot()


def absorb(snap: "ObsSnapshot") -> None:
    _registry.absorb(snap)


def reset() -> None:
    _registry.reset()


def set_enabled(flag: bool) -> bool:
    """Flip instrumentation on/off; returns the previous setting."""
    previous = _registry.enabled
    _registry.enabled = flag
    return previous
