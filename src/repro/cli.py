"""Command-line interface: ``grain-graphs``.

Subcommands::

    grain-graphs list
        Show the available benchmark programs and variants.

    grain-graphs analyze PROGRAM [--flavor MIR] [--threads 48]
                 [--graphml out.graphml] [--svg out.svg] [--view KIND]
        Run a program, print the grain-graph analysis report and advice,
        and optionally export the graph.

    grain-graphs speedups PROGRAM [PROGRAM ...] [--threads 48]
        The Fig. 1 table for the named programs.

    grain-graphs lint PROGRAM [--flavor MIR] [--threads 48] [--json]
                 [--fail-on SEVERITY] [--verbose]
        Run every registered diagnostic pass (structure, trace
        invariants, happens-before races) over the program's trace and
        grain graphs; exit non-zero if findings reach the --fail-on
        severity.

    grain-graphs check PROGRAM [PROGRAM ...] | --all  [--json]
                 [--fail-on SEVERITY] [--verbose]
        Statically analyze programs *without simulating them*: symbolic
        expansion plus the program-layer lint passes (work/span bounds,
        structural anti-patterns, the all-schedule race certificate).
        Never invokes the engine — suitable as a fast CI gate ahead of
        any simulation job.

    grain-graphs advise PROGRAM [PROGRAM ...] | --all  [--json]
                 [--what-if TARGET=K] [--fail-on SEVERITY]
        The parallelization advisor: run the ``pattern.*`` detectors
        (reduction, do-all, pipeline, task-parallelism, geometric
        decomposition) over the static model and rank the findings by
        projected wall-clock win; ``--what-if`` additionally projects
        "TARGET runs K× faster" causally from the work-span bracket.
        Like ``check``, never invokes the engine.

    grain-graphs study --matrix PROG[:FLAVOR[:THREADS]],... [--jobs N]
                 [--cache DIR] [--cache-stats] [--no-reference]
                 [--obs-json FILE] [--obs-prom FILE]
        Run a whole study matrix through the repro.exec layer: shared
        single-core reference runs are deduplicated, cache misses fan
        out across a process pool, and warm-cache reruns touch the
        engine zero times.

    grain-graphs serve [--host H] [--port P] [--cache DIR] [--jobs N]
                 [--queue-capacity N] [--request-timeout S]
        The multi-tenant analysis service: a long-running asyncio
        HTTP+JSON server exposing submit-study / job status / JSONL
        reports (poll or stream) / lint / check / advise, with request
        coalescing on RunKey (concurrent tenants asking for the same
        point share one simulation), the on-disk artifact cache as the
        shared tier, a bounded job queue that sheds load with 429 +
        Retry-After, Prometheus /metrics, and a /healthz probe.
        --port 0 binds an ephemeral port (printed on the first line).

    grain-graphs bench [--quick] [--jobs N] [--out DIR|FILE]
                 [--against PREV.json] [--threshold 0.25] [--matrix ...]
                 [--prom FILE]
        The perf-trajectory harness: run the pinned bench matrix against
        a cold cache, write BENCH_<iso-date>.json (per-stage wall-clock,
        engine events/sec, cache traffic, peak RSS), and optionally
        compare --against a previous trajectory file, exiting non-zero
        when a stage regressed past the threshold.

Errors from user input (unknown program/flavor, malformed matrix specs)
print one line to stderr and exit with status 2, matching argparse's own
usage-error convention.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import NoReturn

from .analysis.views import VIEW_KINDS, make_view
from .apps.registry import PROGRAMS, resolve
from .core.reductions import reduce_graph
from .lint import Severity, render_json, render_text, run_lint
from .runtime.api import Program, run_program
from .runtime.flavors import RuntimeFlavor, flavor_by_name
from .workflow import format_speedup_table, profile_program, speedup_table


def _fail(message: str) -> NoReturn:
    """Uniform user-input error: one line on stderr, exit status 2."""
    print(f"grain-graphs: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _resolve(name: str) -> Program:
    try:
        return resolve(name)
    except KeyError:
        _fail(f"unknown program {name!r}; run `grain-graphs list`")


def _flavor(name: str) -> RuntimeFlavor:
    try:
        return flavor_by_name(name)
    except ValueError as exc:
        _fail(str(exc))


def _fail_on_threshold(label: str) -> Severity:
    """The shared ``--fail-on`` label parser for ``lint``/``check``/
    ``advise``: friendly one-line exit-2 on unknown labels, parsed
    before any (possibly expensive) analysis runs."""
    try:
        return Severity.from_label(label)
    except ValueError as exc:
        _fail(str(exc))


def _fail_on_exit(reports, threshold: Severity) -> int:
    """The shared exit-code mapping: 1 when any report has a finding at
    or above the threshold, else 0."""
    return 1 if any(r.at_or_above(threshold) for r in reports) else 0


def _add_fail_on(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fail-on", default="error", metavar="SEVERITY",
        help="exit non-zero at or above this severity "
        f"({' | '.join(s.label for s in Severity)})",
    )


def cmd_list(_args) -> int:
    print("available programs (default inputs; see repro.apps for knobs):")
    for name in sorted(PROGRAMS):
        print(f"  {name}")
    return 0


def cmd_analyze(args) -> int:
    program = _resolve(args.program)
    study = profile_program(
        program,
        flavor=_flavor(args.flavor),
        num_threads=args.threads,
        reference_threads=None if args.no_reference else 1,
        advise=args.advise,
    )
    print(study.report.summary())
    print()
    for advice in study.advice:
        print(f"ADVICE: {advice}")
    if args.graphml or args.svg:
        view = make_view(
            study.report.metrics, study.report.problems, args.view
        )
        if args.graphml:
            from .core.graphml import write_graphml

            path = write_graphml(
                study.graph, args.graphml, view=view,
                critical_nodes=study.report.metrics.critical_path.nodes,
            )
            print(f"wrote {path}")
        if args.svg:
            from .core.svg import render_svg

            reduced, _ = reduce_graph(study.graph)
            path = render_svg(
                reduced, args.svg, view=view,
                title=f"{program.name} — {args.view} view",
            )
            print(f"wrote {path}")
    if args.timings:
        from .obs import render_table, snapshot

        print()
        print("pipeline self-telemetry (repro.obs):")
        print(render_table(snapshot(), counters=False))
    return 0


def cmd_lint(args) -> int:
    threshold = _fail_on_threshold(args.fail_on)
    program = _resolve(args.program)
    result = run_program(
        program,
        flavor=_flavor(args.flavor),
        num_threads=args.threads,
    )
    report = run_lint(trace=result.trace, program=program.name)
    if args.json:
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return _fail_on_exit([report], threshold)


def _load_baseline_or_fail(path: str | None):
    if not path:
        return None
    from .lint import load_baseline

    try:
        return load_baseline(path)
    except ValueError as exc:
        _fail(str(exc))


def _write_sarif(path: str, runs: list) -> None:
    import json as _json

    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_json.dumps(document, indent=2) + "\n")


def cmd_check(args) -> int:
    import json as _json

    from .lint import apply_baseline, render_sarif, write_baseline
    from .staticc import check_program

    if args.all:
        names = sorted(PROGRAMS)
    elif args.programs:
        names = args.programs
    else:
        _fail("check: name programs or pass --all")
    threshold = _fail_on_threshold(args.fail_on)
    baseline = _load_baseline_or_fail(args.baseline)
    reports = []
    payloads = []
    sarif_runs = []
    all_diags = []
    for name in names:
        program = _resolve(name)
        model, report = check_program(program)
        all_diags.extend(report.diagnostics)
        suppressed = 0
        if baseline is not None:
            report, suppressed = apply_baseline(report, baseline)
        reports.append(report)
        if args.sarif:
            sarif_runs.extend(_json.loads(render_sarif(report))["runs"])
        if args.json:
            payload = report.to_dict()
            if baseline is not None:
                payload["suppressed"] = suppressed
            payloads.append(payload)
        else:
            print(model.summary())
            print(render_text(report, verbose=args.verbose))
            if suppressed:
                print(f"({suppressed} baselined finding(s) suppressed)")
            print()
    if args.sarif:
        _write_sarif(args.sarif, sarif_runs)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, all_diags)
        if not args.json:
            print(f"baseline: {count} fingerprint(s) -> {args.write_baseline}")
    if args.json:
        if len(payloads) == 1:
            print(_json.dumps(payloads[0], indent=2))
        else:
            print(_json.dumps(payloads, indent=2))
    return _fail_on_exit(reports, threshold)


def cmd_verify(args) -> int:
    import json as _json

    from .lint import (
        apply_baseline,
        fingerprint,
        render_sarif,
        write_baseline,
    )
    from .staticc import verify_program

    if args.all:
        names = sorted(PROGRAMS)
    elif args.programs:
        names = args.programs
    else:
        _fail("verify: name programs or pass --all")
    threshold = _fail_on_threshold(args.fail_on)
    flavor = _flavor(args.flavor)
    if args.threads < 2:
        _fail("verify: witness replay needs --threads >= 2")
    baseline = _load_baseline_or_fail(args.baseline)
    max_replays = None if args.max_replays <= 0 else args.max_replays
    reports = []
    payloads = []
    sarif_runs = []
    all_diags = []
    for name in names:
        program = _resolve(name)
        model, vrep = verify_program(
            program,
            flavor=flavor,
            num_threads=args.threads,
            max_replays=max_replays,
        )
        static_report = vrep.static_report
        findings = vrep.findings
        all_diags.extend(static_report.diagnostics)
        suppressed = 0
        if baseline is not None:
            static_report, suppressed = apply_baseline(
                static_report, baseline
            )
            findings = tuple(
                f
                for f in findings
                if fingerprint(f.diagnostic) not in baseline
            )
        reports.append(static_report)
        verdicts = {fingerprint(f.diagnostic): f.verdict for f in findings}
        counts = {
            verdict: sum(1 for f in findings if f.verdict == verdict)
            for verdict in ("CONFIRMED", "UNWITNESSED", "SKIPPED")
        }
        if args.sarif:
            sarif_runs.extend(
                _json.loads(render_sarif(static_report, verdicts))["runs"]
            )
        if args.json:
            payload = {
                "program": vrep.program,
                "replays": vrep.replays,
                "suppressed": suppressed,
                "verdicts": counts,
                "findings": [f.to_dict() for f in findings],
                "static_report": static_report.to_dict(),
            }
            payloads.append(payload)
        else:
            print(f"verify report for {vrep.program}")
            for f in findings:
                d = f.diagnostic
                print(
                    f"{f.verdict:11} {d.rule_id} "
                    f"[{d.artifact}: {d.anchor()}] {d.message}"
                )
                if f.witness is not None:
                    w = f.witness
                    print(
                        f"            witness: {w.kind}, "
                        f"{len(w.steps)} dispatch(es) on "
                        f"{w.num_threads} workers"
                    )
                print(f"            {f.detail}")
            summary = (
                f"verify: {vrep.replays} replay(s) -> "
                f"{counts['CONFIRMED']} CONFIRMED, "
                f"{counts['UNWITNESSED']} UNWITNESSED, "
                f"{counts['SKIPPED']} SKIPPED"
            )
            if suppressed:
                summary += f"; {suppressed} baselined"
            print(summary)
            print()
    if args.sarif:
        _write_sarif(args.sarif, sarif_runs)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, all_diags)
        if not args.json:
            print(f"baseline: {count} fingerprint(s) -> {args.write_baseline}")
    if args.json:
        if len(payloads) == 1:
            print(_json.dumps(payloads[0], indent=2))
        else:
            print(_json.dumps(payloads, indent=2))
    return _fail_on_exit(reports, threshold)


def cmd_advise(args) -> int:
    import json as _json

    from .advisor import AdvisorError, advise_program, parse_what_if

    if args.all:
        names = sorted(PROGRAMS)
    elif args.programs:
        names = args.programs
    else:
        _fail("advise: name programs or pass --all")
    threshold = _fail_on_threshold(args.fail_on)
    flavor = _flavor(args.flavor)
    try:
        what_ifs = [parse_what_if(spec) for spec in (args.what_if or [])]
    except AdvisorError as exc:
        _fail(str(exc))
    reports = []
    payloads = []
    for name in names:
        program = _resolve(name)
        try:
            report = advise_program(
                program,
                flavor=flavor,
                num_threads=args.threads,
                what_ifs=what_ifs,
            )
        except AdvisorError as exc:
            _fail(str(exc))
        reports.append(report)
        if args.json:
            payloads.append(report.to_dict())
        else:
            print(report.render_text())
            print()
    if args.json:
        if len(payloads) == 1:
            print(_json.dumps(payloads[0], indent=2))
        else:
            print(_json.dumps(payloads, indent=2))
    return _fail_on_exit(reports, threshold)


def cmd_speedups(args) -> int:
    programs = [_resolve(name) for name in args.programs]
    rows = speedup_table(programs, num_threads=args.threads)
    print(format_speedup_table(rows))
    return 0


def cmd_study(args) -> int:
    from .exec import MatrixPoint, RunCache, StudyRunner
    from .runtime.engine import engine_invocations

    try:
        points = [
            MatrixPoint.parse(
                spec, default_flavor=args.flavor, default_threads=args.threads
            )
            for chunk in args.matrix
            for spec in chunk.split(",")
            if spec.strip()
        ]
    except ValueError as exc:
        _fail(str(exc))
    if not points:
        _fail("empty study matrix")
    unknown = sorted({p.program for p in points} - PROGRAMS.keys())
    if unknown:
        _fail(
            f"unknown programs {', '.join(unknown)}; run `grain-graphs list`"
        )
    for point in points:
        _flavor(point.flavor)  # reject unknown flavors before any run
    cache = RunCache(args.cache) if args.cache else None
    runner = StudyRunner(
        cache=cache,
        jobs=args.jobs,
        reference_threads=None if args.no_reference else 1,
    )
    invocations_before = engine_invocations()
    started = time.perf_counter()
    studies = runner.run_matrix(points)
    elapsed = time.perf_counter() - started

    header = (
        f"{'program':28} {'flavor':7} {'threads':>7} "
        f"{'makespan':>14} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for point, study in zip(points, studies):
        print(
            f"{point.program[:28]:28} {point.flavor:7} {point.threads:>7} "
            f"{study.makespan_cycles:>14} {study.speedup:>8.2f}"
        )
    if args.cache_stats:
        print()
        print(f"matrix points: {len(points)}  "
              f"simulated: {runner.simulated}  "
              f"engine invocations (this process): "
              f"{engine_invocations() - invocations_before}")
        if cache is not None:
            print(f"cache root: {cache.root}")
            print(f"code fingerprint: {cache.fingerprint}")
            print(f"cache {cache.stats.format()}")
        else:
            print("cache: disabled (pass --cache DIR to persist artifacts)")
        print(f"wall-clock: {elapsed:.2f}s  jobs: {args.jobs}")
    if args.obs_json or args.obs_prom:
        from .obs import snapshot, to_prometheus

        snap = snapshot()
        if args.obs_json:
            with open(args.obs_json, "w") as fh:
                fh.write(snap.to_json() + "\n")
            print(f"wrote {args.obs_json}")
        if args.obs_prom:
            with open(args.obs_prom, "w") as fh:
                fh.write(to_prometheus(snap))
            print(f"wrote {args.obs_prom}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .serve import ServeConfig, run_serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache,
        jobs=args.jobs,
        queue_capacity=args.queue_capacity,
        request_timeout=args.request_timeout,
    )
    try:
        config.validate()
    except ValueError as exc:
        _fail(str(exc))
    try:
        asyncio.run(run_serve(config))
    except KeyboardInterrupt:
        print("grain-graphs serve: shutting down", file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    from pathlib import Path

    from .exec import MatrixPoint
    from .obs import bench as obs_bench

    points = None
    if args.matrix:
        try:
            points = [
                MatrixPoint.parse(
                    spec, default_flavor="MIR", default_threads=args.threads
                )
                for chunk in args.matrix
                for spec in chunk.split(",")
                if spec.strip()
            ]
        except ValueError as exc:
            _fail(str(exc))
        unknown = sorted({p.program for p in points} - PROGRAMS.keys())
        if unknown:
            _fail(
                f"unknown programs {', '.join(unknown)}; "
                "run `grain-graphs list`"
            )
        for point in points:
            _flavor(point.flavor)

    report = obs_bench.run_bench(
        points=points, quick=args.quick, jobs=args.jobs
    )

    out = Path(args.out)
    path = out / report.filename() if out.is_dir() else out
    report.write(path)
    print(f"wrote {path}")
    if args.prom:
        Path(args.prom).write_text(obs_bench.report_prometheus(report))
        print(f"wrote {args.prom}")

    totals = report.totals
    print(
        f"bench: {int(totals['points'])} points, "
        f"{int(totals['simulations'])} simulations, "
        f"{totals['wall_seconds']:.2f}s wall, "
        f"{totals['events_per_second']:,.0f} events/s engine throughput, "
        f"peak RSS {totals['peak_rss_kib'] / 1024:.0f} MiB"
    )
    from .obs import render_table
    from .obs.bench import bench_snapshot

    print()
    print(render_table(bench_snapshot(report), counters=False))

    if args.against:
        try:
            previous = obs_bench.BenchReport.load(args.against)
        except (OSError, ValueError) as exc:
            _fail(f"cannot load --against baseline: {exc}")
        comparison = obs_bench.compare(
            report, previous,
            threshold=args.threshold, min_seconds=args.min_seconds,
        )
        print()
        print(f"against {args.against}:")
        print(comparison.summary())
        if not comparison.ok:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="grain-graphs",
        description="Grain graphs: OpenMP performance analysis made easy "
        "(PPoPP'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark programs").set_defaults(
        fn=cmd_list
    )

    analyze = sub.add_parser("analyze", help="profile and analyze a program")
    analyze.add_argument("program")
    analyze.add_argument("--flavor", default="MIR", help="MIR | ICC | GCC")
    analyze.add_argument("--threads", type=int, default=48)
    analyze.add_argument("--no-reference", action="store_true",
                         help="skip the 1-core work-deviation run")
    analyze.add_argument("--advise", action="store_true",
                         help="also run the static parallelization "
                         "advisor and fold its ranked recommendations "
                         "into the advice list")
    analyze.add_argument("--graphml", help="write a yEd GraphML file")
    analyze.add_argument("--svg", help="write a reduced-graph SVG")
    analyze.add_argument("--view", default="parallel_benefit",
                         choices=VIEW_KINDS)
    analyze.add_argument("--timings", action="store_true",
                         help="print per-stage pipeline wall-clock "
                         "(repro.obs spans) after the report")
    analyze.set_defaults(fn=cmd_analyze)

    lint = sub.add_parser(
        "lint", help="run diagnostic passes over a program's trace and graphs"
    )
    lint.add_argument("program")
    lint.add_argument("--flavor", default="MIR", help="MIR | ICC | GCC")
    lint.add_argument("--threads", type=int, default=8)
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable diagnostic report")
    _add_fail_on(lint)
    lint.add_argument("--verbose", action="store_true",
                      help="also list every pass that ran")
    lint.set_defaults(fn=cmd_lint)

    check = sub.add_parser(
        "check",
        help="static analysis only: expand symbolically, no simulation",
    )
    check.add_argument("programs", nargs="*", metavar="PROGRAM")
    check.add_argument("--all", action="store_true",
                       help="check every registered program")
    check.add_argument("--json", action="store_true",
                       help="emit the machine-readable diagnostic report")
    _add_fail_on(check)
    check.add_argument("--verbose", action="store_true",
                       help="also list every pass that ran")
    check.add_argument("--sarif", metavar="FILE",
                       help="also write a SARIF v2.1.0 report to FILE")
    check.add_argument("--baseline", metavar="FILE",
                       help="suppress findings fingerprinted in FILE")
    check.add_argument("--write-baseline", metavar="FILE",
                       help="record current finding fingerprints to FILE")
    check.set_defaults(fn=cmd_check)

    verify = sub.add_parser(
        "verify",
        help="static check, then replay an engine witness per finding",
    )
    verify.add_argument("programs", nargs="*", metavar="PROGRAM")
    verify.add_argument("--all", action="store_true",
                        help="verify every registered program")
    verify.add_argument("--json", action="store_true",
                        help="emit the machine-readable verify report")
    verify.add_argument("--flavor", default="mir",
                        help="runtime flavor for witness replay")
    verify.add_argument("--threads", type=int, default=2, metavar="N",
                        help="replay worker count (>= 2; default 2)")
    verify.add_argument("--max-replays", type=int, default=25, metavar="N",
                        help="engine-run budget per program; findings past "
                        "it are SKIPPED (0 = unlimited; default 25)")
    _add_fail_on(verify)
    verify.add_argument("--sarif", metavar="FILE",
                        help="also write a SARIF v2.1.0 report (with "
                        "replay verdicts) to FILE")
    verify.add_argument("--baseline", metavar="FILE",
                        help="suppress findings fingerprinted in FILE")
    verify.add_argument("--write-baseline", metavar="FILE",
                        help="record current finding fingerprints to FILE")
    verify.set_defaults(fn=cmd_verify)

    advise = sub.add_parser(
        "advise",
        help="rank parallelization opportunities from the static model "
        "(pattern detectors + causal what-if), no simulation",
    )
    advise.add_argument("programs", nargs="*", metavar="PROGRAM")
    advise.add_argument("--all", action="store_true",
                        help="advise every registered program")
    advise.add_argument("--flavor", default="MIR", help="MIR | ICC | GCC")
    advise.add_argument("--threads", type=int, default=48,
                        help="thread count the benefit math projects at")
    advise.add_argument("--what-if", action="append", metavar="TARGET=K",
                        help="project 'TARGET runs K times faster' "
                        "causally (grain id, task definition, loop "
                        "definition key, region name, or '*'); repeatable")
    advise.add_argument("--json", action="store_true",
                        help="emit the machine-readable recommendations")
    _add_fail_on(advise)
    advise.set_defaults(fn=cmd_advise)

    speedups = sub.add_parser("speedups", help="Fig. 1 style speedup table")
    speedups.add_argument("programs", nargs="+")
    speedups.add_argument("--threads", type=int, default=48)
    speedups.set_defaults(fn=cmd_speedups)

    study = sub.add_parser(
        "study",
        help="run a cached, deduplicated study matrix (repro.exec)",
    )
    study.add_argument(
        "--matrix", action="append", required=True, metavar="POINTS",
        help="comma-separated PROGRAM[:FLAVOR[:THREADS]] points; "
        "repeatable (e.g. --matrix sort:MIR:8,sort:GCC:8 --matrix fft)",
    )
    study.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for cache misses")
    study.add_argument("--cache", metavar="DIR",
                       help="artifact cache directory (omit for cold runs)")
    study.add_argument("--cache-stats", action="store_true",
                       help="print hit/miss/store and simulation counters")
    study.add_argument("--no-reference", action="store_true",
                       help="skip the 1-core work-deviation reference runs")
    study.add_argument("--flavor", default="MIR",
                       help="default flavor for points that omit one")
    study.add_argument("--threads", type=int, default=48,
                       help="default thread count for points that omit one")
    study.add_argument("--obs-json", metavar="FILE",
                       help="write the observability snapshot (spans + "
                       "counters) as canonical JSON")
    study.add_argument("--obs-prom", metavar="FILE",
                       help="write the observability snapshot in "
                       "Prometheus text exposition format")
    study.set_defaults(fn=cmd_study)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP analysis service (repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port; 0 picks an ephemeral one "
                       "(default 8321)")
    serve.add_argument("--cache", metavar="DIR",
                       help="artifact cache directory shared with "
                       "`grain-graphs study` (omit for in-memory only)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="simulation worker pool width (default 2)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       metavar="N",
                       help="max queued study points before submits "
                       "are shed with 429 (default 64)")
    serve.add_argument("--request-timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="per-request handler timeout (default 300)")
    serve.set_defaults(fn=cmd_serve)

    bench = sub.add_parser(
        "bench",
        help="run the pinned perf-trajectory matrix and write BENCH_*.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="4-thread variant of the pinned matrix "
                       "(same program x flavor coverage, for CI)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for the study runner")
    bench.add_argument("--out", default=".", metavar="DIR|FILE",
                       help="output directory (default .) or exact path "
                       "for the BENCH_<date>.json trajectory file")
    bench.add_argument("--against", metavar="PREV.json",
                       help="compare against a previous trajectory file; "
                       "exit 1 if any stage regressed past --threshold")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="per-stage wall-clock regression threshold "
                       "as a fraction (default 0.25 = 25%%)")
    bench.add_argument("--min-seconds", type=float, default=0.05,
                       help="ignore stages where both sides spent less "
                       "than this many seconds (jitter floor)")
    bench.add_argument("--matrix", action="append", metavar="POINTS",
                       help="override the pinned matrix "
                       "(PROGRAM[:FLAVOR[:THREADS]], comma-separated, "
                       "repeatable) — overridden runs are not comparable "
                       "to pinned-matrix trajectory files")
    bench.add_argument("--threads", type=int, default=8,
                       help="default thread count for --matrix points")
    bench.add_argument("--prom", metavar="FILE",
                       help="also write the report's span/counter data "
                       "in Prometheus text format")
    bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
