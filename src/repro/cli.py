"""Command-line interface: ``grain-graphs``.

Subcommands::

    grain-graphs list
        Show the available benchmark programs and variants.

    grain-graphs analyze PROGRAM [--flavor MIR] [--threads 48]
                 [--graphml out.graphml] [--svg out.svg] [--view KIND]
        Run a program, print the grain-graph analysis report and advice,
        and optionally export the graph.

    grain-graphs speedups PROGRAM [PROGRAM ...] [--threads 48]
        The Fig. 1 table for the named programs.

    grain-graphs lint PROGRAM [--flavor MIR] [--threads 48] [--json]
                 [--fail-on SEVERITY] [--verbose]
        Run every registered diagnostic pass (structure, trace
        invariants, happens-before races) over the program's trace and
        grain graphs; exit non-zero if findings reach the --fail-on
        severity.

    grain-graphs check PROGRAM [PROGRAM ...] | --all  [--json]
                 [--fail-on SEVERITY] [--verbose]
        Statically analyze programs *without simulating them*: symbolic
        expansion plus the program-layer lint passes (work/span bounds,
        structural anti-patterns, the all-schedule race certificate).
        Never invokes the engine — suitable as a fast CI gate ahead of
        any simulation job.

    grain-graphs study --matrix PROG[:FLAVOR[:THREADS]],... [--jobs N]
                 [--cache DIR] [--cache-stats] [--no-reference]
        Run a whole study matrix through the repro.exec layer: shared
        single-core reference runs are deduplicated, cache misses fan
        out across a process pool, and warm-cache reruns touch the
        engine zero times.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis.views import VIEW_KINDS, make_view
from .apps.registry import PROGRAMS, resolve
from .core.reductions import reduce_graph
from .lint import Severity, render_json, render_text, run_lint
from .runtime.api import Program, run_program
from .runtime.flavors import flavor_by_name
from .workflow import format_speedup_table, profile_program, speedup_table


def _resolve(name: str) -> Program:
    try:
        return resolve(name)
    except KeyError:
        raise SystemExit(
            f"unknown program {name!r}; run `grain-graphs list`"
        ) from None


def cmd_list(_args) -> int:
    print("available programs (default inputs; see repro.apps for knobs):")
    for name in sorted(PROGRAMS):
        print(f"  {name}")
    return 0


def cmd_analyze(args) -> int:
    program = _resolve(args.program)
    study = profile_program(
        program,
        flavor=flavor_by_name(args.flavor),
        num_threads=args.threads,
        reference_threads=None if args.no_reference else 1,
    )
    print(study.report.summary())
    print()
    for advice in study.advice:
        print(f"ADVICE: {advice}")
    if args.graphml or args.svg:
        view = make_view(
            study.report.metrics, study.report.problems, args.view
        )
        if args.graphml:
            from .core.graphml import write_graphml

            path = write_graphml(
                study.graph, args.graphml, view=view,
                critical_nodes=study.report.metrics.critical_path.nodes,
            )
            print(f"wrote {path}")
        if args.svg:
            from .core.svg import render_svg

            reduced, _ = reduce_graph(study.graph)
            path = render_svg(
                reduced, args.svg, view=view,
                title=f"{program.name} — {args.view} view",
            )
            print(f"wrote {path}")
    return 0


def cmd_lint(args) -> int:
    program = _resolve(args.program)
    result = run_program(
        program,
        flavor=flavor_by_name(args.flavor),
        num_threads=args.threads,
    )
    report = run_lint(trace=result.trace, program=program.name)
    if args.json:
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    threshold = Severity.from_label(args.fail_on)
    return 1 if report.at_or_above(threshold) else 0


def cmd_check(args) -> int:
    import json as _json

    from .staticc import check_program

    if args.all:
        names = sorted(PROGRAMS)
    elif args.programs:
        names = args.programs
    else:
        raise SystemExit("check: name programs or pass --all")
    threshold = Severity.from_label(args.fail_on)
    failed = False
    payloads = []
    for name in names:
        program = _resolve(name)
        model, report = check_program(program)
        if args.json:
            payloads.append(report.to_dict())
        else:
            print(model.summary())
            print(render_text(report, verbose=args.verbose))
            print()
        if report.at_or_above(threshold):
            failed = True
    if args.json:
        if len(payloads) == 1:
            print(_json.dumps(payloads[0], indent=2))
        else:
            print(_json.dumps(payloads, indent=2))
    return 1 if failed else 0


def cmd_speedups(args) -> int:
    programs = [_resolve(name) for name in args.programs]
    rows = speedup_table(programs, num_threads=args.threads)
    print(format_speedup_table(rows))
    return 0


def cmd_study(args) -> int:
    from .exec import MatrixPoint, RunCache, StudyRunner
    from .runtime.engine import engine_invocations

    try:
        points = [
            MatrixPoint.parse(
                spec, default_flavor=args.flavor, default_threads=args.threads
            )
            for chunk in args.matrix
            for spec in chunk.split(",")
            if spec.strip()
        ]
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if not points:
        raise SystemExit("empty study matrix")
    unknown = sorted({p.program for p in points} - PROGRAMS.keys())
    if unknown:
        raise SystemExit(
            f"unknown programs {', '.join(unknown)}; run `grain-graphs list`"
        )
    cache = RunCache(args.cache) if args.cache else None
    runner = StudyRunner(
        cache=cache,
        jobs=args.jobs,
        reference_threads=None if args.no_reference else 1,
    )
    invocations_before = engine_invocations()
    started = time.perf_counter()
    studies = runner.run_matrix(points)
    elapsed = time.perf_counter() - started

    header = (
        f"{'program':28} {'flavor':7} {'threads':>7} "
        f"{'makespan':>14} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for point, study in zip(points, studies):
        print(
            f"{point.program[:28]:28} {point.flavor:7} {point.threads:>7} "
            f"{study.makespan_cycles:>14} {study.speedup:>8.2f}"
        )
    if args.cache_stats:
        print()
        print(f"matrix points: {len(points)}  "
              f"simulated: {runner.simulated}  "
              f"engine invocations (this process): "
              f"{engine_invocations() - invocations_before}")
        if cache is not None:
            print(f"cache root: {cache.root}")
            print(f"code fingerprint: {cache.fingerprint}")
            print(f"cache {cache.stats.format()}")
        else:
            print("cache: disabled (pass --cache DIR to persist artifacts)")
        print(f"wall-clock: {elapsed:.2f}s  jobs: {args.jobs}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="grain-graphs",
        description="Grain graphs: OpenMP performance analysis made easy "
        "(PPoPP'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark programs").set_defaults(
        fn=cmd_list
    )

    analyze = sub.add_parser("analyze", help="profile and analyze a program")
    analyze.add_argument("program")
    analyze.add_argument("--flavor", default="MIR", help="MIR | ICC | GCC")
    analyze.add_argument("--threads", type=int, default=48)
    analyze.add_argument("--no-reference", action="store_true",
                         help="skip the 1-core work-deviation run")
    analyze.add_argument("--graphml", help="write a yEd GraphML file")
    analyze.add_argument("--svg", help="write a reduced-graph SVG")
    analyze.add_argument("--view", default="parallel_benefit",
                         choices=VIEW_KINDS)
    analyze.set_defaults(fn=cmd_analyze)

    lint = sub.add_parser(
        "lint", help="run diagnostic passes over a program's trace and graphs"
    )
    lint.add_argument("program")
    lint.add_argument("--flavor", default="MIR", help="MIR | ICC | GCC")
    lint.add_argument("--threads", type=int, default=8)
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable diagnostic report")
    lint.add_argument("--fail-on", default="error",
                      choices=[s.label for s in Severity],
                      help="exit non-zero at or above this severity")
    lint.add_argument("--verbose", action="store_true",
                      help="also list every pass that ran")
    lint.set_defaults(fn=cmd_lint)

    check = sub.add_parser(
        "check",
        help="static analysis only: expand symbolically, no simulation",
    )
    check.add_argument("programs", nargs="*", metavar="PROGRAM")
    check.add_argument("--all", action="store_true",
                       help="check every registered program")
    check.add_argument("--json", action="store_true",
                       help="emit the machine-readable diagnostic report")
    check.add_argument("--fail-on", default="error",
                       choices=[s.label for s in Severity],
                       help="exit non-zero at or above this severity")
    check.add_argument("--verbose", action="store_true",
                       help="also list every pass that ran")
    check.set_defaults(fn=cmd_check)

    speedups = sub.add_parser("speedups", help="Fig. 1 style speedup table")
    speedups.add_argument("programs", nargs="+")
    speedups.add_argument("--threads", type=int, default=48)
    speedups.set_defaults(fn=cmd_speedups)

    study = sub.add_parser(
        "study",
        help="run a cached, deduplicated study matrix (repro.exec)",
    )
    study.add_argument(
        "--matrix", action="append", required=True, metavar="POINTS",
        help="comma-separated PROGRAM[:FLAVOR[:THREADS]] points; "
        "repeatable (e.g. --matrix sort:MIR:8,sort:GCC:8 --matrix fft)",
    )
    study.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for cache misses")
    study.add_argument("--cache", metavar="DIR",
                       help="artifact cache directory (omit for cold runs)")
    study.add_argument("--cache-stats", action="store_true",
                       help="print hit/miss/store and simulation counters")
    study.add_argument("--no-reference", action="store_true",
                       help="skip the 1-core work-deviation reference runs")
    study.add_argument("--flavor", default="MIR",
                       help="default flavor for points that omit one")
    study.add_argument("--threads", type=int, default=48,
                       help="default thread count for points that omit one")
    study.set_defaults(fn=cmd_study)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
