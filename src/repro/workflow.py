"""High-level workflow: run -> trace -> graph -> metrics -> report.

This is the "grain graph based visual performance analysis work-flow" of
Sec. 4.2 as one function call: :func:`profile_program` executes a program
under a flavor at a thread count (plus a single-core reference run for
work deviation), builds and validates the grain graph, computes every
metric, detects problems, and derives advice.

:func:`speedup_table` reproduces the Fig. 1 methodology: speedups of a
program on each runtime system, before/after optimization being simply
two different programs.

Every engine run in this module flows through a
:class:`repro.exec.TraceExecutor`, which deduplicates repeated points
(notably the shared single-core reference run) and consults the
process-wide default :class:`repro.exec.RunCache` when one is installed
(see ``benchmarks/conftest.py``) — so re-generating experiments against
unchanged code never re-simulates anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from .analysis.advisor import Advice, advise
from .analysis.report import AnalysisReport, analyze
from .analysis.thresholds import Thresholds
from .analysis.timeline import ThreadTimeline, thread_timeline
from .core.builder import build_grain_graph
from .core.nodes import GrainGraph
from .core.validate import validate_graph
from .lint import LintReport, run_lint
from .machine import MachineConfig
from .metrics.parallelism import IntervalPreset
from .obs import registry as _obs
from .profiler.recorder import ProfilerConfig
from .runtime.api import Program
from .runtime.engine import RunResult
from .runtime.flavors import GCC, ICC, MIR, RuntimeFlavor

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .advisor import AdvisorReport
    from .exec import RunCache, TraceExecutor
    from .staticc import CrossValidation, StaticModel


@dataclass
class Study:
    """Everything one profiling study produces."""

    program: Program
    result: RunResult
    graph: GrainGraph
    report: AnalysisReport
    advice: list[Advice]
    timeline: ThreadTimeline
    reference: Optional[RunResult] = None
    reference_graph: Optional[GrainGraph] = None
    lint_report: Optional[LintReport] = None
    static_model: "Optional[StaticModel]" = None
    static_report: Optional[LintReport] = None
    advisor_report: "Optional[AdvisorReport]" = None

    def cross_validation(self) -> "Optional[CrossValidation]":
        """The static-vs-measured work/span bracket, when the study was
        built with ``static_check=True``: asserts nothing, just reports
        ``static T∞ <= measured critical path <= static T1 upper``."""
        if self.static_model is None:
            return None
        from .metrics.critical_path import critical_path
        from .runtime.flavors import flavor_by_name
        from .staticc import CrossValidation, bracket

        bounds = bracket(
            self.static_model,
            flavor_by_name(self.result.flavor),
            self.result.num_threads,
        )
        return CrossValidation(
            program=self.program.name,
            num_threads=self.result.num_threads,
            span_lower=bounds.span_lower,
            measured_critical_path=critical_path(self.graph).length_cycles,
            work_upper=bounds.work_upper,
            static_task_count=self.static_model.task_count,
            dynamic_task_count=len(
                {
                    node.grain_id
                    for node in self.graph.grain_nodes()
                    if node.grain_id and node.grain_id.startswith("t:")
                }
            ),
        )

    @property
    def makespan_cycles(self) -> int:
        return self.result.makespan_cycles

    @property
    def speedup(self) -> float:
        """Speedup over the single-core reference run (1.0 if absent)."""
        if self.reference is None:
            return 1.0
        return self.reference.makespan_cycles / self.result.makespan_cycles


def build_study(
    program: Program,
    result: RunResult,
    reference: RunResult | None = None,
    thresholds: Thresholds | None = None,
    interval: int | IntervalPreset = IntervalPreset.MEDIAN_GRAIN_LENGTH,
    optimistic: bool = True,
    validate: bool = True,
    lint: bool = False,
    static_check: bool = False,
    advise_static: bool = False,
) -> Study:
    """Assemble a :class:`Study` from already-executed run results.

    This is the analysis half of :func:`profile_program`, split out so
    the study runner (:mod:`repro.exec`) can feed it runs rebuilt from
    cached traces — a Study assembled from a cache hit is
    indistinguishable from one assembled after a live simulation.

    ``static_check=True`` additionally expands the program symbolically
    (:mod:`repro.staticc`) and attaches the static model and its
    program-layer lint report; :meth:`Study.cross_validation` then
    compares the static work/span bracket against the measured run.
    ``advise_static=True`` runs the parallelization advisor
    (:func:`repro.advisor.advise_program`) at the run's flavor and
    thread count — reusing the ``static_check`` model when both are
    requested — attaching the ranked :class:`AdvisorReport` and
    appending its recommendations to :attr:`Study.advice`.
    """
    with _obs.span("graph.build"):
        graph = build_grain_graph(result.trace)
    if validate:
        with _obs.span("graph.validate"):
            validate_graph(graph)
    lint_report = None
    if lint:
        with _obs.span("lint.run"):
            lint_report = run_lint(
                trace=result.trace, graph=graph, program=program.name
            )
    static_model = None
    static_report = None
    if static_check:
        from .staticc import check_program

        with _obs.span("static.check"):
            static_model, static_report = check_program(program)
    advisor_report = None
    if advise_static:
        from .advisor import advise_program

        advisor_report = advise_program(
            program,
            flavor=result.flavor,
            num_threads=result.num_threads,
            model=static_model,
        )
    if reference is not None:
        with _obs.span("graph.build"):
            reference_graph = build_grain_graph(reference.trace)
    else:
        reference_graph = None
    with _obs.span("analysis.analyze"):
        report = analyze(
            graph,
            reference=reference_graph,
            thresholds=thresholds,
            interval=interval,
            optimistic=optimistic,
        )
    with _obs.span("analysis.timeline"):
        timeline = thread_timeline(result.trace)
    advice = advise(report)
    if advisor_report is not None:
        from .analysis.advisor import advice_from_recommendations

        advice.extend(
            advice_from_recommendations(advisor_report.recommendations)
        )
    return Study(
        program=program,
        result=result,
        graph=graph,
        report=report,
        advice=advice,
        timeline=timeline,
        reference=reference,
        reference_graph=reference_graph,
        lint_report=lint_report,
        static_model=static_model,
        static_report=static_report,
        advisor_report=advisor_report,
    )


def profile_program(
    program: Program,
    flavor: RuntimeFlavor = MIR,
    num_threads: int = 48,
    machine_config: MachineConfig | None = None,
    reference_threads: int | None = 1,
    thresholds: Thresholds | None = None,
    interval: int | IntervalPreset = IntervalPreset.MEDIAN_GRAIN_LENGTH,
    optimistic: bool = True,
    validate: bool = True,
    profiler: ProfilerConfig | None = None,
    lint: bool = False,
    static_check: bool = False,
    advise: bool = False,
    cache: "RunCache | None" = None,
) -> Study:
    """Run the full analysis pipeline on one program.

    ``reference_threads`` (default 1) triggers a second run used as the
    work-deviation baseline; pass ``None`` to skip it.  ``lint=True``
    additionally runs every registered ``repro.lint`` pass over the trace
    and both graph layers, attaching the :class:`LintReport` to the study.
    ``static_check=True`` also attaches the ahead-of-simulation static
    model and report (see :func:`build_study`).  ``advise=True`` attaches
    the parallelization advisor's ranked recommendations
    (:class:`repro.advisor.AdvisorReport`) and folds them into
    :attr:`Study.advice`.
    ``cache`` (default: the :func:`repro.exec.get_default_cache`, which
    is ``None`` unless explicitly installed) reuses stored traces instead
    of simulating.
    """
    from .exec import TraceExecutor, get_default_cache

    executor = TraceExecutor(
        cache=cache if cache is not None else get_default_cache(),
        machine_config=machine_config,
        profiler=profiler,
    )
    result = executor.run(program, flavor, num_threads)
    reference = None
    if reference_threads is not None and reference_threads != num_threads:
        reference = executor.run(program, flavor, reference_threads)
    return build_study(
        program,
        result,
        reference=reference,
        thresholds=thresholds,
        interval=interval,
        optimistic=optimistic,
        validate=validate,
        lint=lint,
        static_check=static_check,
        advise_static=advise,
    )


@dataclass
class SpeedupRow:
    program: str
    flavor: str
    threads: int
    makespan_cycles: int
    single_core_cycles: int

    @property
    def speedup(self) -> float:
        return self.single_core_cycles / self.makespan_cycles


def speedup_table(
    programs: Sequence[Program],
    flavors: Sequence[RuntimeFlavor] = (GCC, ICC, MIR),
    num_threads: int = 48,
    machine_config: MachineConfig | None = None,
    baseline_flavor: RuntimeFlavor = ICC,
    cache: "RunCache | None" = None,
    executor: "TraceExecutor | None" = None,
) -> list[SpeedupRow]:
    """The Fig. 1 measurement, using the paper's own baseline: "speedup
    ... over single core execution with ICC" (Sec. 4.3.6).  At one thread
    ICC's internal cutoff executes tasks undeferred, so the baseline is a
    near-serial elision rather than a task-overhead-bloated 1-thread run
    — which is exactly what makes task-flood programs score poorly.

    Runs are deduplicated through a :class:`repro.exec.TraceExecutor`:
    the single-core baseline is simulated once per program no matter how
    many flavors are measured (and not at all when it coincides with a
    requested matrix point, or when a cache already holds it).  Pass
    ``executor`` to share deduplication with other measurements."""
    from .exec import TraceExecutor, get_default_cache

    if executor is None:
        executor = TraceExecutor(
            cache=cache if cache is not None else get_default_cache(),
            machine_config=machine_config,
        )
    rows: list[SpeedupRow] = []
    for program in programs:
        baseline = executor.run(program, baseline_flavor, 1)
        for flavor in flavors:
            multi = executor.run(program, flavor, num_threads)
            rows.append(
                SpeedupRow(
                    program=program.name,
                    flavor=flavor.name,
                    threads=num_threads,
                    makespan_cycles=multi.makespan_cycles,
                    single_core_cycles=baseline.makespan_cycles,
                )
            )
    return rows


def format_speedup_table(rows: Sequence[SpeedupRow]) -> str:
    header = f"{'program':28} {'flavor':7} {'threads':>7} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.program[:28]:28} {row.flavor:7} {row.threads:>7} "
            f"{row.speedup:>8.2f}"
        )
    return "\n".join(lines)
