"""PAPI-like hardware counter values.

The MIR profiler reads hardware performance counters through PAPI at grain
events to measure "grain execution time and memory behavior statistics such
as L1 cache misses and memory stall cycles" (Sec. 4.2).  This module is the
simulated counterpart: a small value type accumulated per fragment/chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CounterSet:
    """Counter deltas for one measured span.

    ``cycles`` is total elapsed cycles; ``compute_cycles`` the retired-work
    portion and ``stall_cycles`` the memory-stall portion (so ``cycles ==
    compute_cycles + stall_cycles`` for work spans).  Miss counters are in
    cache lines; ``remote_lines`` counts lines serviced by a remote NUMA
    node.
    """

    cycles: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0
    l1_misses: int = 0
    llc_misses: int = 0
    remote_lines: int = 0
    accesses: int = 0

    def __add__(self, other: "CounterSet") -> "CounterSet":
        return CounterSet(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "CounterSet") -> "CounterSet":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "CounterSet":
        return CounterSet(**self.to_dict())

    def to_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "CounterSet":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def memory_hierarchy_utilization(self) -> float:
        """Computation cycles per stalled cycle (Sec. 3.2).

        The paper flags utilization below two as a likely problem.  A span
        with zero stalls has unbounded utilization; we return ``inf`` so
        threshold comparisons behave naturally.
        """
        if self.stall_cycles == 0:
            return float("inf")
        return self.compute_cycles / self.stall_cycles

    @property
    def miss_ratio(self) -> float:
        """L1 misses per access (0 when nothing was accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.l1_misses / self.accesses
