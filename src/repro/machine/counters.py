"""PAPI-like hardware counter values.

The MIR profiler reads hardware performance counters through PAPI at grain
events to measure "grain execution time and memory behavior statistics such
as L1 cache misses and memory stall cycles" (Sec. 4.2).  This module is the
simulated counterpart: a small value type accumulated per fragment/chunk.

This type sits on the engine's hottest path — one instance per work
segment, one accumulator per fragment — so it is a ``__slots__`` class
with an explicit field list rather than a dataclass: the previous
``dataclasses.fields(self)`` reflection in ``__iadd__``/``to_dict`` was
one of the largest single costs in a simulated run.  The field *order*
is part of the serialization contract (``to_dict`` drives the JSONL
trace bytes) and must not change.
"""

from __future__ import annotations

#: Field names in declaration (and serialization) order.
COUNTER_FIELDS: tuple[str, ...] = (
    "cycles",
    "compute_cycles",
    "stall_cycles",
    "l1_misses",
    "llc_misses",
    "remote_lines",
    "accesses",
)


class CounterSet:
    """Counter deltas for one measured span.

    ``cycles`` is total elapsed cycles; ``compute_cycles`` the retired-work
    portion and ``stall_cycles`` the memory-stall portion (so ``cycles ==
    compute_cycles + stall_cycles`` for work spans).  Miss counters are in
    cache lines; ``remote_lines`` counts lines serviced by a remote NUMA
    node.
    """

    __slots__ = COUNTER_FIELDS

    def __init__(
        self,
        cycles: int = 0,
        compute_cycles: int = 0,
        stall_cycles: int = 0,
        l1_misses: int = 0,
        llc_misses: int = 0,
        remote_lines: int = 0,
        accesses: int = 0,
    ) -> None:
        self.cycles = cycles
        self.compute_cycles = compute_cycles
        self.stall_cycles = stall_cycles
        self.l1_misses = l1_misses
        self.llc_misses = llc_misses
        self.remote_lines = remote_lines
        self.accesses = accesses

    def __add__(self, other: "CounterSet") -> "CounterSet":
        return CounterSet(
            self.cycles + other.cycles,
            self.compute_cycles + other.compute_cycles,
            self.stall_cycles + other.stall_cycles,
            self.l1_misses + other.l1_misses,
            self.llc_misses + other.llc_misses,
            self.remote_lines + other.remote_lines,
            self.accesses + other.accesses,
        )

    def __iadd__(self, other: "CounterSet") -> "CounterSet":
        self.cycles += other.cycles
        self.compute_cycles += other.compute_cycles
        self.stall_cycles += other.stall_cycles
        self.l1_misses += other.l1_misses
        self.llc_misses += other.llc_misses
        self.remote_lines += other.remote_lines
        self.accesses += other.accesses
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterSet):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in COUNTER_FIELDS
        )
        return f"CounterSet({inner})"

    def as_tuple(self) -> tuple[int, int, int, int, int, int, int]:
        """The counter values in field order (columnar-slab row form)."""
        return (
            self.cycles,
            self.compute_cycles,
            self.stall_cycles,
            self.l1_misses,
            self.llc_misses,
            self.remote_lines,
            self.accesses,
        )

    @classmethod
    def from_values(
        cls,
        cycles: int,
        compute_cycles: int,
        stall_cycles: int,
        l1_misses: int,
        llc_misses: int,
        remote_lines: int,
        accesses: int,
    ) -> "CounterSet":
        """Positional constructor mirroring :meth:`as_tuple` order."""
        return cls(
            cycles,
            compute_cycles,
            stall_cycles,
            l1_misses,
            llc_misses,
            remote_lines,
            accesses,
        )

    def copy(self) -> "CounterSet":
        return CounterSet(*self.as_tuple())

    def to_dict(self) -> dict[str, int]:
        return {
            "cycles": self.cycles,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "l1_misses": self.l1_misses,
            "llc_misses": self.llc_misses,
            "remote_lines": self.remote_lines,
            "accesses": self.accesses,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "CounterSet":
        return cls(
            **{k: v for k, v in data.items() if k in COUNTER_FIELDS}
        )

    @property
    def memory_hierarchy_utilization(self) -> float:
        """Computation cycles per stalled cycle (Sec. 3.2).

        The paper flags utilization below two as a likely problem.  A span
        with zero stalls has unbounded utilization; we return ``inf`` so
        threshold comparisons behave naturally.
        """
        if self.stall_cycles == 0:
            return float("inf")
        return self.compute_cycles / self.stall_cycles

    @property
    def miss_ratio(self) -> float:
        """L1 misses per access (0 when nothing was accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.l1_misses / self.accesses
