"""Per-node memory-controller contention.

Round-robin page distribution helps Sort in the paper *because* it spreads
traffic over all memory controllers; NUMA latency alone would not change
(remote cores still pay remote latency either way).  We therefore track,
per NUMA node, the summed traffic weight of memory-bound work segments
currently in flight against it and inflate miss latency with a linear
queueing factor.

The engine registers a segment's per-node demand weights when the segment
starts and withdraws them when it retires; the segment's latency multiplier
is sampled at its start (a fixed-point shortcut that keeps the model
closed-form and deterministic).

With first-touch placement every segment directs weight 1.0 at the master's
node, so 48 concurrent segments yield load 48 there; with round-robin over
8 nodes each segment contributes 1/8 per node, so the same 48 segments
yield load 6 per node — exactly the relief the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ContentionModel:
    """Linear queueing-delay model for memory controllers.

    ``alpha`` is the extra latency fraction added per unit of additional
    concurrent demand at the same node: with summed demand ``load`` the
    multiplier is ``1 + alpha * max(0, load - 1)``.  ``alpha = 0`` disables
    contention entirely.
    """

    num_nodes: int
    alpha: float = 0.06
    _load: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("need at least one node")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        self._load = [0.0] * self.num_nodes

    def register(self, node_weights: Sequence[float]) -> None:
        """Add a starting segment's per-node traffic weights (sum <= 1)."""
        load = self._load
        for node, weight in enumerate(node_weights):
            if weight:
                load[node] += weight

    def withdraw(self, node_weights: Sequence[float]) -> None:
        """Remove a retiring segment's weights (must mirror register)."""
        load = self._load
        for node, weight in enumerate(node_weights):
            if weight:
                value = load[node] - weight
                if value < -1e-6:
                    raise RuntimeError(f"negative load on node {node}")
                load[node] = value if value > 0.0 else 0.0

    def load(self, node: int) -> float:
        return self._load[node]

    def multiplier(self, node: int) -> float:
        """Latency multiplier for misses serviced by ``node`` right now.

        Rounded to six decimals so that float drift from repeated
        register/withdraw cycles can never flip an integer duration.
        """
        return round(1.0 + self.alpha * max(0.0, self._load[node] - 1.0), 6)

    def reset(self) -> None:
        self._load = [0.0] * self.num_nodes
