"""Memory regions and NUMA page placement.

Applications allocate named *regions* (arrays, matrices, trees).  Each
region is split into pages; a :class:`Placement` policy maps pages to NUMA
nodes.  The cost model asks, for an access from a given core, what fraction
of the touched lines live on each node — that is all the analytic model
needs, so no per-page bookkeeping happens on the access path.

The Sort analysis in the paper (Sec. 4.3.1) reduces work inflation "with
round-robin memory page distribution to different NUMA nodes"; the
:class:`FirstTouch` vs :class:`RoundRobin` policies reproduce exactly that
experiment knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

PAGE_SIZE = 4096


class Placement:
    """Base class for page-placement policies."""

    def node_fractions(self, region: "MemoryRegion", num_nodes: int) -> list[float]:
        """Fraction of the region's pages living on each NUMA node."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FirstTouch(Placement):
    """All pages land on the node of the core that first touches them.

    OpenMP programs typically initialise data from the master thread, so
    under first-touch the whole region ends up on the master's node — the
    root cause of the work inflation the paper observes in Sort and
    359.botsspar.  ``touch_node`` is resolved when the region is allocated.
    """

    touch_node: int = 0

    def node_fractions(self, region: "MemoryRegion", num_nodes: int) -> list[float]:
        fractions = [0.0] * num_nodes
        fractions[self.touch_node % num_nodes] = 1.0
        return fractions

    def describe(self) -> str:
        return f"first-touch(node={self.touch_node})"


@dataclass(frozen=True)
class RoundRobin(Placement):
    """Pages are interleaved round-robin across all NUMA nodes (the
    ``numactl --interleave`` / MIR data-distribution fix from the paper)."""

    def node_fractions(self, region: "MemoryRegion", num_nodes: int) -> list[float]:
        pages = region.num_pages
        base = pages // num_nodes
        extra = pages % num_nodes
        return [
            (base + (1 if node < extra else 0)) / pages for node in range(num_nodes)
        ]


@dataclass(frozen=True)
class NodePinned(Placement):
    """The whole region is bound to one node (``numactl --membind``)."""

    node: int = 0

    def node_fractions(self, region: "MemoryRegion", num_nodes: int) -> list[float]:
        fractions = [0.0] * num_nodes
        fractions[self.node % num_nodes] = 1.0
        return fractions

    def describe(self) -> str:
        return f"pinned(node={self.node})"


@dataclass(frozen=True)
class MemoryRegion:
    """A named allocation visible to the cost model.

    Regions are identified by integer ids handed out by :class:`MemoryMap`;
    application code refers to them through those ids in work descriptors.
    """

    region_id: int
    name: str
    size_bytes: int
    placement: Placement

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("region size must be positive")

    @property
    def num_pages(self) -> int:
        return max(1, -(-self.size_bytes // PAGE_SIZE))


class MemoryMap:
    """Registry of all regions allocated by a program run."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one NUMA node")
        self.num_nodes = num_nodes
        self._regions: Dict[int, MemoryRegion] = {}
        self._fractions: Dict[int, list[float]] = {}
        self._next_id = 0

    def allocate(
        self, name: str, size_bytes: int, placement: Placement | None = None
    ) -> MemoryRegion:
        """Create a region and resolve its page placement immediately."""
        placement = placement if placement is not None else FirstTouch(0)
        region = MemoryRegion(self._next_id, name, size_bytes, placement)
        self._next_id += 1
        self._regions[region.region_id] = region
        fractions = placement.node_fractions(region, self.num_nodes)
        total = sum(fractions)
        if not 0.999 <= total <= 1.001:
            raise ValueError(
                f"placement {placement.describe()} fractions sum to {total}"
            )
        self._fractions[region.region_id] = fractions
        return region

    def region(self, region_id: int) -> MemoryRegion:
        return self._regions[region_id]

    def __contains__(self, region_id: int) -> bool:
        return region_id in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self._regions.values())

    def node_fractions(self, region_id: int) -> list[float]:
        """Fraction of the region's pages on each node (resolved at
        allocation time, constant afterwards)."""
        return self._fractions[region_id]

    def home_node(self, region_id: int) -> int:
        """The node holding the plurality of the region's pages."""
        fractions = self._fractions[region_id]
        return max(range(len(fractions)), key=lambda n: (fractions[n], -n))
