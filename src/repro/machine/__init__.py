"""Simulated shared-memory NUMA machine.

This package is the hardware substrate of the reproduction.  The paper
profiled real OpenMP programs on a 48-core AMD Opteron 6172 system; here a
parametric machine model stands in for that testbed (see DESIGN.md,
"Substitutions").  The model provides

- a socket/core/NUMA topology with a distance table (:mod:`.topology`),
- memory regions with page-placement policies (:mod:`.memory`),
- a working-set cache model: private caches plus per-socket LLC
  (:mod:`.caches`),
- per-node memory-controller contention (:mod:`.contention`),
- an analytic cost model turning a work descriptor into execution cycles
  and PAPI-like counter values (:mod:`.cost`, :mod:`.counters`).

Everything is deterministic: all durations are integer cycles and no wall
clock or RNG state leaks into results.
"""

from .topology import MachineTopology, opteron6172, small_smp
from .memory import (
    MemoryMap,
    MemoryRegion,
    Placement,
    FirstTouch,
    RoundRobin,
    NodePinned,
)
from .caches import CacheModel, CacheConfig
from .contention import ContentionModel
from .counters import CounterSet
from .cost import CostParams, Access, WorkRequest, CostModel
from .machine import Machine, MachineConfig

__all__ = [
    "MachineTopology",
    "opteron6172",
    "small_smp",
    "MemoryMap",
    "MemoryRegion",
    "Placement",
    "FirstTouch",
    "RoundRobin",
    "NodePinned",
    "CacheModel",
    "CacheConfig",
    "ContentionModel",
    "CounterSet",
    "CostParams",
    "Access",
    "WorkRequest",
    "CostModel",
    "Machine",
    "MachineConfig",
]
