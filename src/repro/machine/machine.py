"""The :class:`Machine` facade bundling topology, caches, memory, and cost.

One :class:`Machine` instance represents one program run's hardware state;
the runtime engine owns it.  ``Machine.fresh()`` clones the configuration
with cold caches and empty memory map, which the workflow layer uses to run
the same program at different thread counts (e.g. the 1-core reference run
for work deviation).
"""

from __future__ import annotations

from dataclasses import dataclass

from .caches import CacheConfig, CacheModel
from .contention import ContentionModel
from .cost import CostModel, CostParams
from .memory import MemoryMap, Placement, MemoryRegion
from .topology import MachineTopology, opteron6172


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to (re)build identical machine state."""

    topology: MachineTopology
    cache: CacheConfig
    cost: CostParams
    contention_alpha: float = 0.06

    @classmethod
    def paper_testbed(cls) -> "MachineConfig":
        """The 48-core Opteron configuration used throughout the paper."""
        return cls(topology=opteron6172(), cache=CacheConfig(), cost=CostParams())


class Machine:
    """Mutable hardware state for one simulated run."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig.paper_testbed()
        self.used = False  # set once an engine adopts this machine
        self.topology = self.config.topology
        self.caches = CacheModel(self.topology, self.config.cache)
        self.memory = MemoryMap(self.topology.num_nodes)
        self.contention = ContentionModel(
            self.topology.num_nodes, alpha=self.config.contention_alpha
        )
        self.cost = CostModel(
            self.topology, self.caches, self.memory, self.contention, self.config.cost
        )

    @classmethod
    def paper_testbed(cls) -> "Machine":
        return cls(MachineConfig.paper_testbed())

    def fresh(self) -> "Machine":
        """A new machine with the same configuration and cold state."""
        return Machine(self.config)

    def allocate(
        self, name: str, size_bytes: int, placement: Placement | None = None
    ) -> MemoryRegion:
        """Allocate a named memory region (see :mod:`repro.machine.memory`)."""
        return self.memory.allocate(name, size_bytes, placement)

    @property
    def num_cores(self) -> int:
        return self.topology.num_cores

    def seconds(self, cycles: int) -> float:
        """Convert virtual cycles to seconds at the nominal frequency."""
        return cycles / self.topology.frequency_hz

    def describe(self) -> str:
        return self.topology.describe()
