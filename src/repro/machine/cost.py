"""Analytic cost model: work descriptor -> cycles + counters.

A work segment declares pure compute cycles plus a list of region accesses.
The model charges stall cycles for lines missing the private cache:

- lines hitting the socket LLC pay ``llc_hit_cycles`` each,
- lines going to memory pay ``local_mem_cycles`` scaled by the NUMA
  distance between the requesting core's node and the page's node and by
  the contention multiplier of the servicing node,
- total miss latency is divided by ``mlp`` (memory-level parallelism) since
  real cores overlap outstanding misses.

The result feeds the PAPI-like :class:`~repro.machine.counters.CounterSet`
recorded per grain.  All outputs are integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .caches import CacheModel, LINE_SIZE
from .contention import ContentionModel
from .counters import CounterSet
from .memory import MemoryMap
from .topology import MachineTopology, LOCAL_DISTANCE


@dataclass(frozen=True)
class Access:
    """One region access inside a work segment.

    ``pattern`` in ``(0, 1]`` models access friendliness: 1.0 streams with
    full reuse; lower values (e.g. the column-major inner loop of the
    original ``bmod`` in 359.botsspar) forfeit that fraction of cache hits.
    """

    region_id: int
    nbytes: int
    pattern: float = 1.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("access size must be non-negative")
        if not 0.0 < self.pattern <= 1.0:
            raise ValueError("pattern must be in (0, 1]")


@dataclass(frozen=True)
class WorkRequest:
    """A unit of application computation handed to the machine."""

    cycles: int
    accesses: tuple[Access, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("compute cycles must be non-negative")


@dataclass(frozen=True)
class CostParams:
    """Latency parameters (cycles), loosely Opteron-class."""

    llc_hit_cycles: int = 40
    local_mem_cycles: int = 160
    mlp: float = 4.0  # overlapped outstanding misses

    def __post_init__(self) -> None:
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")


@dataclass
class CostOutcome:
    """Duration and counters for one work segment, plus the per-node
    traffic weights the engine registers with the contention model."""

    duration: int
    counters: CounterSet
    node_weights: list[float] = field(default_factory=list)


class CostModel:
    """Evaluates :class:`WorkRequest` objects against the machine state."""

    def __init__(
        self,
        topology: MachineTopology,
        caches: CacheModel,
        memory: MemoryMap,
        contention: ContentionModel,
        params: CostParams | None = None,
    ) -> None:
        self.topology = topology
        self.caches = caches
        self.memory = memory
        self.contention = contention
        self.params = params or CostParams()

    def node_weights(self, accesses: Sequence[Access]) -> list[float]:
        """Per-node fractions of this segment's memory traffic.

        Used by the engine for contention registration; weights are based
        on page placement (not on cache outcomes) so that registration and
        withdrawal are symmetric.
        """
        weights = [0.0] * self.topology.num_nodes
        total = sum(a.nbytes for a in accesses)
        if total == 0:
            return weights
        for access in accesses:
            fractions = self.memory.node_fractions(access.region_id)
            share = access.nbytes / total
            for node, fraction in enumerate(fractions):
                weights[node] += share * fraction
        return weights

    def charge(self, core: int, work: WorkRequest) -> CostOutcome:
        """Run the model for a segment executing on ``core`` *now*.

        Mutates cache state (the accessed bytes become resident) and reads
        the current contention load, but does not register demand — the
        engine does that with the returned ``node_weights``.
        """
        params = self.params
        my_node = self.topology.node_of_core(core)
        counters = CounterSet(compute_cycles=work.cycles)
        stall = 0.0
        for access in work.accesses:
            if access.nbytes == 0:
                continue
            lines = -(-access.nbytes // LINE_SIZE)
            counters.accesses += lines
            result = self.caches.access(
                core, access.region_id, access.nbytes, access.pattern
            )
            counters.l1_misses += result.llc_hit_lines + result.memory_lines
            counters.llc_misses += result.memory_lines
            stall += result.llc_hit_lines * params.llc_hit_cycles
            if result.memory_lines:
                fractions = self.memory.node_fractions(access.region_id)
                for node, fraction in enumerate(fractions):
                    if fraction == 0.0:
                        continue
                    node_lines = result.memory_lines * fraction
                    distance = self.topology.node_distance(my_node, node)
                    latency = (
                        params.local_mem_cycles
                        * (distance / LOCAL_DISTANCE)
                        * self.contention.multiplier(node)
                    )
                    stall += node_lines * latency
                    if node != my_node:
                        counters.remote_lines += int(node_lines)
        counters.stall_cycles = int(stall / params.mlp)
        counters.cycles = work.cycles + counters.stall_cycles
        return CostOutcome(
            duration=counters.cycles,
            counters=counters,
            node_weights=self.node_weights(work.accesses),
        )
