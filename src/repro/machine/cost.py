"""Analytic cost model: work descriptor -> cycles + counters.

A work segment declares pure compute cycles plus a list of region accesses.
The model charges stall cycles for lines missing the private cache:

- lines hitting the socket LLC pay ``llc_hit_cycles`` each,
- lines going to memory pay ``local_mem_cycles`` scaled by the NUMA
  distance between the requesting core's node and the page's node and by
  the contention multiplier of the servicing node,
- total miss latency is divided by ``mlp`` (memory-level parallelism) since
  real cores overlap outstanding misses.

The result feeds the PAPI-like :class:`~repro.machine.counters.CounterSet`
recorded per grain.  All outputs are integers.

``charge`` runs once per work segment — hundreds of thousands of times in
a large simulation — so :class:`CostModel` precomputes every per-machine
table at construction (core→node, the NUMA-distance-scaled base latency
matrix) and caches each region's placement as a sparse
``[(node, fraction), ...]`` list the first time it is charged (placements
are resolved at allocation and constant afterwards).  The precomputation
is careful to preserve the *exact* floating-point expression tree of the
original per-access loop — ``local_mem_cycles * (distance / LOCAL)`` is
folded, the contention multiplier still multiplies last, and the stall
accumulator still adds terms in access-then-node order — because the
integer durations derived from it feed byte-identical golden traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .caches import CacheModel, LINE_SIZE
from .contention import ContentionModel
from .counters import CounterSet
from .memory import MemoryMap
from .topology import MachineTopology, LOCAL_DISTANCE


@dataclass(frozen=True)
class Access:
    """One region access inside a work segment.

    ``pattern`` in ``(0, 1]`` models access friendliness: 1.0 streams with
    full reuse; lower values (e.g. the column-major inner loop of the
    original ``bmod`` in 359.botsspar) forfeit that fraction of cache hits.
    """

    region_id: int
    nbytes: int
    pattern: float = 1.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("access size must be non-negative")
        if not 0.0 < self.pattern <= 1.0:
            raise ValueError("pattern must be in (0, 1]")


@dataclass(frozen=True)
class WorkRequest:
    """A unit of application computation handed to the machine."""

    cycles: int
    accesses: tuple[Access, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("compute cycles must be non-negative")


@dataclass(frozen=True)
class CostParams:
    """Latency parameters (cycles), loosely Opteron-class."""

    llc_hit_cycles: int = 40
    local_mem_cycles: int = 160
    mlp: float = 4.0  # overlapped outstanding misses

    def __post_init__(self) -> None:
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")


@dataclass
class CostOutcome:
    """Duration and counters for one work segment, plus the per-node
    traffic weights the engine registers with the contention model."""

    duration: int
    counters: CounterSet
    node_weights: list[float] = field(default_factory=list)


class CostModel:
    """Evaluates :class:`WorkRequest` objects against the machine state."""

    def __init__(
        self,
        topology: MachineTopology,
        caches: CacheModel,
        memory: MemoryMap,
        contention: ContentionModel,
        params: CostParams | None = None,
    ) -> None:
        self.topology = topology
        self.caches = caches
        self.memory = memory
        self.contention = contention
        self.params = params or CostParams()
        # Per-machine lookup tables, hoisted off the charge path.
        self._num_nodes = topology.num_nodes
        self._node_of_core: list[int] = [
            topology.node_of_core(core) for core in range(topology.num_cores)
        ]
        # base_latency[my_node][node] folds the distance scaling exactly as
        # the original expression tree did; only the (dynamic) contention
        # multiplier remains to be applied per charge.
        lm = self.params.local_mem_cycles
        self._base_latency: list[list[float]] = [
            [
                lm * (topology.node_distance(a, b) / LOCAL_DISTANCE)
                for b in range(self._num_nodes)
            ]
            for a in range(self._num_nodes)
        ]
        # region_id -> [(node, fraction), ...] with zero entries dropped,
        # ascending node order (matching the dense enumerate it replaces).
        self._sparse_fractions: dict[int, list[tuple[int, float]]] = {}

    def _region_fractions(self, region_id: int) -> list[tuple[int, float]]:
        sparse = self._sparse_fractions.get(region_id)
        if sparse is None:
            sparse = [
                (node, fraction)
                for node, fraction in enumerate(self.memory.node_fractions(region_id))
                if fraction != 0.0
            ]
            self._sparse_fractions[region_id] = sparse
        return sparse

    def node_weights(self, accesses: Sequence[Access]) -> list[float]:
        """Per-node fractions of this segment's memory traffic.

        Used by the engine for contention registration; weights are based
        on page placement (not on cache outcomes) so that registration and
        withdrawal are symmetric.
        """
        weights = [0.0] * self._num_nodes
        total = sum(a.nbytes for a in accesses)
        if total == 0:
            return weights
        for access in accesses:
            share = access.nbytes / total
            for node, fraction in self._region_fractions(access.region_id):
                weights[node] += share * fraction
        return weights

    def charge(self, core: int, work: WorkRequest) -> CostOutcome:
        """Run the model for a segment executing on ``core`` *now*.

        Mutates cache state (the accessed bytes become resident) and reads
        the current contention load, but does not register demand — the
        engine does that with the returned ``node_weights``.
        """
        cycles = work.cycles
        accesses = work.accesses
        if not accesses:
            # Pure-compute fast path: no cache traffic, no stalls.
            return CostOutcome(
                duration=cycles,
                counters=CounterSet(cycles, cycles, 0, 0, 0, 0, 0),
                node_weights=[0.0] * self._num_nodes,
            )
        params = self.params
        my_node = self._node_of_core[core]
        base_latency = self._base_latency[my_node]
        service = self.caches.service_lines
        multiplier = self.contention.multiplier
        llc_hit_cycles = params.llc_hit_cycles
        access_lines = 0
        l1_misses = 0
        llc_misses = 0
        remote_lines = 0
        stall = 0.0
        for access in accesses:
            nbytes = access.nbytes
            if nbytes == 0:
                continue
            access_lines += -(-nbytes // LINE_SIZE)
            _, llc_hit_lines, memory_lines = service(
                core, access.region_id, nbytes, access.pattern
            )
            l1_misses += llc_hit_lines + memory_lines
            llc_misses += memory_lines
            stall += llc_hit_lines * llc_hit_cycles
            if memory_lines:
                for node, fraction in self._region_fractions(access.region_id):
                    node_lines = memory_lines * fraction
                    stall += node_lines * (base_latency[node] * multiplier(node))
                    if node != my_node:
                        remote_lines += int(node_lines)
        stall_cycles = int(stall / params.mlp)
        counters = CounterSet(
            cycles + stall_cycles,
            cycles,
            stall_cycles,
            l1_misses,
            llc_misses,
            remote_lines,
            access_lines,
        )
        return CostOutcome(
            duration=counters.cycles,
            counters=counters,
            node_weights=self.node_weights(accesses),
        )
