"""Machine topology: sockets, cores, NUMA nodes and the distance table.

The paper's test machine is a 48-core, four-socket AMD Opteron 6172 with
frequency scaling disabled.  The scatter metric (Sec. 3.2) measures the
median pairwise distance between cores executing sibling grains, where
"distances are obtained from the NUMA distance table or by subtracting core
identifiers in some topologies"; the scatter *problem threshold* is
"farther than the number of cores in a CPU socket" (Sec. 3.3), i.e.
off-socket on the authors' machine.  Both distance conventions are
supported here.
"""

from __future__ import annotations

from dataclasses import dataclass


# Conventional ACPI SLIT values: local distance is 10, remote distances are
# expressed relative to it.
LOCAL_DISTANCE = 10


@dataclass(frozen=True)
class MachineTopology:
    """An immutable description of the simulated machine.

    Parameters
    ----------
    sockets:
        Number of CPU sockets (packages).
    cores_per_socket:
        Cores in each socket.  Core ids are dense: socket ``s`` owns cores
        ``[s * cores_per_socket, (s + 1) * cores_per_socket)``.
    nodes_per_socket:
        NUMA nodes per socket (the Opteron 6172 has two dies per package).
    same_socket_distance / cross_socket_distance:
        NUMA distance-table entries for remote nodes sharing / not sharing
        a socket; the local entry is always :data:`LOCAL_DISTANCE`.
    frequency_hz:
        Nominal core frequency, used only to convert cycles to seconds in
        reports.
    """

    sockets: int = 4
    cores_per_socket: int = 12
    nodes_per_socket: int = 2
    same_socket_distance: int = 16
    cross_socket_distance: int = 22
    frequency_hz: int = 2_100_000_000
    name: str = "generic-numa"

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("need at least one socket")
        if self.cores_per_socket < 1:
            raise ValueError("need at least one core per socket")
        if self.nodes_per_socket < 1:
            raise ValueError("need at least one NUMA node per socket")
        if self.cores_per_socket % self.nodes_per_socket != 0:
            raise ValueError(
                "cores_per_socket must be divisible by nodes_per_socket"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def num_nodes(self) -> int:
        return self.sockets * self.nodes_per_socket

    @property
    def cores_per_node(self) -> int:
        return self.cores_per_socket // self.nodes_per_socket

    # ------------------------------------------------------------------
    # Placement lookups
    # ------------------------------------------------------------------
    def socket_of_core(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_socket

    def node_of_core(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_node

    def socket_of_node(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_socket

    def cores_of_node(self, node: int) -> range:
        self._check_node(node)
        lo = node * self.cores_per_node
        return range(lo, lo + self.cores_per_node)

    def cores_of_socket(self, socket: int) -> range:
        if not 0 <= socket < self.sockets:
            raise ValueError(f"socket {socket} out of range")
        lo = socket * self.cores_per_socket
        return range(lo, lo + self.cores_per_socket)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def node_distance(self, a: int, b: int) -> int:
        """NUMA distance-table entry between two nodes (SLIT convention)."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return LOCAL_DISTANCE
        if self.socket_of_node(a) == self.socket_of_node(b):
            return self.same_socket_distance
        return self.cross_socket_distance

    def core_distance(self, a: int, b: int) -> int:
        """Distance between two *cores* via the NUMA distance table."""
        return self.node_distance(self.node_of_core(a), self.node_of_core(b))

    def core_id_distance(self, a: int, b: int) -> int:
        """Distance by subtracting core identifiers (the paper's alternate
        convention for topologies where ids encode locality)."""
        self._check_core(a)
        self._check_core(b)
        return abs(a - b)

    def distance_matrix(self) -> list[list[int]]:
        """The full node-to-node distance table as nested lists."""
        n = self.num_nodes
        return [[self.node_distance(i, j) for j in range(n)] for i in range(n)]

    # ------------------------------------------------------------------
    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range [0, {self.num_cores})")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_cores} cores, {self.sockets} sockets x "
            f"{self.cores_per_socket} cores, {self.num_nodes} NUMA nodes "
            f"({self.cores_per_node} cores/node), {self.frequency_hz / 1e9:.1f} GHz"
        )


def opteron6172() -> MachineTopology:
    """The paper's 48-core test machine: four 2.1 GHz AMD Opteron 6172
    packages, each with two six-core dies (NUMA nodes)."""
    return MachineTopology(
        sockets=4,
        cores_per_socket=12,
        nodes_per_socket=2,
        same_socket_distance=16,
        cross_socket_distance=22,
        frequency_hz=2_100_000_000,
        name="amd-opteron-6172",
    )


def small_smp(cores: int = 4) -> MachineTopology:
    """A small single-socket, single-node machine for unit tests."""
    return MachineTopology(
        sockets=1,
        cores_per_socket=cores,
        nodes_per_socket=1,
        name=f"smp-{cores}",
    )
