"""Working-set cache model: per-core private caches and per-socket LLCs.

A full line-accurate cache simulation would dominate run time for the
hundreds of thousands of grains in the paper's programs, and the grain
metrics only consume aggregate miss counts.  We therefore model each cache
as an LRU list of ``(region, granule)`` working-set entries with byte
accounting: an access to ``bytes`` of a region hits for the bytes already
resident and misses for the rest, after which the accessed bytes (capped at
capacity) become the most recently used entry.

The model captures the behaviours the paper's analyses rely on:

- small repeated working sets hit in the private cache (beneficial work
  deviation, Sec. 3.2: "working set fits in the private cache"),
- sibling grains scheduled on the same socket find data in the shared LLC
  while scattered siblings miss to memory (the scatter metric's cost),
- cache-unfriendly access patterns (Strassen leaves, the ``bmod`` triple
  loop in 359.botsspar) are expressed by a ``pattern`` friendliness factor
  that scales the hit fraction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .topology import MachineTopology

LINE_SIZE = 64


@dataclass(frozen=True)
class CacheConfig:
    """Capacities roughly matching one Opteron 6172 core/die."""

    private_bytes: int = 576 * 1024  # 64 KiB L1D + 512 KiB L2
    llc_bytes: int = 6 * 1024 * 1024  # 6 MiB L3 per die, shared


@dataclass
class AccessResult:
    """Line counts by service level for one access."""

    private_hit_lines: int = 0
    llc_hit_lines: int = 0
    memory_lines: int = 0

    @property
    def total_lines(self) -> int:
        return self.private_hit_lines + self.llc_hit_lines + self.memory_lines


class _WorkingSetCache:
    """One LRU working-set cache with byte-granular residency."""

    __slots__ = ("capacity", "_resident", "_used")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._resident: OrderedDict[int, int] = OrderedDict()
        self._used = 0

    def lookup_and_fill(self, region_id: int, nbytes: int) -> int:
        """Return resident (hit) bytes for the access and install the
        accessed bytes as most recently used."""
        hit = min(self._resident.get(region_id, 0), nbytes)
        self._install(region_id, nbytes)
        return hit

    def resident_bytes(self, region_id: int) -> int:
        return self._resident.get(region_id, 0)

    def _install(self, region_id: int, nbytes: int) -> None:
        target = min(nbytes, self.capacity)
        previous = self._resident.pop(region_id, 0)
        self._used -= previous
        # Evict LRU regions until the new footprint fits.
        while self._used + target > self.capacity and self._resident:
            victim, size = self._resident.popitem(last=False)
            self._used -= size
        self._resident[region_id] = target
        self._used += target

    def flush(self) -> None:
        self._resident.clear()
        self._used = 0


class CacheModel:
    """All private caches and LLCs of the machine."""

    def __init__(self, topology: MachineTopology, config: CacheConfig | None = None):
        self.topology = topology
        self.config = config or CacheConfig()
        self._private = [
            _WorkingSetCache(self.config.private_bytes)
            for _ in range(topology.num_cores)
        ]
        self._llc = [
            _WorkingSetCache(self.config.llc_bytes) for _ in range(topology.sockets)
        ]
        # core -> socket, hoisted off the per-access path (the topology
        # lookup revalidates the core id on every call).
        self._socket_of_core = [
            topology.socket_of_core(core) for core in range(topology.num_cores)
        ]

    def service_lines(
        self, core: int, region_id: int, nbytes: int, pattern: float
    ) -> tuple[int, int, int]:
        """``(private_hit, llc_hit, memory)`` line counts for one access.

        The allocation-free hot path behind :meth:`access`: the caller
        (the cost model, via validated :class:`~repro.machine.cost.Access`
        descriptors) guarantees ``nbytes > 0`` and ``pattern`` in (0, 1].
        """
        private_hit = self._private[core].lookup_and_fill(region_id, nbytes)
        private_hit = int(private_hit * pattern)
        remainder = nbytes - private_hit
        llc_hit = self._llc[self._socket_of_core[core]].lookup_and_fill(
            region_id, remainder
        )
        llc_hit = int(llc_hit * pattern)
        mem = remainder - llc_hit
        return (
            -(-private_hit // LINE_SIZE) if private_hit else 0,
            -(-llc_hit // LINE_SIZE) if llc_hit else 0,
            -(-mem // LINE_SIZE) if mem else 0,
        )

    def access(
        self, core: int, region_id: int, nbytes: int, pattern: float = 1.0
    ) -> AccessResult:
        """Model an access of ``nbytes`` of ``region_id`` from ``core``.

        ``pattern`` in ``(0, 1]`` is the access-friendliness factor: 1.0 is
        fully streaming/reuse-friendly; lower values discard that fraction
        of potential hits (strided or pointer-chasing access).
        """
        if nbytes <= 0:
            return AccessResult()
        if not 0.0 < pattern <= 1.0:
            raise ValueError(f"pattern must be in (0, 1], got {pattern}")
        private, llc, mem = self.service_lines(core, region_id, nbytes, pattern)
        return AccessResult(
            private_hit_lines=private, llc_hit_lines=llc, memory_lines=mem
        )

    def private_resident(self, core: int, region_id: int) -> int:
        return self._private[core].resident_bytes(region_id)

    def llc_resident(self, socket: int, region_id: int) -> int:
        return self._llc[socket].resident_bytes(region_id)

    def flush(self) -> None:
        for cache in self._private:
            cache.flush()
        for cache in self._llc:
            cache.flush()
