"""Native SVG rendering of grain graphs with problem-highlight views.

Implements the paper's visual encoding without an external viewer:
grains are rectangles whose height is linearly scaled to execution time,
forks are green dots, joins orange dots, book-keeping nodes turquoise
diamonds; creation edges green, join edges orange, continuations black;
critical-path elements get red borders; a view dims non-problematic
grains and colors offenders with the severity gradient.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from .layout import Layout, layered_layout
from .nodes import EdgeKind, GrainGraph, NodeKind

_EDGE_COLORS = {
    EdgeKind.CREATION: "#2ca02c",
    EdgeKind.JOIN: "#ff7f0e",
    EdgeKind.CONTINUATION: "#555555",
}

_X_STEP = 46.0
_Y_STEP = 78.0
_MARGIN = 40.0


def render_svg(
    graph: GrainGraph,
    path: str | Path,
    view=None,
    critical_nodes: set[int] | None = None,
    layout: Layout | None = None,
    title: str = "",
) -> Path:
    """Render the graph to an SVG file; returns the path."""
    path = Path(path)
    layout = layout or layered_layout(graph)
    critical_nodes = critical_nodes or set()

    durations = [n.duration for n in graph.grain_nodes()]
    max_duration = max(durations, default=1) or 1
    # Grain rectangle height: linear in execution time, 6..56 px.
    def grain_height(duration: int) -> float:
        return 6.0 + 50.0 * duration / max_duration

    width = layout.width * _X_STEP + 2 * _MARGIN
    height = layout.height * _Y_STEP + 2 * _MARGIN + 30

    def pos(nid: int) -> tuple[float, float]:
        x, y = layout.positions[nid]
        return _MARGIN + x * _X_STEP, _MARGIN + 30 + y * _Y_STEP

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN}" y="22" font-size="14" '
            f'font-family="sans-serif">{escape(title)}</text>'
        )

    for edge in graph.edges:
        x1, y1 = pos(edge.src)
        x2, y2 = pos(edge.dst)
        critical = edge.src in critical_nodes and edge.dst in critical_nodes
        color = "#d62728" if critical else _EDGE_COLORS[edge.kind]
        stroke = 2.2 if critical else 1.0
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{stroke}"/>'
        )

    for nid in sorted(graph.nodes):
        node = graph.nodes[nid]
        x, y = pos(nid)
        border = "#d62728" if nid in critical_nodes else "#333333"
        border_width = 2.5 if nid in critical_nodes else 0.8
        tooltip = escape(
            f"{node.grain_id or node.kind.value} dur={node.duration} "
            f"core={node.core} def={node.definition} loc={node.loc}"
        )
        if node.kind in (NodeKind.FRAGMENT, NodeKind.CHUNK):
            fill = "#9ecae1" if node.kind is NodeKind.FRAGMENT else "#74c476"
            if view is not None and node.grain_id:
                fill = view.color_of(node.grain_id)
            h = grain_height(node.duration)
            parts.append(
                f'<rect x="{x - 9:.1f}" y="{y - h / 2:.1f}" width="18" '
                f'height="{h:.1f}" fill="{fill}" stroke="{border}" '
                f'stroke-width="{border_width}"><title>{tooltip}</title></rect>'
            )
        elif node.kind is NodeKind.BOOKKEEPING:
            parts.append(
                f'<path d="M {x:.1f} {y - 7:.1f} L {x + 7:.1f} {y:.1f} '
                f'L {x:.1f} {y + 7:.1f} L {x - 7:.1f} {y:.1f} Z" '
                f'fill="#17becf" stroke="{border}" '
                f'stroke-width="{border_width}"><title>{tooltip}</title></path>'
            )
        else:
            fill = "#2ca02c" if node.kind is NodeKind.FORK else "#ff7f0e"
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5.5" fill="{fill}" '
                f'stroke="{border}" stroke-width="{border_width}">'
                f"<title>{tooltip}</title></circle>"
            )

    if view is not None and view.legend:
        ly = height - 14
        lx = _MARGIN
        for name, color in list(view.legend.items())[:6]:
            parts.append(
                f'<rect x="{lx:.0f}" y="{ly - 10:.0f}" width="12" height="12" '
                f'fill="{color}" stroke="#333"/>'
            )
            parts.append(
                f'<text x="{lx + 16:.0f}" y="{ly:.0f}" font-size="11" '
                f'font-family="sans-serif">{escape(str(name)[:28])}</text>'
            )
            lx += 20 + 7 * min(28, len(str(name)))
    parts.append("</svg>")
    path.write_text("\n".join(parts))
    return path
