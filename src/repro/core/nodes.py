"""Grain-graph node/edge types and the graph container.

The grain graph is "a directed acyclic graph (DAG) that captures the order
of creation and synchronization between grains" with five node types and
three control-flow edge types (Sec. 3.1).  The container here is a thin,
allocation-friendly structure (graphs reach hundreds of thousands of nodes
for the paper's programs); :meth:`GrainGraph.to_networkx` bridges to
networkx for generic algorithms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from ..machine.counters import CounterSet


class NodeKind(enum.Enum):
    FRAGMENT = "fragment"  # task execution between runtime events
    FORK = "fork"  # task creation (green)
    JOIN = "join"  # task / chunk synchronization (orange)
    BOOKKEEPING = "bookkeeping"  # chunk dispatch by a team thread (turquoise)
    CHUNK = "chunk"  # execution of a chunk's iterations (green rectangle)


class EdgeKind(enum.Enum):
    CREATION = "creation"  # fork -> first fragment of child (green)
    JOIN = "join"  # last fragment of child -> join node (orange)
    CONTINUATION = "continuation"  # within-context sequencing (black)


# Grain node kinds: nodes that carry application computation and belong to
# a grain (a task instance or a chunk instance).
GRAIN_NODE_KINDS = frozenset({NodeKind.FRAGMENT, NodeKind.CHUNK})


@dataclass
class GGNode:
    """One grain-graph node.

    ``start``/``end`` are virtual-cycle timestamps (``None`` for grouped
    nodes whose members are disjoint in time).  ``grain_id`` links grain
    nodes to their :class:`~repro.core.grains.Grain`; for grouped nodes
    ``members`` lists the absorbed node ids and weights are aggregated.
    """

    node_id: int
    kind: NodeKind
    start: Optional[int] = None
    end: Optional[int] = None
    core: Optional[int] = None
    counters: Optional[CounterSet] = None
    grain_id: Optional[str] = None
    tid: Optional[int] = None
    frag_seq: Optional[int] = None
    loop_id: Optional[int] = None
    thread: Optional[int] = None  # team-relative thread (loop nodes)
    iter_range: Optional[tuple[int, int]] = None
    definition: str = ""
    loc: str = ""
    label: str = ""
    team_fork: bool = False  # parallel-region fork (may have arity > 1)
    implicit: bool = False  # implicit end-of-region barrier join
    members: tuple[int, ...] = ()  # node ids grouped into this node
    duration_override: Optional[int] = None  # aggregate weight of a group
    # Memory footprints of the grain node's work segments, as
    # (region, byte_start, byte_end) triples — consumed by repro.lint's
    # happens-before race detector.
    reads: tuple[tuple[str, int, int], ...] = ()
    writes: tuple[tuple[str, int, int], ...] = ()

    @property
    def duration(self) -> int:
        if self.duration_override is not None:
            return self.duration_override
        if self.start is None or self.end is None:
            return 0
        return self.end - self.start

    @property
    def is_grain_node(self) -> bool:
        return self.kind in GRAIN_NODE_KINDS

    @property
    def is_group(self) -> bool:
        return bool(self.members)


@dataclass(frozen=True)
class GGEdge:
    src: int
    dst: int
    kind: EdgeKind


class GrainGraph:
    """The grain graph plus its grain table.

    ``grains`` maps grain id -> :class:`~repro.core.grains.Grain`; the
    builder fills it.  ``meta`` carries the trace metadata the graph was
    built from (machine size, thread count, ...), which the metrics need
    for thresholds such as "instantaneous parallelism < number of cores".
    """

    def __init__(self, meta=None) -> None:
        self.meta = meta
        self.nodes: dict[int, GGNode] = {}
        self.edges: list[GGEdge] = []
        self._succ: dict[int, list[tuple[int, EdgeKind]]] = {}
        self._pred: dict[int, list[tuple[int, EdgeKind]]] = {}
        self._next_id = 0
        self.grains: dict[str, "Grain"] = {}  # type: ignore[name-defined]
        self.root_node_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_node(self, kind: NodeKind, **attrs) -> GGNode:
        node = GGNode(node_id=self._next_id, kind=kind, **attrs)
        self._next_id += 1
        self.nodes[node.node_id] = node
        self._succ[node.node_id] = []
        self._pred[node.node_id] = []
        return node

    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"edge endpoints missing: {src} -> {dst}")
        self.edges.append(GGEdge(src, dst, kind))
        self._succ[src].append((dst, kind))
        self._pred[dst].append((src, kind))

    def remove_nodes(self, node_ids: set[int]) -> None:
        """Drop nodes and incident edges (used by reductions)."""
        for nid in node_ids:
            self.nodes.pop(nid, None)
            self._succ.pop(nid, None)
            self._pred.pop(nid, None)
        self.edges = [
            e for e in self.edges
            if e.src not in node_ids and e.dst not in node_ids
        ]
        for adj in (self._succ, self._pred):
            for nid, lst in adj.items():
                adj[nid] = [(other, k) for other, k in lst if other not in node_ids]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, nid: int) -> list[tuple[int, EdgeKind]]:
        return self._succ[nid]

    def predecessors(self, nid: int) -> list[tuple[int, EdgeKind]]:
        return self._pred[nid]

    def out_degree(self, nid: int) -> int:
        return len(self._succ[nid])

    def in_degree(self, nid: int) -> int:
        return len(self._pred[nid])

    def node_count(self, kind: NodeKind | None = None) -> int:
        if kind is None:
            return len(self.nodes)
        return sum(1 for n in self.nodes.values() if n.kind is kind)

    def edge_count(self, kind: EdgeKind | None = None) -> int:
        if kind is None:
            return len(self.edges)
        return sum(1 for e in self.edges if e.kind is kind)

    def grain_nodes(self) -> Iterator[GGNode]:
        for node in self.nodes.values():
            if node.is_grain_node:
                yield node

    @property
    def num_grains(self) -> int:
        return len(self.grains)

    # ------------------------------------------------------------------
    # Algorithms
    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Kahn's algorithm; raises on cycles (the graph must be a DAG)."""
        indeg = {nid: len(self._pred[nid]) for nid in self.nodes}
        stack = sorted((nid for nid, d in indeg.items() if d == 0), reverse=True)
        order: list[int] = []
        while stack:
            nid = stack.pop()
            order.append(nid)
            for succ, _ in self._succ[nid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    stack.append(succ)
        if len(order) != len(self.nodes):
            raise ValueError("grain graph contains a cycle")
        return order

    def to_networkx(self):
        """A networkx.DiGraph with node/edge attributes (for generic graph
        algorithms and interoperability tests)."""
        import networkx as nx

        g = nx.DiGraph()
        for nid, node in self.nodes.items():
            g.add_node(
                nid,
                kind=node.kind.value,
                start=node.start,
                end=node.end,
                duration=node.duration,
                core=node.core,
                grain_id=node.grain_id,
                definition=node.definition,
            )
        for edge in self.edges:
            g.add_edge(edge.src, edge.dst, kind=edge.kind.value)
        return g

    def summary(self) -> str:
        parts = [f"{self.node_count(k)} {k.value}" for k in NodeKind]
        return (
            f"GrainGraph: {len(self.nodes)} nodes ({', '.join(parts)}), "
            f"{len(self.edges)} edges, {len(self.grains)} grains"
        )
