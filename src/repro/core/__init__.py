"""The grain graph: construction, validation, reduction, export.

This package implements Sec. 3.1 of the paper: a DAG with five node types
(fragment, fork, join, book-keeping, chunk) and three control-flow edge
types (creation, synchronization/join, continuation), built from a
profiler trace; structural reductions (fragment reduction, fork reduction,
per-thread book-keeping grouping); and exporters (GraphML for yEd-class
viewers, Graphviz dot, and a native SVG renderer with problem-highlight
views).
"""

from .nodes import NodeKind, EdgeKind, GGNode, GGEdge, GrainGraph
from .ids import task_gid, chunk_gid, loop_key
from .grains import Grain, GrainKind
from .builder import build_grain_graph
from .validate import validate_graph, StructureError
from .reductions import reduce_graph, ReductionReport
from .compare import compare_graphs, GraphComparison
from .zoom import zoom_time_window, zoom_subtree, collapse_subtree

__all__ = [
    "NodeKind",
    "EdgeKind",
    "GGNode",
    "GGEdge",
    "GrainGraph",
    "task_gid",
    "chunk_gid",
    "loop_key",
    "Grain",
    "GrainKind",
    "build_grain_graph",
    "validate_graph",
    "StructureError",
    "reduce_graph",
    "ReductionReport",
    "compare_graphs",
    "GraphComparison",
    "zoom_time_window",
    "zoom_subtree",
    "collapse_subtree",
]
