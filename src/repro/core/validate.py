"""Structural validation of grain graphs (the constraints of Sec. 3.1).

Checked invariants:

1. The graph is a DAG.
2. A (task) fork node has exactly one outgoing creation edge and at most
   one outgoing continuation edge; team forks (parallel-region forks) may
   have one creation edge per team thread.
3. Every join node has at least one incoming fragment edge (join or
   continuation from a fragment/book-keeping chain).
4. Continuation edges connect nodes of the same context (same task id, or
   same loop id for loop chains; the fragment -> team-fork and loop-join ->
   fragment seams of the enclosing task are the two sanctioned crossings).
5. Creation edges go fork -> fragment (tasks) or fork -> book-keeping
   (team forks); join edges go fragment -> join.
6. Book-keeping nodes are followed by a chunk node or a join node; chunk
   nodes always continue to a book-keeping node.
7. Grain intervals never overlap for the same grain and match the graph's
   fragment nodes.

This module is now a thin shim: the checks themselves live in
``repro.lint.graph_passes`` as collecting passes (``structure.*`` rules),
so one lint run can report *every* violation.  :func:`validate_graph`
keeps the historical raise-on-first-error contract on top of them.
"""

from __future__ import annotations

from .nodes import GrainGraph


class StructureError(ValueError):
    """A grain-graph structural constraint is violated."""


def validate_graph(graph: GrainGraph, reduced: bool | None = None) -> None:
    """Raise :class:`StructureError` on the first violated constraint.

    ``reduced`` selects the rule set: reduced graphs legitimately relax
    fork arity (grouped forks create several children) and the per-node
    chunk/book-keeping chaining (chunks become siblings of the grouped
    book-keeping node).  When ``None``, it is inferred from the presence
    of grouped nodes.
    """
    # Imported lazily: repro.lint imports repro.core.nodes, so a module-
    # level import here would be circular.
    from ..lint.graph_passes import structure_diagnostics

    for diagnostic in structure_diagnostics(graph, reduced=reduced):
        raise StructureError(diagnostic.message)
