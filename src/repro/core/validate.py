"""Structural validation of grain graphs (the constraints of Sec. 3.1).

Checked invariants:

1. The graph is a DAG.
2. A (task) fork node has exactly one outgoing creation edge and at most
   one outgoing continuation edge; team forks (parallel-region forks) may
   have one creation edge per team thread.
3. Every join node has at least one incoming fragment edge (join or
   continuation from a fragment/book-keeping chain).
4. Continuation edges connect nodes of the same context (same task id, or
   same loop id for loop chains; the fragment -> team-fork and loop-join ->
   fragment seams of the enclosing task are the two sanctioned crossings).
5. Creation edges go fork -> fragment (tasks) or fork -> book-keeping
   (team forks); join edges go fragment -> join.
6. Book-keeping nodes are followed by a chunk node or a join node; chunk
   nodes always continue to a book-keeping node.
7. Grain intervals never overlap for the same grain and match the graph's
   fragment nodes.
"""

from __future__ import annotations

from .nodes import EdgeKind, GGNode, GrainGraph, NodeKind


class StructureError(ValueError):
    """A grain-graph structural constraint is violated."""


def validate_graph(graph: GrainGraph, reduced: bool | None = None) -> None:
    """Raise :class:`StructureError` on the first violated constraint.

    ``reduced`` selects the rule set: reduced graphs legitimately relax
    fork arity (grouped forks create several children) and the per-node
    chunk/book-keeping chaining (chunks become siblings of the grouped
    book-keeping node).  When ``None``, it is inferred from the presence
    of grouped nodes.
    """
    if reduced is None:
        reduced = any(node.is_group for node in graph.nodes.values())
    _check_acyclic(graph)
    for node in graph.nodes.values():
        if node.kind is NodeKind.FORK:
            _check_fork(graph, node, reduced)
        elif node.kind is NodeKind.JOIN:
            _check_join(graph, node)
        elif not reduced and node.kind is NodeKind.BOOKKEEPING:
            _check_bookkeeping(graph, node)
        elif not reduced and node.kind is NodeKind.CHUNK:
            _check_chunk(graph, node)
    for edge in graph.edges:
        _check_edge(graph, edge)
    _check_grains(graph)


def _check_acyclic(graph: GrainGraph) -> None:
    try:
        graph.topological_order()
    except ValueError as exc:
        raise StructureError(str(exc)) from None


def _check_fork(graph: GrainGraph, node: GGNode, reduced: bool = False) -> None:
    creations = [
        (dst, kind)
        for dst, kind in graph.successors(node.node_id)
        if kind is EdgeKind.CREATION
    ]
    if node.team_fork or (reduced and node.is_group):
        if not creations:
            raise StructureError(f"team fork {node.node_id} creates nothing")
        return
    if reduced:
        if len(creations) != 1:
            raise StructureError(
                f"ungrouped fork {node.node_id} has {len(creations)} "
                "creation edges"
            )
        return
    if len(creations) != 1:
        raise StructureError(
            f"fork {node.node_id} has {len(creations)} creation edges "
            "(must connect to a single child fragment)"
        )
    dst = graph.nodes[creations[0][0]]
    if dst.kind is not NodeKind.FRAGMENT:
        raise StructureError(
            f"fork {node.node_id} creation edge targets {dst.kind.value}"
        )
    continuations = [
        dst
        for dst, kind in graph.successors(node.node_id)
        if kind is EdgeKind.CONTINUATION
    ]
    if len(continuations) > 1:
        raise StructureError(
            f"fork {node.node_id} has {len(continuations)} continuations"
        )


def _check_join(graph: GrainGraph, node: GGNode) -> None:
    incoming = graph.predecessors(node.node_id)
    if not incoming:
        raise StructureError(f"join {node.node_id} has no incoming edges")
    has_grain_input = any(
        graph.nodes[src].kind
        in (NodeKind.FRAGMENT, NodeKind.BOOKKEEPING, NodeKind.CHUNK)
        for src, _ in incoming
    )
    if not has_grain_input:
        raise StructureError(
            f"join {node.node_id}: at least one fragment/chain must connect"
        )


def _check_bookkeeping(graph: GrainGraph, node: GGNode) -> None:
    for dst, kind in graph.successors(node.node_id):
        succ = graph.nodes[dst]
        if succ.kind not in (NodeKind.CHUNK, NodeKind.JOIN):
            raise StructureError(
                f"book-keeping {node.node_id} continues to {succ.kind.value}; "
                "must be a chunk (iterations remain) or a join (done)"
            )


def _check_chunk(graph: GrainGraph, node: GGNode) -> None:
    succs = graph.successors(node.node_id)
    if len(succs) != 1:
        raise StructureError(
            f"chunk {node.node_id} has {len(succs)} successors (wants 1)"
        )
    succ = graph.nodes[succs[0][0]]
    if succ.kind is not NodeKind.BOOKKEEPING:
        raise StructureError(
            f"chunk {node.node_id} must continue to a book-keeping node, "
            f"found {succ.kind.value}"
        )


def _check_edge(graph: GrainGraph, edge) -> None:
    src, dst = graph.nodes[edge.src], graph.nodes[edge.dst]
    if edge.kind is EdgeKind.CREATION:
        if src.kind is not NodeKind.FORK:
            raise StructureError(f"creation edge from {src.kind.value}")
        ok = dst.kind is NodeKind.FRAGMENT or (
            src.team_fork and dst.kind in (NodeKind.BOOKKEEPING, NodeKind.JOIN)
        )
        if not ok:
            raise StructureError(f"creation edge into {dst.kind.value}")
    elif edge.kind is EdgeKind.JOIN:
        if src.kind is not NodeKind.FRAGMENT or dst.kind is not NodeKind.JOIN:
            raise StructureError(
                f"join edge {src.kind.value} -> {dst.kind.value}"
            )
    elif edge.kind is EdgeKind.CONTINUATION:
        # Same-context rule: matching task ids for task-context edges;
        # loop-internal edges share the loop id.  Sanctioned seams:
        # fragment -> team fork and loop join -> fragment (the loop is
        # embedded in the enclosing implicit task's context).
        if src.tid is not None and dst.tid is not None and src.tid != dst.tid:
            raise StructureError(
                f"continuation edge crosses task contexts "
                f"{src.tid} -> {dst.tid}"
            )
        if (
            src.loop_id is not None
            and dst.loop_id is not None
            and src.loop_id != dst.loop_id
        ):
            raise StructureError(
                f"continuation edge crosses loop contexts "
                f"{src.loop_id} -> {dst.loop_id}"
            )


def _check_grains(graph: GrainGraph) -> None:
    node_grain_ids = {
        node.grain_id for node in graph.grain_nodes() if node.grain_id
    }
    missing = node_grain_ids - set(graph.grains)
    if missing:
        raise StructureError(f"grain nodes without grain records: {missing}")
    for gid, grain in graph.grains.items():
        intervals = sorted(grain.intervals)
        for (s1, e1, _), (s2, _, _) in zip(intervals, intervals[1:]):
            if s2 < e1:
                raise StructureError(
                    f"grain {gid} has overlapping execution intervals"
                )
        for s, e, _ in intervals:
            if e < s:
                raise StructureError(f"grain {gid} has negative-length span")
