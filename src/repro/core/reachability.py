"""Logical happens-before reachability on the grain graph.

The grain graph's edges are exactly the *logical* series-parallel
structure of the program — creation (fork -> child), continuation
(program order within a context), and join (child -> sync point).  No
edge encodes the accidental schedule, so DAG reachability between two
nodes is the happens-before relation: ``u`` happens before ``v`` iff a
path ``u -> v`` exists.  Two grain nodes with neither path are logically
parallel and may execute in either order (or simultaneously) on a
different schedule — the relation TASKPROF-style race detection needs.

:class:`Reachability` restricts the computation to a set of *source*
nodes of interest: one bit per source, propagated over the topological
order, so the cost is O((V + E) * S / 64) instead of quadratic — race
detection only ever asks about the handful of footprint-carrying nodes.

:func:`logically_ordered` layers the one necessary policy decision on
top: chunks of the same parallel for-loop are *never* ordered, because
their per-thread book-keeping chains encode the accidental
chunk-to-thread assignment of one schedule, not program logic.  Both the
dynamic happens-before race pass (``lint/races.py``) and the static
all-schedule certifier (``staticc``) share this single implementation.
"""

from __future__ import annotations

from typing import Iterable

from .nodes import GGNode, GrainGraph


class Reachability:
    """Answers ``reaches(u, v)`` for ``u`` in ``sources``.

    ``reaches(u, v)`` is True iff there is a directed path from ``u`` to
    ``v`` (including ``u == v``).  Nodes outside ``sources`` may appear
    as ``v`` but not as ``u``.
    """

    def __init__(self, graph: GrainGraph, sources: Iterable[int]) -> None:
        self._bit: dict[int, int] = {}
        for position, nid in enumerate(sorted(set(sources))):
            if nid not in graph.nodes:
                raise KeyError(f"source node {nid} not in graph")
            self._bit[nid] = 1 << position
        # mask[v] = OR of bits of all sources with a path to v.
        self._mask: dict[int, int] = {}
        for nid in graph.topological_order():
            mask = self._bit.get(nid, 0)
            for pred, _ in graph.predecessors(nid):
                mask |= self._mask[pred]
            self._mask[nid] = mask

    def reaches(self, src: int, dst: int) -> bool:
        try:
            bit = self._bit[src]
        except KeyError:
            raise KeyError(f"{src} was not declared as a source") from None
        return bool(self._mask[dst] & bit)

    def ordered(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are ordered by happens-before either
        way (both must be sources)."""
        return self.reaches(a, b) or self.reaches(b, a)


def logically_ordered(reach: Reachability, a: GGNode, b: GGNode) -> bool:
    """Happens-before either way?  Same-loop chunks are never ordered:
    their graph chains encode the accidental schedule, not the logic."""
    if (
        a.loop_id is not None
        and a.loop_id == b.loop_id
        and a.grain_id != b.grain_id
    ):
        return False
    return reach.ordered(a.node_id, b.node_id)
