"""Comparing grain graphs by schedule-independent identity.

"Unique identification of grains is necessary for comparing graphs"
(Sec. 3.1) — this module is that comparison: join two runs' grain tables
(different thread counts, flavors, or program versions) and report
matched grains with their execution-time ratios, plus grains that exist
only on one side (e.g. tasks a cutoff fix no longer creates, Fig. 7's
"not all grains are created in the optimized program").

Work deviation (:mod:`repro.metrics.work_deviation`) is the 1-core
special case of this join.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from .nodes import GrainGraph


@dataclass
class GrainDelta:
    gid: str
    definition: str
    exec_a: int
    exec_b: int

    @property
    def ratio(self) -> float:
        """Execution time in B per cycle in A (1.0 = unchanged)."""
        if self.exec_a == 0:
            return float("inf") if self.exec_b else 1.0
        return self.exec_b / self.exec_a


@dataclass
class GraphComparison:
    matched: dict[str, GrainDelta] = field(default_factory=dict)
    only_in_a: set[str] = field(default_factory=set)
    only_in_b: set[str] = field(default_factory=set)

    @property
    def match_fraction(self) -> float:
        total = len(self.matched) + len(self.only_in_a) + len(self.only_in_b)
        return len(self.matched) / total if total else 1.0

    def median_ratio(self) -> float:
        ratios = [
            d.ratio for d in self.matched.values()
            if d.exec_a > 0 and d.exec_b > 0
        ]
        return statistics.median(ratios) if ratios else 1.0

    def regressions(self, threshold: float = 1.5) -> list[GrainDelta]:
        """Matched grains whose execution time grew past ``threshold``,
        worst first."""
        out = [
            d for d in self.matched.values()
            if d.exec_a > 0 and d.ratio > threshold
        ]
        return sorted(out, key=lambda d: -d.ratio)

    def improvements(self, threshold: float = 1.5) -> list[GrainDelta]:
        """Matched grains that got faster by ``threshold`` or more."""
        out = [
            d for d in self.matched.values()
            if d.exec_b > 0 and d.exec_a / max(1, d.exec_b) > threshold
        ]
        return sorted(out, key=lambda d: d.ratio)

    def summary(self) -> str:
        lines = [
            f"matched {len(self.matched)} grains "
            f"({100 * self.match_fraction:.1f}%), "
            f"only-in-A {len(self.only_in_a)}, "
            f"only-in-B {len(self.only_in_b)}",
            f"median exec ratio (B/A): {self.median_ratio():.3f}",
        ]
        regressions = self.regressions()
        if regressions:
            lines.append("largest regressions:")
            for delta in regressions[:5]:
                lines.append(
                    f"  {delta.gid} [{delta.definition}] "
                    f"{delta.exec_a} -> {delta.exec_b} ({delta.ratio:.2f}x)"
                )
        return "\n".join(lines)


def compare_graphs(a: GrainGraph, b: GrainGraph) -> GraphComparison:
    """Join two graphs' grain tables by grain id."""
    comparison = GraphComparison()
    for gid, grain_a in a.grains.items():
        grain_b = b.grains.get(gid)
        if grain_b is None:
            comparison.only_in_a.add(gid)
            continue
        comparison.matched[gid] = GrainDelta(
            gid=gid,
            definition=grain_a.definition,
            exec_a=grain_a.exec_time,
            exec_b=grain_b.exec_time,
        )
    comparison.only_in_b = set(b.grains) - set(a.grains)
    return comparison
