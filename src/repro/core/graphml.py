"""GraphML export, yEd-flavoured.

"The grain graph is stored as a GRAPHML file that is viewable on
off-the-shelf, large-scale graph viewers such as yEd and Cytoscape"
(Sec. 4.2).  We write plain GraphML ``<data>`` attributes (Cytoscape and
networkx read those) plus the yWorks ``<y:ShapeNode>`` extension carrying
geometry and fill colors so yEd renders the paper's visual encoding:
rectangles for grains with length scaled to execution time, small circles
for forks/joins, diamonds for book-keeping nodes, fill colors from the
active view, and red borders on the critical path.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from .layout import Layout, layered_layout
from .nodes import EdgeKind, GrainGraph, NodeKind

_NODE_SHAPES = {
    NodeKind.FRAGMENT: "rectangle",
    NodeKind.CHUNK: "rectangle",
    NodeKind.FORK: "ellipse",
    NodeKind.JOIN: "ellipse",
    NodeKind.BOOKKEEPING: "diamond",
}

_DEFAULT_FILL = {
    NodeKind.FRAGMENT: "#9ecae1",
    NodeKind.CHUNK: "#74c476",
    NodeKind.FORK: "#2ca02c",
    NodeKind.JOIN: "#ff7f0e",
    NodeKind.BOOKKEEPING: "#17becf",
}

_EDGE_COLORS = {
    EdgeKind.CREATION: "#2ca02c",
    EdgeKind.JOIN: "#ff7f0e",
    EdgeKind.CONTINUATION: "#000000",
}

_KEYS = (
    ("d_kind", "node", "kind", "string"),
    ("d_start", "node", "start", "long"),
    ("d_end", "node", "end", "long"),
    ("d_duration", "node", "duration", "long"),
    ("d_core", "node", "core", "int"),
    ("d_grain", "node", "grain_id", "string"),
    ("d_definition", "node", "definition", "string"),
    ("d_loc", "node", "loc", "string"),
    ("d_members", "node", "members", "int"),
    ("d_ekind", "edge", "kind", "string"),
    ("d_critical", "edge", "critical", "boolean"),
)


def _node_size(duration: int, scale: float) -> float:
    """Rectangle length linearly scaled to execution time, clamped so huge
    graphs stay viewable (min 12, max 360 pixels)."""
    return max(12.0, min(360.0, duration * scale))


def write_graphml(
    graph: GrainGraph,
    path: str | Path,
    view=None,
    critical_nodes: set[int] | None = None,
    layout: Layout | None = None,
) -> Path:
    """Write the graph; returns the path.

    ``view`` is an optional :class:`repro.analysis.views.View` providing
    grain fill colors; ``critical_nodes`` get red borders.
    """
    path = Path(path)
    layout = layout or layered_layout(graph)
    critical_nodes = critical_nodes or set()

    durations = [n.duration for n in graph.grain_nodes()]
    max_duration = max(durations, default=1) or 1
    scale = 360.0 / max_duration

    parts: list[str] = []
    parts.append('<?xml version="1.0" encoding="UTF-8"?>')
    parts.append(
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns" '
        'xmlns:y="http://www.yworks.com/xml/graphml" '
        'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" '
        'xsi:schemaLocation="http://graphml.graphdrawing.org/xmlns '
        'http://www.yworks.com/xml/schema/graphml/1.1/ygraphml.xsd">'
    )
    for key_id, domain, name, type_ in _KEYS:
        parts.append(
            f'<key id="{key_id}" for="{domain}" attr.name="{name}" '
            f'attr.type="{type_}"/>'
        )
    parts.append('<key id="d_ygeom" for="node" yfiles.type="nodegraphics"/>')
    parts.append('<graph id="grain-graph" edgedefault="directed">')

    for nid in sorted(graph.nodes):
        node = graph.nodes[nid]
        fill = _DEFAULT_FILL[node.kind]
        if view is not None and node.grain_id:
            fill = view.color_of(node.grain_id)
        border = "#d62728" if nid in critical_nodes else "#333333"
        border_width = 3.0 if nid in critical_nodes else 1.0
        x, y = layout.positions[nid]
        height = _node_size(node.duration, scale)
        width = 30.0 if node.kind in (NodeKind.FRAGMENT, NodeKind.CHUNK) else 16.0
        if node.kind not in (NodeKind.FRAGMENT, NodeKind.CHUNK):
            height = 16.0
        label = node.grain_id or node.kind.value
        parts.append(f'<node id="n{nid}">')
        parts.append(f'<data key="d_kind">{node.kind.value}</data>')
        if node.start is not None:
            parts.append(f'<data key="d_start">{node.start}</data>')
        if node.end is not None:
            parts.append(f'<data key="d_end">{node.end}</data>')
        parts.append(f'<data key="d_duration">{node.duration}</data>')
        if node.core is not None:
            parts.append(f'<data key="d_core">{node.core}</data>')
        if node.grain_id:
            parts.append(
                f'<data key="d_grain">{escape(node.grain_id)}</data>'
            )
        if node.definition:
            parts.append(
                f'<data key="d_definition">{escape(node.definition)}</data>'
            )
        if node.loc:
            parts.append(f'<data key="d_loc">{escape(node.loc)}</data>')
        if node.members:
            parts.append(f'<data key="d_members">{len(node.members)}</data>')
        parts.append('<data key="d_ygeom"><y:ShapeNode>')
        parts.append(
            f'<y:Geometry x="{60.0 * x:.1f}" y="{90.0 * y:.1f}" '
            f'width="{width:.1f}" height="{height:.1f}"/>'
        )
        parts.append(f'<y:Fill color="{fill}" transparent="false"/>')
        parts.append(
            f'<y:BorderStyle color="{border}" type="line" '
            f'width="{border_width:.1f}"/>'
        )
        parts.append(
            f'<y:NodeLabel visible="false">{escape(label)}</y:NodeLabel>'
        )
        parts.append(
            f'<y:Shape type="{_NODE_SHAPES[node.kind]}"/>'
        )
        parts.append("</y:ShapeNode></data>")
        parts.append("</node>")

    critical_edges = set()
    for index, edge in enumerate(graph.edges):
        is_critical = edge.src in critical_nodes and edge.dst in critical_nodes
        parts.append(
            f'<edge id="e{index}" source="n{edge.src}" target="n{edge.dst}">'
        )
        parts.append(f'<data key="d_ekind">{edge.kind.value}</data>')
        parts.append(
            f'<data key="d_critical">{"true" if is_critical else "false"}</data>'
        )
        parts.append("</edge>")
        if is_critical:
            critical_edges.add(index)

    parts.append("</graph></graphml>")
    path.write_text("\n".join(parts))
    return path
