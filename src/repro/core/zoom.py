"""Zoombox and summary-node collapsing.

Two navigation tools the paper describes:

- the **zoombox** (Fig. 2's inset): extract the subgraph for a region of
  interest — a time window, a task subtree, or a set of grains — as a
  standalone :class:`GrainGraph` that the exporters render directly;
- **summary nodes** (the conclusion's scalability experiment: "collapsing
  collections of nodes and replacing them with a single summary node"):
  collapse an entire task subtree into one node that retains the
  aggregate weight and member count.
"""

from __future__ import annotations


from ..machine.counters import CounterSet
from .grains import GrainKind
from .ids import parse_task_gid
from .nodes import EdgeKind, GrainGraph, NodeKind


def _subgraph(graph: GrainGraph, keep: set[int]) -> GrainGraph:
    """Copy the induced subgraph on ``keep`` (grain table filtered)."""
    out = GrainGraph(meta=graph.meta)
    mapping: dict[int, int] = {}
    for nid in sorted(keep):
        node = graph.nodes[nid]
        clone = out.new_node(
            node.kind,
            start=node.start, end=node.end, core=node.core,
            counters=node.counters, grain_id=node.grain_id, tid=node.tid,
            frag_seq=node.frag_seq, loop_id=node.loop_id, thread=node.thread,
            iter_range=node.iter_range, definition=node.definition,
            loc=node.loc, label=node.label, team_fork=node.team_fork,
            implicit=node.implicit, members=node.members,
            duration_override=node.duration_override,
        )
        mapping[nid] = clone.node_id
    for edge in graph.edges:
        if edge.src in keep and edge.dst in keep:
            out.add_edge(mapping[edge.src], mapping[edge.dst], edge.kind)
    kept_gids = {
        node.grain_id for node in out.nodes.values() if node.grain_id
    }
    out.grains = {gid: graph.grains[gid] for gid in kept_gids}
    return out


def zoom_time_window(graph: GrainGraph, start: int, end: int) -> GrainGraph:
    """The subgraph of nodes whose span intersects [start, end)."""
    if end <= start:
        raise ValueError("empty time window")
    keep = {
        nid
        for nid, node in graph.nodes.items()
        if node.start is not None
        and node.end is not None
        and node.start < end
        and node.end > start
    }
    return _subgraph(graph, keep)


def zoom_subtree(graph: GrainGraph, root_gid: str) -> GrainGraph:
    """The subgraph of a task grain and all its descendants (plus their
    forks and joins) — Fig. 2's region-of-interest inset."""
    prefix = parse_task_gid(root_gid)
    member_gids = {
        gid
        for gid in graph.grains
        if gid.startswith("t:") and parse_task_gid(gid)[: len(prefix)] == prefix
    }
    if not member_gids:
        raise ValueError(f"no grains under {root_gid!r}")
    member_tids = {
        graph.grains[gid].tid for gid in member_gids
    }
    keep = {
        nid
        for nid, node in graph.nodes.items()
        if (node.grain_id in member_gids)
        or (node.tid in member_tids and node.kind in (NodeKind.FORK, NodeKind.JOIN))
    }
    return _subgraph(graph, keep)


def collapse_subtree(graph: GrainGraph, root_gid: str) -> GrainGraph:
    """Replace a task subtree with one summary node.

    The summary node is a grouped fragment carrying the subtree's total
    execution time, aggregated counters, and the member node ids; edges
    from outside the subtree re-attach to it.  This is the conclusion's
    rendering-scalability device.
    """
    prefix = parse_task_gid(root_gid)
    member_gids = {
        gid
        for gid in graph.grains
        if gid.startswith("t:") and parse_task_gid(gid)[: len(prefix)] == prefix
    }
    if not member_gids:
        raise ValueError(f"no grains under {root_gid!r}")
    member_tids = {graph.grains[gid].tid for gid in member_gids}
    collapsed = {
        nid
        for nid, node in graph.nodes.items()
        if node.grain_id in member_gids or node.tid in member_tids
    }

    out = GrainGraph(meta=graph.meta)
    mapping: dict[int, int] = {}
    total = 0
    counters = CounterSet()
    spans = []
    for nid in sorted(graph.nodes):
        node = graph.nodes[nid]
        if nid in collapsed:
            if node.is_grain_node:
                total += node.duration
                if node.counters is not None:
                    counters += node.counters
            if node.start is not None and node.end is not None:
                spans.append((node.start, node.end))
            continue
        clone = out.new_node(
            node.kind,
            start=node.start, end=node.end, core=node.core,
            counters=node.counters, grain_id=node.grain_id, tid=node.tid,
            frag_seq=node.frag_seq, loop_id=node.loop_id, thread=node.thread,
            iter_range=node.iter_range, definition=node.definition,
            loc=node.loc, label=node.label, team_fork=node.team_fork,
            implicit=node.implicit, members=node.members,
            duration_override=node.duration_override,
        )
        mapping[nid] = clone.node_id
    summary = out.new_node(
        NodeKind.FRAGMENT,
        start=min(s for s, _ in spans) if spans else None,
        end=max(e for _, e in spans) if spans else None,
        counters=counters,
        grain_id=root_gid,
        definition=f"<summary of {len(member_gids)} grains>",
        members=tuple(sorted(collapsed)),
        duration_override=total,
    )

    seen: set[tuple[int, int, EdgeKind]] = set()
    for edge in graph.edges:
        src_in, dst_in = edge.src in collapsed, edge.dst in collapsed
        if src_in and dst_in:
            continue
        src = summary.node_id if src_in else mapping[edge.src]
        dst = summary.node_id if dst_in else mapping[edge.dst]
        key = (src, dst, edge.kind)
        if key in seen or src == dst:
            continue
        seen.add(key)
        out.add_edge(src, dst, edge.kind)

    out.grains = {
        gid: grain for gid, grain in graph.grains.items()
        if gid not in member_gids
    }
    # A synthetic grain record for the summary, so metrics and views can
    # still address it.
    from .grains import Grain

    record = Grain(gid=root_gid, kind=GrainKind.TASK,
                   definition=summary.definition)
    record.intervals = [(summary.start or 0, (summary.start or 0) + total, 0)]
    record.node_ids = [summary.node_id]
    record.counters = counters
    out.grains[root_gid] = record
    return out
