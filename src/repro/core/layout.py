"""Hierarchical layout for grain graphs.

Reproduces the drawing conventions of Sec. 3.1: "Edges never cross to
ensure child fragments appear local to the parent and fragments of a task
are aligned in sequence — essential features to convey recursive task
creation", and "After reductions, nodes are laid out symmetrically for
space-efficiency."

The layout builds a spanning tree over each node's *primary* incoming
edge (continuation preferred over creation, creation over join), places
leaves on consecutive x slots in DFS order — children are visited from
their creating fork, which keeps them local to the parent — and centers
every interior node over its children.  Vertical position is the node's
longest-path depth, so fragments of a task stack in sequence.  The result
is planar for pure fork/join structures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import EdgeKind, GrainGraph

_EDGE_PREFERENCE = {
    EdgeKind.CONTINUATION: 0,
    EdgeKind.CREATION: 1,
    EdgeKind.JOIN: 2,
}


@dataclass(frozen=True)
class Layout:
    positions: dict[int, tuple[float, float]]
    width: float
    height: float

    def position(self, node_id: int) -> tuple[float, float]:
        return self.positions[node_id]


def layered_layout(graph: GrainGraph) -> Layout:
    """Compute unit-grid positions for every node."""
    if not graph.nodes:
        return Layout(positions={}, width=0.0, height=0.0)
    order = graph.topological_order()

    # Depth: longest path from any source (keeps sequences stacked).
    depth: dict[int, int] = {}
    for nid in order:
        preds = graph.predecessors(nid)
        depth[nid] = (
            max(depth[src] for src, _ in preds) + 1 if preds else 0
        )

    # Spanning tree: each node hangs off its most-preferred predecessor.
    tree_children: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    roots: list[int] = []
    for nid in order:
        preds = graph.predecessors(nid)
        if not preds:
            roots.append(nid)
            continue
        parent = min(
            preds, key=lambda edge: (_EDGE_PREFERENCE[edge[1]], edge[0])
        )[0]
        tree_children[parent].append(nid)

    # DFS leaf slotting; interior nodes centered over children.
    x: dict[int, float] = {}
    next_slot = 0.0

    def place(nid: int) -> float:
        nonlocal next_slot
        children = tree_children[nid]
        if not children:
            x[nid] = next_slot
            next_slot += 1.0
            return x[nid]
        child_positions = [place(child) for child in children]
        x[nid] = sum(child_positions) / len(child_positions)
        return x[nid]

    for root in roots:
        place(root)
        next_slot += 0.5  # gap between disjoint components

    positions = {nid: (x[nid], float(depth[nid])) for nid in graph.nodes}
    width = max(px for px, _ in positions.values()) + 1.0
    height = max(py for _, py in positions.values()) + 1.0
    return Layout(positions=positions, width=width, height=height)


def crossing_count(graph: GrainGraph, layout: Layout) -> int:
    """Count pairwise edge crossings between adjacent layers (a quality
    measure used by the layout tests; fork/join trees should be planar)."""
    by_layer: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for edge in graph.edges:
        x1, y1 = layout.positions[edge.src]
        x2, y2 = layout.positions[edge.dst]
        if y2 - y1 == 1:
            by_layer.setdefault((int(y1), int(y2)), []).append((x1, x2))
    crossings = 0
    for segments in by_layer.values():
        for i in range(len(segments)):
            for j in range(i + 1, len(segments)):
                (a1, a2), (b1, b2) = segments[i], segments[j]
                if (a1 - b1) * (a2 - b2) < 0:
                    crossings += 1
    return crossings
