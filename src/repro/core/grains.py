"""Grain records: the unit all derived metrics work on.

"A grain denotes the computation performed by a task or a parallel
for-loop chunk instance."  A task grain aggregates all its fragments; a
chunk grain is one chunk.  The builder fills one :class:`Grain` per
instance with everything Sec. 3.2's metrics consume:

- execution intervals (for instantaneous parallelism and makespan),
- aggregated counters (for memory-hierarchy utilization and miss ratios),
- parallelization cost components (creation/book-keeping cost plus the
  parent's per-sibling synchronization share, for parallel benefit),
- the executing cores (for scatter) and the sibling group identity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..machine.counters import CounterSet


class GrainKind(enum.Enum):
    TASK = "task"
    CHUNK = "chunk"


@dataclass
class Grain:
    """One grain instance with its measured properties."""

    gid: str
    kind: GrainKind
    definition: str = ""
    loc: str = ""
    label: str = ""
    depth: int = 0
    sibling_group: str = ""  # parent task gid, or loop key for chunks

    created_at: int = 0
    creation_cycles: int = 0  # task creation / chunk book-keeping cost
    sync_share_cycles: float = 0.0  # parent sync time / siblings synced
    inlined: bool = False

    intervals: list[tuple[int, int, int]] = field(default_factory=list)
    counters: CounterSet = field(default_factory=CounterSet)
    node_ids: list[int] = field(default_factory=list)

    # Filled for task grains.
    tid: Optional[int] = None
    parent_gid: Optional[str] = None
    # Filled for chunk grains.
    loop_id: Optional[int] = None
    chunk_seq: Optional[int] = None
    iter_range: Optional[tuple[int, int]] = None
    thread: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def exec_time(self) -> int:
        """Total execution cycles of the grain (all fragment spans)."""
        return sum(end - start for start, end, _ in self.intervals)

    @property
    def first_start(self) -> int:
        return min(start for start, _, _ in self.intervals) if self.intervals else 0

    @property
    def last_end(self) -> int:
        return max(end for _, end, _ in self.intervals) if self.intervals else 0

    @property
    def cores(self) -> tuple[int, ...]:
        """Distinct cores that executed this grain, in first-use order."""
        seen: list[int] = []
        for _, _, core in sorted(self.intervals):
            if core not in seen:
                seen.append(core)
        return tuple(seen)

    @property
    def primary_core(self) -> int:
        """Core that executed the most cycles of this grain."""
        if not self.intervals:
            return 0
        per_core: dict[int, int] = {}
        for start, end, core in self.intervals:
            per_core[core] = per_core.get(core, 0) + (end - start)
        return max(sorted(per_core), key=lambda c: per_core[c])

    @property
    def parallelization_cost(self) -> float:
        """Creation (or book-keeping) cost plus the parent's average
        per-sibling synchronization time — the denominator of parallel
        benefit (Sec. 3.2)."""
        return self.creation_cycles + self.sync_share_cycles

    @property
    def memory_hierarchy_utilization(self) -> float:
        return self.counters.memory_hierarchy_utilization

    @property
    def n_fragments(self) -> int:
        return len(self.intervals)

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether any execution interval intersects [lo, hi)."""
        return any(start < hi and end > lo for start, end, _ in self.intervals)

    def describe(self) -> str:
        return (
            f"{self.gid} [{self.kind.value}] def={self.definition} "
            f"exec={self.exec_time} frags={self.n_fragments} "
            f"cores={self.cores}"
        )
