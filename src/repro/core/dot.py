"""Graphviz dot export (a second off-the-shelf-viewer format)."""

from __future__ import annotations

from pathlib import Path

from .nodes import EdgeKind, GrainGraph, NodeKind

_SHAPES = {
    NodeKind.FRAGMENT: "box",
    NodeKind.CHUNK: "box",
    NodeKind.FORK: "circle",
    NodeKind.JOIN: "doublecircle",
    NodeKind.BOOKKEEPING: "diamond",
}

_EDGE_COLORS = {
    EdgeKind.CREATION: "forestgreen",
    EdgeKind.JOIN: "darkorange",
    EdgeKind.CONTINUATION: "black",
}


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def write_dot(graph: GrainGraph, path: str | Path, view=None) -> Path:
    """Write a Graphviz representation; returns the path."""
    path = Path(path)
    lines = ["digraph grain_graph {", "  rankdir=TB;", "  node [fontsize=9];"]
    for nid in sorted(graph.nodes):
        node = graph.nodes[nid]
        label = f"{node.grain_id or node.kind.value} {node.duration}cyc"
        attrs = [
            f"shape={_SHAPES[node.kind]}",
            f"label={_quote(label)}",
        ]
        if view is not None and node.grain_id:
            attrs.append(
                f'style=filled, fillcolor={_quote(view.color_of(node.grain_id))}'
            )
        lines.append(f"  n{nid} [{', '.join(attrs)}];")
    for edge in graph.edges:
        lines.append(
            f"  n{edge.src} -> n{edge.dst} "
            f"[color={_EDGE_COLORS[edge.kind]}];"
        )
    lines.append("}")
    path.write_text("\n".join(lines))
    return path
