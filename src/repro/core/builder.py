"""Trace -> grain graph construction (Sec. 3.1).

The builder replays the trace's per-task event subsequences (the profiler
emits each task's fragments and runtime events in execution order) and
materializes:

- one fragment node per :class:`FragmentEvent`, sequentially linked within
  the task context,
- one fork node per task creation, with its single creation edge to the
  child's first fragment and a continuation edge to the parent's next
  fragment,
- one join node per taskwait (and per implicit end-of-region barrier),
  receiving a join edge from the last fragment of every task the sync
  point consumed (``synced_tids``), so fire-and-forget descendants attach
  to the barrier that actually synchronized them,
- per parallel-for instance: a team fork, per-thread chains of
  book-keeping and chunk nodes, and the loop's join (barrier) node.

It simultaneously fills the grain table (:class:`~repro.core.grains.
Grain`) with intervals, counters, creation costs, and the parent's
per-sibling synchronization share used by the parallel-benefit metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profiler.events import (
    BookkeepingEvent,
    ChunkEvent,
    FragmentEvent,
    LoopBeginEvent,
    LoopEndEvent,
    TaskCompleteEvent,
    TaskCreateEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
)
from ..profiler.trace import Trace
from .grains import Grain, GrainKind
from .ids import chunk_gid, loop_key, task_gid
from .nodes import EdgeKind, GrainGraph, NodeKind


@dataclass
class _LoopData:
    begin: LoopBeginEvent
    end: LoopEndEvent | None = None
    # Per team-relative thread, the bookkeeping/chunk events in order.
    per_thread: dict[int, list] = field(default_factory=dict)
    chunks: list[ChunkEvent] = field(default_factory=list)


def build_grain_graph(trace: Trace) -> GrainGraph:
    """Construct the grain graph (with grain table) from a trace."""
    graph = GrainGraph(meta=trace.meta)

    # ------------------------------------------------------------------
    # Pass 1: bucket events.
    # ------------------------------------------------------------------
    streams: dict[int, list] = {}  # per-task ordered runtime events
    creates: dict[int, TaskCreateEvent] = {}
    loops: dict[int, _LoopData] = {}
    for event in trace.events:
        if isinstance(event, FragmentEvent):
            streams.setdefault(event.tid, []).append(event)
        elif isinstance(event, TaskCreateEvent):
            creates[event.tid] = event
            if event.parent_tid is not None:
                streams.setdefault(event.parent_tid, []).append(event)
        elif isinstance(event, (TaskwaitBeginEvent, TaskwaitEndEvent)):
            streams.setdefault(event.tid, []).append(event)
        elif isinstance(event, TaskCompleteEvent):
            pass  # completion time == last fragment end
        elif isinstance(event, LoopBeginEvent):
            loops[event.loop_id] = _LoopData(begin=event)
            # Loops execute in root context; attach to the root stream.
            streams.setdefault(0, []).append(event)
        elif isinstance(event, BookkeepingEvent):
            loops[event.loop_id].per_thread.setdefault(event.thread, []).append(event)
        elif isinstance(event, ChunkEvent):
            loops[event.loop_id].per_thread.setdefault(event.thread, []).append(event)
            loops[event.loop_id].chunks.append(event)
        elif isinstance(event, LoopEndEvent):
            loops[event.loop_id].end = event

    # ------------------------------------------------------------------
    # Pass 2: pre-create all task grains (a parent's taskwait assigns sync
    # shares to child grains, and children have larger tids).
    # ------------------------------------------------------------------
    grains = graph.grains
    gid_of_tid: dict[int, str] = {}
    for tid in sorted(creates):
        create = creates[tid]
        gid = task_gid(create.path)
        gid_of_tid[tid] = gid
        parent_gid = (
            gid_of_tid[create.parent_tid]
            if create.parent_tid is not None
            else None
        )
        grains[gid] = Grain(
            gid=gid,
            kind=GrainKind.TASK,
            definition=create.definition,
            loc=create.loc,
            label=create.label,
            depth=create.depth,
            sibling_group=parent_gid or "",
            created_at=create.time,
            creation_cycles=create.creation_cycles,
            inlined=create.inlined,
            tid=tid,
            parent_gid=parent_gid,
        )

    # ------------------------------------------------------------------
    # Pass 3: per-task structure.
    # ------------------------------------------------------------------
    first_frag: dict[int, int] = {}  # tid -> first fragment node id
    last_frag: dict[int, int] = {}  # tid -> last fragment node id
    pending_creation: list[tuple[int, int]] = []  # (fork node, child tid)
    pending_join: list[tuple[int, int]] = []  # (child tid, join node)
    sync_points: list[tuple[int, int, tuple[int, ...]]] = []  # begin, end, tids

    for tid in sorted(streams):
        create = creates[tid]
        gid = gid_of_tid[tid]
        grain = grains[gid]
        prev: int | None = None  # previous structural node in this context
        open_wait: TaskwaitBeginEvent | None = None
        for event in streams[tid]:
            if isinstance(event, FragmentEvent):
                node = graph.new_node(
                    NodeKind.FRAGMENT,
                    start=event.start,
                    end=event.end,
                    core=event.core,
                    counters=event.counters,
                    grain_id=gid,
                    tid=tid,
                    frag_seq=event.seq,
                    definition=create.definition,
                    loc=create.loc,
                    reads=event.reads,
                    writes=event.writes,
                )
                grain.intervals.append((event.start, event.end, event.core))
                grain.counters += event.counters
                grain.node_ids.append(node.node_id)
                if tid not in first_frag:
                    first_frag[tid] = node.node_id
                last_frag[tid] = node.node_id
                if prev is not None:
                    graph.add_edge(prev, node.node_id, EdgeKind.CONTINUATION)
                prev = node.node_id
            elif isinstance(event, TaskCreateEvent):
                fork = graph.new_node(
                    NodeKind.FORK,
                    start=event.time,
                    end=event.time + event.creation_cycles,
                    core=event.core,
                    tid=tid,
                    definition=event.definition,
                    loc=event.loc,
                )
                if prev is not None:
                    graph.add_edge(prev, fork.node_id, EdgeKind.CONTINUATION)
                pending_creation.append((fork.node_id, event.tid))
                prev = fork.node_id
            elif isinstance(event, TaskwaitBeginEvent):
                open_wait = event
            elif isinstance(event, TaskwaitEndEvent):
                begin_time = open_wait.time if open_wait else event.time
                implicit = open_wait.implicit if open_wait else False
                join = graph.new_node(
                    NodeKind.JOIN,
                    start=begin_time,
                    end=event.time,
                    core=event.core,
                    tid=tid,
                    implicit=implicit,
                )
                if prev is not None:
                    graph.add_edge(prev, join.node_id, EdgeKind.CONTINUATION)
                sync_points.append((begin_time, event.time, event.synced_tids))
                for child_tid in event.synced_tids:
                    pending_join.append((child_tid, join.node_id))
                open_wait = None
                prev = join.node_id
            elif isinstance(event, LoopBeginEvent):
                prev = _build_loop(
                    graph, loops[event.loop_id], prev, grains
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected event in task stream: {event!r}")

    # Children are created strictly after their parent's first fragment and
    # complete before their sync point, so tid order guarantees both maps
    # are complete here.  A task with zero fragments cannot exist (every
    # task records at least one, possibly zero-length, fragment).
    for fork_node, child_tid in pending_creation:
        graph.add_edge(fork_node, first_frag[child_tid], EdgeKind.CREATION)
    for child_tid, join_node in pending_join:
        graph.add_edge(last_frag[child_tid], join_node, EdgeKind.JOIN)

    # Sync shares: the parent's *overhead* at each sync point, i.e. the
    # wait span minus the portion overlapped by still-running children.
    # Productive waiting (children computing) is not parallelization cost
    # — executing the children serially would take that time too; only
    # suspension/re-dispatch latency counts, matching the metric's role
    # of guiding inlining and cutoff decisions (Sec. 3.2).
    for begin, end, synced in sync_points:
        if not synced:
            continue
        last_child_end = max(
            grains[gid_of_tid[tid]].last_end for tid in synced
        )
        overlap = max(0, min(last_child_end, end) - begin)
        overhead = max(0, (end - begin) - overlap)
        share = overhead / len(synced)
        for tid in synced:
            grains[gid_of_tid[tid]].sync_share_cycles = share

    graph.root_node_id = first_frag.get(0)
    return graph


def _build_loop(
    graph: GrainGraph,
    data: _LoopData,
    prev: int | None,
    grains: dict[str, Grain],
) -> int:
    """Materialize one loop instance; returns the loop's join node id."""
    begin = data.begin
    if data.end is None:
        raise ValueError(f"loop {begin.loop_id} has no end event")
    lkey = loop_key(begin.starting_thread, begin.loop_seq)
    fork = graph.new_node(
        NodeKind.FORK,
        start=begin.time,
        end=begin.time,
        core=begin.starting_thread,
        loop_id=begin.loop_id,
        definition=begin.definition,
        loc=begin.loc,
        team_fork=True,
    )
    if prev is not None:
        graph.add_edge(prev, fork.node_id, EdgeKind.CONTINUATION)
    join = graph.new_node(
        NodeKind.JOIN,
        start=data.end.time,
        end=data.end.time,
        core=begin.starting_thread,
        loop_id=begin.loop_id,
    )

    n_chunks = len(data.chunks)
    max_chunk_end = max((c.end for c in data.chunks), default=begin.time)
    barrier_span = data.end.time - max_chunk_end
    sync_share = barrier_span / n_chunks if n_chunks else 0.0

    for thread in sorted(data.per_thread):
        events = data.per_thread[thread]
        chain_prev: int | None = None
        last_bk: BookkeepingEvent | None = None
        for event in events:
            if isinstance(event, BookkeepingEvent):
                node = graph.new_node(
                    NodeKind.BOOKKEEPING,
                    start=event.start,
                    end=event.end,
                    core=event.core,
                    loop_id=event.loop_id,
                    thread=thread,
                    definition=begin.definition,
                    loc=begin.loc,
                )
                if chain_prev is None:
                    graph.add_edge(fork.node_id, node.node_id, EdgeKind.CREATION)
                else:
                    graph.add_edge(chain_prev, node.node_id, EdgeKind.CONTINUATION)
                chain_prev = node.node_id
                last_bk = event
            else:  # ChunkEvent
                gid = chunk_gid(
                    begin.starting_thread,
                    begin.loop_seq,
                    event.iter_start,
                    event.iter_end,
                )
                node = graph.new_node(
                    NodeKind.CHUNK,
                    start=event.start,
                    end=event.end,
                    core=event.core,
                    counters=event.counters,
                    grain_id=gid,
                    loop_id=event.loop_id,
                    thread=thread,
                    iter_range=(event.iter_start, event.iter_end),
                    definition=begin.definition,
                    loc=begin.loc,
                    reads=event.reads,
                    writes=event.writes,
                )
                if chain_prev is None:  # pragma: no cover - defensive
                    raise AssertionError("chunk before any bookkeeping node")
                graph.add_edge(chain_prev, node.node_id, EdgeKind.CONTINUATION)
                chain_prev = node.node_id
                bk_cost = (last_bk.end - last_bk.start) if last_bk else 0
                grain = Grain(
                    gid=gid,
                    kind=GrainKind.CHUNK,
                    definition=begin.definition,
                    loc=begin.loc,
                    label=begin.label,
                    depth=1,
                    sibling_group=lkey,
                    created_at=event.start,
                    creation_cycles=bk_cost,
                    sync_share_cycles=sync_share,
                    loop_id=event.loop_id,
                    chunk_seq=event.chunk_seq,
                    iter_range=(event.iter_start, event.iter_end),
                    thread=thread,
                )
                grain.intervals.append((event.start, event.end, event.core))
                grain.counters += event.counters
                grain.node_ids.append(node.node_id)
                grains[gid] = grain
        if chain_prev is not None:
            graph.add_edge(chain_prev, join.node_id, EdgeKind.CONTINUATION)
        else:  # thread never produced a bookkeeping event
            graph.add_edge(fork.node_id, join.node_id, EdgeKind.CREATION)
    return join.node_id
