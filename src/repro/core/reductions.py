"""Graph reductions (Fig. 3d-e, h): grouping nodes to speed up rendering.

"We apply reductions to the graph structure by grouping nodes to speedup
rendering times.  Grouped nodes retain weights of individual member nodes
and also aggregate them.  We group all book-keeping nodes per thread.
Additionally, chunks are depicted as siblings since they are executable in
parallel by definition."

Three reductions, each optional:

- **Fragment reduction** — all fragments of a task instance collapse into
  one grain node whose weight is the grain's execution time (Fig. 3d).
- **Fork reduction** — consecutive fork nodes of the same parent whose
  children synchronize at the same join collapse into one fork (Fig. 3e).
- **Book-keeping grouping** — all book-keeping nodes of one loop and team
  thread collapse into one node; the thread's chunks hang off it as
  siblings (Fig. 3h).

Collapsing a task's fragments folds its pre/post-fork execution into one
node, so the fragment<->fork/join back-and-forth edges would form two-node
cycles; following the paper's drawings, the direction pointing *into* the
fork/join is kept and the return edge dropped, which preserves acyclicity.
Grouped nodes list their ``members`` and carry aggregated duration and
counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.counters import CounterSet
from .nodes import EdgeKind, GrainGraph, NodeKind

_KIND_PRIORITY = {EdgeKind.CREATION: 0, EdgeKind.JOIN: 1, EdgeKind.CONTINUATION: 2}


@dataclass(frozen=True)
class ReductionReport:
    nodes_before: int
    nodes_after: int
    edges_before: int
    edges_after: int

    @property
    def node_ratio(self) -> float:
        return self.nodes_after / self.nodes_before if self.nodes_before else 1.0


def reduce_graph(
    graph: GrainGraph,
    fragments: bool = True,
    forks: bool = True,
    bookkeeping: bool = True,
) -> tuple[GrainGraph, ReductionReport]:
    """Return a reduced copy of ``graph`` (grain table shared) plus a
    report of the size change."""
    nodes_before = len(graph.nodes)
    edges_before = len(graph.edges)

    partition: dict[int, tuple] = {}
    for nid, node in graph.nodes.items():
        if fragments and node.kind is NodeKind.FRAGMENT and node.grain_id:
            partition[nid] = ("task", node.grain_id)
        elif bookkeeping and node.kind is NodeKind.BOOKKEEPING:
            partition[nid] = ("bk", node.loop_id, node.thread)
        else:
            partition[nid] = ("solo", nid)
    reduced = _contract(graph, partition)

    if forks:
        fork_partition = _fork_partition(reduced)
        reduced = _contract(reduced, fork_partition)

    report = ReductionReport(
        nodes_before=nodes_before,
        nodes_after=len(reduced.nodes),
        edges_before=edges_before,
        edges_after=len(reduced.edges),
    )
    return reduced, report


def _fork_partition(graph: GrainGraph) -> dict[int, tuple]:
    """Group forks sharing a parent node whose children all sync at the
    same join ("fork reduction combines fork nodes before every join")."""
    partition: dict[int, tuple] = {}
    for nid, node in graph.nodes.items():
        if node.kind is not NodeKind.FORK or node.team_fork:
            partition[nid] = ("solo", nid)
            continue
        parents = sorted(
            src for src, kind in graph.predecessors(nid)
            if kind is EdgeKind.CONTINUATION
        )
        parent = parents[0] if parents else -1
        # The join the fork's child synchronizes at.
        join = -1
        for child, kind in graph.successors(nid):
            if kind is not EdgeKind.CREATION:
                continue
            for dst, dst_kind in graph.successors(child):
                if (
                    dst_kind is EdgeKind.JOIN
                    or graph.nodes[dst].kind is NodeKind.JOIN
                ):
                    join = dst
                    break
        partition[nid] = ("fork", parent, join)
    return partition


def _contract(graph: GrainGraph, partition: dict[int, tuple]) -> GrainGraph:
    """Build the quotient graph over ``partition`` (old id -> group key)."""
    out = GrainGraph(meta=graph.meta)
    out.grains = graph.grains

    # Deterministic group order: by smallest member id.
    members_of: dict[tuple, list[int]] = {}
    for nid in sorted(graph.nodes):
        members_of.setdefault(partition[nid], []).append(nid)
    group_order = sorted(members_of, key=lambda key: members_of[key][0])

    new_id: dict[tuple, int] = {}
    for key in group_order:
        members = members_of[key]
        first = graph.nodes[members[0]]
        if len(members) == 1 and not first.is_group:
            node = out.new_node(
                first.kind,
                start=first.start,
                end=first.end,
                core=first.core,
                counters=first.counters,
                grain_id=first.grain_id,
                tid=first.tid,
                frag_seq=first.frag_seq,
                loop_id=first.loop_id,
                thread=first.thread,
                iter_range=first.iter_range,
                definition=first.definition,
                loc=first.loc,
                label=first.label,
                team_fork=first.team_fork,
                implicit=first.implicit,
            )
        else:
            total = 0
            counters = CounterSet()
            member_ids: list[int] = []
            for mid in members:
                member = graph.nodes[mid]
                total += member.duration
                if member.counters is not None:
                    counters += member.counters
                member_ids.extend(member.members or (mid,))
            node = out.new_node(
                first.kind,
                start=min(
                    m for m in (graph.nodes[i].start for i in members)
                    if m is not None
                ),
                end=max(
                    m for m in (graph.nodes[i].end for i in members)
                    if m is not None
                ),
                core=first.core,
                counters=counters,
                grain_id=(
                    first.grain_id
                    if len({graph.nodes[i].grain_id for i in members}) == 1
                    else None
                ),
                tid=first.tid,
                loop_id=first.loop_id,
                thread=first.thread,
                definition=first.definition,
                loc=first.loc,
                label=first.label,
                team_fork=first.team_fork,
                implicit=first.implicit,
                members=tuple(member_ids),
                duration_override=total,
            )
        new_id[key] = node.node_id

    # Map edges, drop intra-group edges, dedupe, resolve cycles created by
    # the contraction.  Continuation edges are same-context by definition,
    # so a continuation from a fork/join back into a *grouped* fragment is
    # the "return to the parent context" direction — the paper's drawings
    # keep only the into-the-fork/join direction; dropping the return edge
    # preserves acyclicity (this also covers loop-join -> implicit-task).
    best: dict[tuple[int, int], EdgeKind] = {}
    for edge in graph.edges:
        src = new_id[partition[edge.src]]
        dst = new_id[partition[edge.dst]]
        if src == dst:
            continue
        if (
            edge.kind is EdgeKind.CONTINUATION
            and graph.nodes[edge.src].kind in (NodeKind.FORK, NodeKind.JOIN)
            and out.nodes[dst].kind is NodeKind.FRAGMENT
            and out.nodes[dst].is_group
        ):
            continue
        key = (src, dst)
        if key not in best or _KIND_PRIORITY[edge.kind] < _KIND_PRIORITY[best[key]]:
            best[key] = edge.kind
    for (src, dst), kind in sorted(best.items()):
        if (dst, src) in best:
            # Remaining two-node cycles are book-keeping-group <-> chunk
            # pairs: keep the dispatch direction (group -> chunk; chunks
            # hang off the grouped node as siblings, Fig. 3h).
            if src > dst:
                continue
        out.add_edge(src, dst, kind)
    out.root_node_id = (
        new_id[partition[graph.root_node_id]]
        if graph.root_node_id is not None
        else None
    )
    return out
