"""Schedule-independent grain identities (Sec. 3.1).

"Grains corresponding to tasks are identified using path enumeration which
relies on the static nature of the graph for task-based programs. ... We
identify chunks through the thread that started the loop, a sequence
counter, and the iteration range."
"""

from __future__ import annotations


def task_gid(path: tuple[int, ...]) -> str:
    """Grain id of a task instance from its creation path."""
    return "t:" + "/".join(str(i) for i in path)


def parse_task_gid(gid: str) -> tuple[int, ...]:
    if not gid.startswith("t:"):
        raise ValueError(f"not a task grain id: {gid!r}")
    return tuple(int(part) for part in gid[2:].split("/"))


def loop_key(starting_thread: int, loop_seq: int) -> str:
    """Identity of one loop instance: starting thread + per-thread sequence
    counter ("The starting thread is constant in programs without nested
    parallelism")."""
    return f"L:{starting_thread}:{loop_seq}"


def chunk_gid(
    starting_thread: int, loop_seq: int, iter_start: int, iter_end: int
) -> str:
    """Grain id of one chunk instance: loop identity + iteration range."""
    return f"c:{starting_thread}:{loop_seq}:{iter_start}-{iter_end}"


def parse_chunk_gid(gid: str) -> tuple[int, int, int, int]:
    if not gid.startswith("c:"):
        raise ValueError(f"not a chunk grain id: {gid!r}")
    thread, seq, span = gid[2:].split(":")
    lo, hi = span.split("-")
    return int(thread), int(seq), int(lo), int(hi)


def is_task_gid(gid: str) -> bool:
    return gid.startswith("t:")


def is_chunk_gid(gid: str) -> bool:
    return gid.startswith("c:")
