"""Shared value types used across the library."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A source-code location, the anchor for the paper's "precise links
    that connect problem areas to source code".

    Applications in :mod:`repro.apps` carry the pseudo-locations of the
    original C benchmarks (e.g. ``sparselu.c:246(bmod)``) so analyses read
    like the paper's.
    """

    file: str
    line: int
    func: str = ""

    def __str__(self) -> str:
        if self.func:
            return f"{self.file}:{self.line}({self.func})"
        return f"{self.file}:{self.line}"

    @classmethod
    def parse(cls, text: str) -> "SourceLocation":
        """Inverse of ``str()``: ``file.c:123(func)`` or ``file.c:123``."""
        func = ""
        if text.endswith(")") and "(" in text:
            text, _, func = text[:-1].partition("(")
        file, _, line = text.rpartition(":")
        if not file:
            raise ValueError(f"not a source location: {text!r}")
        return cls(file=file, line=int(line), func=func)


UNKNOWN_LOCATION = SourceLocation(file="<unknown>", line=0)
