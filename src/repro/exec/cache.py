"""Content-addressed on-disk cache for simulated-run artifacts.

Layout under the cache root::

    traces/<digest>.jsonl      the profiler trace (source of truth)
    meta/<digest>.json         the full key + engine RunStats sidecar
    reports/<digest>-<p>.pkl   pickled analysis artifacts (graph, report,
                               advice, timeline) for analysis params ``p``

``<digest>`` is a SHA-256 over the canonical JSON of a :class:`RunKey`:
program name + input summary + flavor + thread count + machine
configuration + profiler configuration + the :func:`code_fingerprint` of
``src/repro`` itself.  Two runs with the same digest are byte-identical
(see ``tests/exec/test_golden_determinism.py``), which is what makes
content addressing sound; the fingerprint component means editing the
simulator invalidates everything it previously produced.

Key format: ``runkey/v2``.  The machine and profiler components are
*canonical*: defaults are resolved first (``machine_config=None`` means
the paper testbed, ``profiler=None`` means ``ProfilerConfig()``) and the
resolved dataclass is serialized as sorted-key JSON.  v1 keyed these as
``repr(...)``-or-sentinel, so ``machine_config=None`` and the equivalent
explicit ``MachineConfig.paper_testbed()`` digested differently and the
same simulation was cached (and simulated) twice.  The schema tag inside
the digest bumps every v1 digest, so caches written before the fix
invalidate wholesale — cold-cache slowness once, never a stale hit.

The cache never stores a :class:`~repro.runtime.api.Program` — bodies are
closures.  Callers re-supply the program when reassembling a
:class:`~repro.workflow.Study` from cached parts.

Cache traffic is observable: every counted probe/store mirrors into the
:mod:`repro.obs` counter registry (``cache.trace_hits``, ...) and file
IO is timed under the ``cache.trace_read`` / ``cache.trace_write`` /
``cache.report_read`` / ``cache.report_write`` spans.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Optional

from ..machine.machine import MachineConfig
from ..obs import registry as _obs
from ..profiler.recorder import ProfilerConfig
from ..profiler.trace import Trace
from ..runtime.api import Program
from ..runtime.engine import RunResult, RunStats
from ..runtime.flavors import RuntimeFlavor
from .fingerprint import code_fingerprint

#: Bumped whenever the key composition changes; participates in the
#: digest, so a bump silently invalidates every artifact of older keys.
KEY_SCHEMA = "runkey/v2"


def canonical_machine(machine_config: MachineConfig | None) -> str:
    """The machine component of a key: defaults resolved, then canonical
    JSON — so ``None`` and an explicit paper testbed digest identically."""
    resolved = (
        machine_config if machine_config is not None
        else MachineConfig.paper_testbed()
    )
    return json.dumps(asdict(resolved), sort_keys=True, separators=(",", ":"))


def canonical_profiler(profiler: ProfilerConfig | None) -> str:
    """The profiler component of a key, defaults resolved (``None`` is
    the default :class:`ProfilerConfig`)."""
    resolved = profiler if profiler is not None else ProfilerConfig()
    return json.dumps(asdict(resolved), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunKey:
    """Everything that determines a simulated run's trace, as strings."""

    program: str
    input_summary: str
    flavor: str
    threads: int
    machine: str
    profiler: str
    fingerprint: str

    @classmethod
    def for_run(
        cls,
        program: Program,
        flavor: RuntimeFlavor,
        threads: int,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
        fingerprint: str | None = None,
    ) -> "RunKey":
        return cls(
            program=program.name,
            input_summary=program.input_summary,
            flavor=flavor.name,
            threads=threads,
            machine=canonical_machine(machine_config),
            profiler=canonical_profiler(profiler),
            fingerprint=fingerprint or code_fingerprint(),
        )

    def digest(self) -> str:
        payload: dict[str, Any] = {"schema": KEY_SCHEMA, **asdict(self)}
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


@dataclass
class CacheStats:
    """Hit/miss/store counters, kept per :class:`RunCache` instance."""

    trace_hits: int = 0
    trace_misses: int = 0
    trace_stores: int = 0
    report_hits: int = 0
    report_misses: int = 0
    report_stores: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        return (
            f"traces: {self.trace_hits} hits, {self.trace_misses} misses, "
            f"{self.trace_stores} stores | reports: {self.report_hits} hits, "
            f"{self.report_misses} misses, {self.report_stores} stores"
        )

    def absorb(self, other: "CacheStats | Mapping[str, Any]") -> None:
        """Fold another instance's counts in — how the study runner
        aggregates the per-worker caches of a process pool back into the
        parent's, so ``--jobs N`` reports the same totals as serial.

        Counters this version does not know — a mixed-version pool
        worker, or the serve tier absorbing stats from a newer client —
        fold into ``extra`` instead of raising ``AttributeError``: the
        count is preserved, never dropped or fatal.
        """
        if isinstance(other, CacheStats):
            other = asdict(other)
        known = {f.name for f in fields(self)} - {"extra"}
        for name, value in other.items():
            if name == "extra":
                for key, delta in dict(value).items():
                    self.extra[key] = self.extra.get(key, 0) + delta
            elif name in known:
                setattr(self, name, getattr(self, name) + int(value))
            else:
                self.extra[name] = self.extra.get(name, 0) + int(value)


@dataclass
class CachedRun:
    """A trace plus the engine statistics recorded when it was simulated."""

    trace: Trace
    stats: RunStats


def _atomic_write(path: Path, data: bytes) -> None:
    """Write via a same-directory temp file + rename so that concurrent
    pool workers never expose a half-written artifact."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class RunCache:
    """The on-disk artifact store; safe for concurrent writers."""

    def __init__(
        self, root: str | Path, fingerprint: str | None = None
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()
        for sub in ("traces", "meta", "reports"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(
        self,
        program: Program,
        flavor: RuntimeFlavor,
        threads: int,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
    ) -> RunKey:
        return RunKey.for_run(
            program, flavor, threads,
            machine_config=machine_config, profiler=profiler,
            fingerprint=self.fingerprint,
        )

    def _trace_path(self, key: RunKey) -> Path:
        return self.root / "traces" / f"{key.digest()}.jsonl"

    def _meta_path(self, key: RunKey) -> Path:
        return self.root / "meta" / f"{key.digest()}.json"

    def _report_path(self, key: RunKey, params_digest: str) -> Path:
        return self.root / "reports" / f"{key.digest()}-{params_digest}.pkl"

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def lookup(self, key: RunKey) -> Optional[CachedRun]:
        """Counted probe: a hit loads the cached run, a miss returns None."""
        run = self.load(key)
        if run is None:
            self.stats.trace_misses += 1
            _obs.count("cache.trace_misses")
        else:
            self.stats.trace_hits += 1
            _obs.count("cache.trace_hits")
        return run

    def load(self, key: RunKey) -> Optional[CachedRun]:
        """Uncounted load, for re-reading artifacts known to exist (e.g.
        after a pool worker stored them).

        An artifact only exists once *both* files do.  :meth:`store`
        writes the meta sidecar before the trace, so a concurrent reader
        can observe meta-without-trace (a miss, re-simulated) but never
        trace-without-meta; a trace whose sidecar is absent anyway — a
        crashed writer, or a cache written before the ordering fix — is
        treated as a miss rather than silently fabricating an all-zero
        :class:`RunStats`.
        """
        with _obs.span("cache.trace_read"):
            path = self._trace_path(key)
            meta_path = self._meta_path(key)
            if not path.exists() or not meta_path.exists():
                return None
            trace = Trace.loads_jsonl(path.read_text())
            sidecar = json.loads(meta_path.read_text())
            recorded = sidecar.get("stats", {})
            stats = RunStats(**{
                f: recorded.get(f, 0) for f in RunStats().__dict__
            })
            return CachedRun(trace=trace, stats=stats)

    def store(self, key: RunKey, result: RunResult) -> None:
        """Persist a run.  Ordering matters: the meta sidecar lands
        before the trace, because :meth:`load` keys artifact existence
        on the trace file — writing trace-first opened a window where a
        concurrent ``load()`` saw the trace with no sidecar and invented
        zeroed engine stats."""
        with _obs.span("cache.trace_write"):
            sidecar = {
                "key": asdict(key),
                "stats": asdict(result.stats),
                "makespan_cycles": result.makespan_cycles,
            }
            _atomic_write(
                self._meta_path(key),
                (json.dumps(sidecar, indent=1) + "\n").encode(),
            )
            _atomic_write(
                self._trace_path(key), result.trace.dumps_jsonl().encode()
            )
        self.stats.trace_stores += 1
        _obs.count("cache.trace_stores")

    # ------------------------------------------------------------------
    # Analysis artifacts (graphs + metric reports)
    # ------------------------------------------------------------------
    def get_report(self, key: RunKey, params_digest: str) -> Any:
        with _obs.span("cache.report_read"):
            path = self._report_path(key, params_digest)
            if not path.exists():
                self.stats.report_misses += 1
                _obs.count("cache.report_misses")
                return None
            try:
                artifact = pickle.loads(path.read_bytes())
            except Exception:
                # Treat a stale/corrupt pickle as a miss; the caller
                # recomputes.
                self.stats.report_misses += 1
                _obs.count("cache.report_misses")
                return None
        self.stats.report_hits += 1
        _obs.count("cache.report_hits")
        return artifact

    def put_report(self, key: RunKey, params_digest: str, artifact: Any) -> None:
        try:
            data = pickle.dumps(artifact)
        except Exception:
            self.stats.extra["unpicklable_reports"] = (
                self.stats.extra.get("unpicklable_reports", 0) + 1
            )
            return
        with _obs.span("cache.report_write"):
            _atomic_write(self._report_path(key, params_digest), data)
        self.stats.report_stores += 1
        _obs.count("cache.report_stores")
