"""Content-addressed on-disk cache for simulated-run artifacts.

Layout under the cache root::

    traces/<digest>.jsonl      the profiler trace (source of truth)
    meta/<digest>.json         the full key + engine RunStats sidecar
    reports/<digest>-<p>.pkl   pickled analysis artifacts (graph, report,
                               advice, timeline) for analysis params ``p``

``<digest>`` is a SHA-256 over the canonical JSON of a :class:`RunKey`:
program name + input summary + flavor + thread count + machine
configuration + profiler configuration + the :func:`code_fingerprint` of
``src/repro`` itself.  Two runs with the same digest are byte-identical
(see ``tests/exec/test_golden_determinism.py``), which is what makes
content addressing sound; the fingerprint component means editing the
simulator invalidates everything it previously produced.

The cache never stores a :class:`~repro.runtime.api.Program` — bodies are
closures.  Callers re-supply the program when reassembling a
:class:`~repro.workflow.Study` from cached parts.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..machine.machine import MachineConfig
from ..profiler.recorder import ProfilerConfig
from ..profiler.trace import Trace
from ..runtime.api import Program
from ..runtime.engine import RunResult, RunStats
from ..runtime.flavors import RuntimeFlavor
from .fingerprint import code_fingerprint


@dataclass(frozen=True)
class RunKey:
    """Everything that determines a simulated run's trace, as strings."""

    program: str
    input_summary: str
    flavor: str
    threads: int
    machine: str
    profiler: str
    fingerprint: str

    @classmethod
    def for_run(
        cls,
        program: Program,
        flavor: RuntimeFlavor,
        threads: int,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
        fingerprint: str | None = None,
    ) -> "RunKey":
        machine = (
            repr(machine_config) if machine_config is not None else "paper_testbed"
        )
        return cls(
            program=program.name,
            input_summary=program.input_summary,
            flavor=flavor.name,
            threads=threads,
            machine=machine,
            profiler=repr(profiler) if profiler is not None else "",
            fingerprint=fingerprint or code_fingerprint(),
        )

    def digest(self) -> str:
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


@dataclass
class CacheStats:
    """Hit/miss/store counters, kept per :class:`RunCache` instance."""

    trace_hits: int = 0
    trace_misses: int = 0
    trace_stores: int = 0
    report_hits: int = 0
    report_misses: int = 0
    report_stores: int = 0
    extra: dict = field(default_factory=dict)

    def format(self) -> str:
        return (
            f"traces: {self.trace_hits} hits, {self.trace_misses} misses, "
            f"{self.trace_stores} stores | reports: {self.report_hits} hits, "
            f"{self.report_misses} misses, {self.report_stores} stores"
        )


@dataclass
class CachedRun:
    """A trace plus the engine statistics recorded when it was simulated."""

    trace: Trace
    stats: RunStats


def _atomic_write(path: Path, data: bytes) -> None:
    """Write via a same-directory temp file + rename so that concurrent
    pool workers never expose a half-written artifact."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class RunCache:
    """The on-disk artifact store; safe for concurrent writers."""

    def __init__(
        self, root: str | Path, fingerprint: str | None = None
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()
        for sub in ("traces", "meta", "reports"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(
        self,
        program: Program,
        flavor: RuntimeFlavor,
        threads: int,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
    ) -> RunKey:
        return RunKey.for_run(
            program, flavor, threads,
            machine_config=machine_config, profiler=profiler,
            fingerprint=self.fingerprint,
        )

    def _trace_path(self, key: RunKey) -> Path:
        return self.root / "traces" / f"{key.digest()}.jsonl"

    def _meta_path(self, key: RunKey) -> Path:
        return self.root / "meta" / f"{key.digest()}.json"

    def _report_path(self, key: RunKey, params_digest: str) -> Path:
        return self.root / "reports" / f"{key.digest()}-{params_digest}.pkl"

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def lookup(self, key: RunKey) -> Optional[CachedRun]:
        """Counted probe: a hit loads the cached run, a miss returns None."""
        run = self.load(key)
        if run is None:
            self.stats.trace_misses += 1
        else:
            self.stats.trace_hits += 1
        return run

    def load(self, key: RunKey) -> Optional[CachedRun]:
        """Uncounted load, for re-reading artifacts known to exist (e.g.
        after a pool worker stored them)."""
        path = self._trace_path(key)
        if not path.exists():
            return None
        trace = Trace.loads_jsonl(path.read_text())
        stats = RunStats()
        meta_path = self._meta_path(key)
        if meta_path.exists():
            sidecar = json.loads(meta_path.read_text())
            recorded = sidecar.get("stats", {})
            stats = RunStats(**{
                f: recorded.get(f, 0) for f in RunStats().__dict__
            })
        return CachedRun(trace=trace, stats=stats)

    def store(self, key: RunKey, result: RunResult) -> None:
        _atomic_write(
            self._trace_path(key), result.trace.dumps_jsonl().encode()
        )
        sidecar = {
            "key": asdict(key),
            "stats": asdict(result.stats),
            "makespan_cycles": result.makespan_cycles,
        }
        _atomic_write(
            self._meta_path(key),
            (json.dumps(sidecar, indent=1) + "\n").encode(),
        )
        self.stats.trace_stores += 1

    # ------------------------------------------------------------------
    # Analysis artifacts (graphs + metric reports)
    # ------------------------------------------------------------------
    def get_report(self, key: RunKey, params_digest: str) -> Any:
        path = self._report_path(key, params_digest)
        if not path.exists():
            self.stats.report_misses += 1
            return None
        try:
            artifact = pickle.loads(path.read_bytes())
        except Exception:
            # Treat a stale/corrupt pickle as a miss; the caller recomputes.
            self.stats.report_misses += 1
            return None
        self.stats.report_hits += 1
        return artifact

    def put_report(self, key: RunKey, params_digest: str, artifact: Any) -> None:
        try:
            data = pickle.dumps(artifact)
        except Exception:
            self.stats.extra["unpicklable_reports"] = (
                self.stats.extra.get("unpicklable_reports", 0) + 1
            )
            return
        _atomic_write(self._report_path(key, params_digest), data)
        self.stats.report_stores += 1
