"""Code fingerprint: one hash over every source file of ``repro``.

Cached run artifacts are only sound while the simulator that produced
them is the simulator that would reproduce them, so every cache key
embeds a digest of the package's own source tree.  Editing anything
under ``src/repro/`` changes the fingerprint and silently invalidates
every prior artifact — stale-cache bugs become cold-cache slowness.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

_DEFAULT_ROOT = Path(__file__).resolve().parent.parent  # src/repro
_cache: dict[Path, str] = {}


def code_fingerprint(root: str | Path | None = None) -> str:
    """Hex digest over the (sorted) ``*.py`` tree under ``root``.

    Defaults to the installed ``repro`` package directory and memoizes
    per root, since one process never sees its own sources change.
    """
    root = Path(root).resolve() if root is not None else _DEFAULT_ROOT
    cached = _cache.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    result = digest.hexdigest()[:20]
    _cache[root] = result
    return result
