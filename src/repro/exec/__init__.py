"""Study-execution layer: artifact cache + deduplicated parallel runs.

Public surface::

    RunCache(dir)                 content-addressed on-disk artifact cache
    RunKey / CacheStats           cache keying and accounting
    code_fingerprint()            the src/repro source digest in every key
    TraceExecutor(cache=...)      in-process point runner (memo + cache)
    StudyRunner(cache=..., jobs=N).run_matrix([...])
    MatrixPoint.parse("sort:GCC:8")
    set_default_cache(cache) / get_default_cache()

The *default cache* is an opt-in process-wide :class:`RunCache` that
``workflow.profile_program`` and ``workflow.speedup_table`` consult when
no explicit cache is passed.  Nothing installs one by default — unit
tests and ad-hoc scripts keep cold semantics — but the benchmark
harness's ``conftest`` installs a session cache so every figure
regeneration after the first is a warm-cache rerun.
"""

from __future__ import annotations

from typing import Optional

from .cache import CachedRun, CacheStats, RunCache, RunKey
from .fingerprint import code_fingerprint
from .runner import (
    MatrixPoint,
    StudyArtifact,
    StudyRunner,
    TraceExecutor,
    result_from_cached,
)

_default_cache: Optional[RunCache] = None


def set_default_cache(cache: Optional[RunCache]) -> Optional[RunCache]:
    """Install (or clear, with ``None``) the process-wide default cache.

    Returns the previous default so callers can restore it.
    """
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def get_default_cache() -> Optional[RunCache]:
    return _default_cache


__all__ = [
    "CachedRun",
    "CacheStats",
    "MatrixPoint",
    "RunCache",
    "RunKey",
    "StudyArtifact",
    "StudyRunner",
    "TraceExecutor",
    "code_fingerprint",
    "get_default_cache",
    "result_from_cached",
    "set_default_cache",
]
