"""Study execution: deduplicated, cached, optionally parallel runs.

Two layers:

:class:`TraceExecutor`
    The in-process point runner.  ``run(program, flavor, threads)``
    memoizes within the executor, consults the :class:`RunCache` (when
    attached), and only then simulates.  ``workflow.speedup_table`` and
    ``workflow.profile_program`` route every engine run through one of
    these, which is what deduplicates the shared single-core reference
    runs across flavors, figures, and — with an on-disk cache — whole
    processes.

:class:`StudyRunner`
    The matrix runner.  ``run_matrix`` takes (program, flavor, threads)
    points, expands them with their reference runs, deduplicates the
    resulting simulation set, fans cache misses across a process pool
    (``jobs > 1``), and reassembles full :class:`~repro.workflow.Study`
    objects from the cached JSONL traces.  Pool workers receive
    ``(registry name, kwargs)`` pairs — never :class:`Program` objects,
    whose closure bodies cannot cross a process boundary — and write
    traces straight into the cache, which doubles as the transport
    channel back to the parent.

Telemetry: matrix execution is timed under ``exec.run_matrix`` and each
engine run under ``exec.simulate``; every pool worker snapshots its own
:mod:`repro.obs` registry and per-call :class:`CacheStats`, which the
parent absorbs — counters (and cache hit/miss/store totals) for a
``--jobs N`` run therefore match the serial equivalent exactly.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from tempfile import TemporaryDirectory
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..machine import Machine, MachineConfig
from ..obs import registry as _obs
from ..obs.export import ObsSnapshot
from ..profiler.recorder import ProfilerConfig
from ..runtime.api import Program, run_program
from ..runtime.engine import RunResult
from ..runtime.flavors import MIR, RuntimeFlavor, flavor_by_name
from .cache import CachedRun, RunCache, RunKey

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..workflow import Study


def result_from_cached(
    cached: CachedRun, machine_config: MachineConfig | None = None
) -> RunResult:
    """Rebuild a :class:`RunResult` from a cached trace + stats sidecar.

    The machine is reconstructed cold from configuration; only its
    topology (for ``makespan_seconds`` etc.) is meaningful afterwards.
    """
    machine = Machine(machine_config) if machine_config else Machine.paper_testbed()
    return RunResult(
        trace=cached.trace,
        makespan_cycles=cached.trace.meta.makespan_cycles,
        stats=cached.stats,
        flavor=cached.trace.meta.flavor,
        num_threads=cached.trace.meta.num_threads,
        machine=machine,
    )


class TraceExecutor:
    """In-process point runner: memo -> cache -> simulate.

    Memoization (and the cache) key on ``(program name, input summary,
    flavor, threads)`` plus machine/profiler config — program inputs must
    therefore be encoded in ``input_summary``, which every registered app
    does.
    """

    def __init__(
        self,
        cache: RunCache | None = None,
        machine_config: MachineConfig | None = None,
        profiler: ProfilerConfig | None = None,
    ) -> None:
        self.cache = cache
        self.machine_config = machine_config
        self.profiler = profiler
        self.simulated = 0
        self._memo: dict[tuple[str, str, str, int], RunResult] = {}

    def _machine(self) -> Machine:
        if self.machine_config is not None:
            return Machine(self.machine_config)
        return Machine.paper_testbed()

    def run(
        self, program: Program, flavor: RuntimeFlavor = MIR, threads: int = 48
    ) -> RunResult:
        memo_key = (program.name, program.input_summary, flavor.name, threads)
        hit = self._memo.get(memo_key)
        if hit is not None:
            return hit
        key = None
        if self.cache is not None:
            key = self.cache.key_for(
                program, flavor, threads,
                machine_config=self.machine_config, profiler=self.profiler,
            )
            cached = self.cache.lookup(key)
            if cached is not None:
                result = result_from_cached(cached, self.machine_config)
                self._memo[memo_key] = result
                return result
        with _obs.span("exec.simulate"):
            result = run_program(
                program, flavor=flavor, num_threads=threads,
                machine=self._machine(), profiler=self.profiler,
            )
        self.simulated += 1
        _obs.count("exec.simulated")
        if self.cache is not None and key is not None:
            self.cache.store(key, result)
        self._memo[memo_key] = result
        return result


# ---------------------------------------------------------------------------
# Matrix running
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixPoint:
    """One study point: a registry program name at a flavor/thread count.

    ``kwargs`` (a sorted tuple of pairs) parameterizes the registry
    factory; it stays picklable so points can ship to pool workers.
    """

    program: str
    flavor: str = "MIR"
    threads: int = 48
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def parse(
        cls, spec: str, default_flavor: str = "MIR", default_threads: int = 48
    ) -> "MatrixPoint":
        """Parse ``PROGRAM[:FLAVOR[:THREADS]]`` (e.g. ``sort:GCC:8``).

        Empty trailing fields fall back to the defaults, so ``sort::8``
        and ``sort:GCC:`` are both accepted.  Specs cannot spell program
        ``kwargs`` — a parsed spec never round-trips a point built with
        :meth:`MatrixPoint.of`; parameterized points must be constructed
        programmatically.
        """
        parts = spec.strip().split(":")
        if not parts or not parts[0]:
            raise ValueError(f"empty matrix point spec {spec!r}")
        if len(parts) > 3:
            raise ValueError(
                f"bad matrix point {spec!r}: want PROGRAM[:FLAVOR[:THREADS]]"
                " (program kwargs cannot be spelled in a spec; build such"
                " points with MatrixPoint.of)"
            )
        flavor = parts[1].upper() if len(parts) > 1 and parts[1] else default_flavor
        threads = default_threads
        if len(parts) > 2 and parts[2]:
            try:
                threads = int(parts[2])
            except ValueError:
                raise ValueError(
                    f"bad matrix point {spec!r}: THREADS must be an"
                    f" integer, got {parts[2]!r}"
                ) from None
        return cls(program=parts[0], flavor=flavor, threads=threads)

    @classmethod
    def of(
        cls,
        program: str,
        flavor: str = "MIR",
        threads: int = 48,
        **kwargs: Any,
    ) -> "MatrixPoint":
        return cls(
            program=program, flavor=flavor, threads=threads,
            kwargs=tuple(sorted(kwargs.items())),
        )

    def resolve(self) -> Program:
        from ..apps import registry

        return registry.resolve(self.program, **dict(self.kwargs))


@dataclass(frozen=True)
class _SimSpec:
    """One deduplicated engine run backing one or more matrix points."""

    program: str
    kwargs: tuple[tuple[str, Any], ...]
    flavor: str
    threads: int


_PoolPayload = tuple[
    str,
    tuple[tuple[str, Any], ...],
    str,
    int,
    str,
    str,
    Optional[MachineConfig],
    Optional[ProfilerConfig],
]


def _pool_simulate(payload: _PoolPayload) -> tuple[str, dict[str, Any], str]:
    """Pool worker: simulate one point and store its trace in the cache.

    Runs in a separate process; returns the cache digest (so the parent
    can sanity-check the round trip) plus this call's cache-stats dict
    and observability snapshot, which the parent absorbs — worker-side
    counters are never lost to the process boundary.
    """
    (name, kwargs, flavor_name, threads, cache_root, fingerprint,
     machine_config, profiler) = payload
    from ..apps import registry

    _obs.get_registry().reset()  # exact per-call snapshot (see return)
    cache = RunCache(cache_root, fingerprint=fingerprint)
    program = registry.resolve(name, **dict(kwargs))
    flavor = flavor_by_name(flavor_name)
    machine = Machine(machine_config) if machine_config else None
    with _obs.span("exec.simulate"):
        result = run_program(
            program, flavor=flavor, num_threads=threads,
            machine=machine, profiler=profiler,
        )
    _obs.count("exec.simulated")
    key = cache.key_for(
        program, flavor, threads,
        machine_config=machine_config, profiler=profiler,
    )
    cache.store(key, result)
    return key.digest(), asdict(cache.stats), _obs.snapshot().to_json()


@dataclass
class StudyRunner:
    """Fan a study matrix across workers, never simulating a point twice.

    ``jobs > 1`` requires registry-resolvable points; with no cache
    attached, a temporary directory serves as the worker->parent trace
    transport.  Analysis (graph build + metrics) always happens in the
    parent, backed by the cache's pickled report artifacts.
    """

    cache: RunCache | None = None
    jobs: int = 1
    reference_threads: Optional[int] = 1
    machine_config: MachineConfig | None = None
    profiler: ProfilerConfig | None = None
    validate: bool = True
    lint: bool = False
    simulated: int = field(default=0, init=False)

    def _params_digest(self, with_reference: bool) -> str:
        canonical = repr((
            "study-v1", with_reference, self.validate, self.lint,
        ))
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def run_matrix(self, points: Sequence["MatrixPoint | str"]) -> "list[Study]":
        """Run every point; returns the matching list of ``Study`` objects."""
        from ..workflow import build_study

        parsed = [
            MatrixPoint.parse(p) if isinstance(p, str) else p for p in points
        ]
        cache = self.cache
        transport: TemporaryDirectory[str] | None = None
        if cache is None and self.jobs > 1:
            transport = TemporaryDirectory(prefix="grain-exec-")
            cache = RunCache(transport.name)
        try:
            with _obs.span("exec.run_matrix"):
                return self._run_matrix(parsed, cache, build_study)
        finally:
            if transport is not None:
                transport.cleanup()

    # ------------------------------------------------------------------
    def _spec_for(self, point: MatrixPoint, threads: int) -> _SimSpec:
        return _SimSpec(point.program, point.kwargs, point.flavor, threads)

    def _run_matrix(
        self,
        points: list[MatrixPoint],
        cache: RunCache | None,
        build_study: "Callable[..., Study]",
    ) -> "list[Study]":
        # 1. Deduplicate the simulation set (matrix points + references).
        specs: dict[_SimSpec, Program] = {}
        for point in points:
            for threads in self._threads_for(point):
                spec = self._spec_for(point, threads)
                if spec not in specs:
                    specs[spec] = point.resolve()

        # 2. Partition into cache hits and points needing simulation.
        results: dict[_SimSpec, RunResult] = {}
        keys: dict[_SimSpec, RunKey] = {}
        missing: list[_SimSpec] = []
        for spec, program in specs.items():
            flavor = flavor_by_name(spec.flavor)
            if cache is None:
                missing.append(spec)
                continue
            key = cache.key_for(
                program, flavor, spec.threads,
                machine_config=self.machine_config, profiler=self.profiler,
            )
            keys[spec] = key
            cached = cache.lookup(key)
            if cached is not None:
                results[spec] = result_from_cached(cached, self.machine_config)
            else:
                missing.append(spec)

        # 3. Simulate the misses — across the pool or inline.
        # ``self.simulated`` counts *completed* simulations: it is
        # bumped as each result lands, so a failing worker (or an
        # engine error inline) never leaves the counter — and the
        # ``exec.simulated`` obs story — overcounted.
        if missing and self.jobs > 1 and cache is not None:
            payloads: list[_PoolPayload] = [
                (
                    spec.program, spec.kwargs, spec.flavor, spec.threads,
                    str(cache.root), cache.fingerprint,
                    self.machine_config, self.profiler,
                )
                for spec in missing
            ]
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                for spec, (digest, worker_stats, worker_snap) in zip(
                    missing, pool.map(_pool_simulate, payloads)
                ):
                    assert digest == keys[spec].digest()
                    self.simulated += 1
                    cache.stats.absorb(worker_stats)
                    _obs.get_registry().absorb(
                        ObsSnapshot.from_json(worker_snap)
                    )
                    cached = cache.load(keys[spec])
                    if cached is None:  # pragma: no cover - worker bug guard
                        raise RuntimeError(
                            f"pool worker failed to store {spec}"
                        )
                    results[spec] = result_from_cached(
                        cached, self.machine_config
                    )
        else:
            for spec in missing:
                with _obs.span("exec.simulate"):
                    result = run_program(
                        specs[spec],
                        flavor=flavor_by_name(spec.flavor),
                        num_threads=spec.threads,
                        machine=(
                            Machine(self.machine_config)
                            if self.machine_config else Machine.paper_testbed()
                        ),
                        profiler=self.profiler,
                    )
                _obs.count("exec.simulated")
                self.simulated += 1
                if cache is not None:
                    cache.store(keys[spec], result)
                results[spec] = result

        # 4. Reassemble Study objects (analysis cached separately).
        studies: "list[Study]" = []
        for point in points:
            main_spec = self._spec_for(point, point.threads)
            ref_spec = self._reference_spec(point)
            result = results[main_spec]
            reference = results[ref_spec] if ref_spec else None
            study: "Study | None" = None
            params = self._params_digest(reference is not None)
            if cache is not None:
                artifact = cache.get_report(keys[main_spec], params)
                if artifact is not None:
                    study = artifact.rebuild(
                        program=specs[main_spec], result=result,
                        reference=reference,
                    )
            if study is None:
                study = build_study(
                    specs[main_spec], result, reference=reference,
                    validate=self.validate, lint=self.lint,
                )
                if cache is not None:
                    cache.put_report(
                        keys[main_spec], params, StudyArtifact.of(study)
                    )
            studies.append(study)
        return studies

    def _threads_for(self, point: MatrixPoint) -> list[int]:
        threads = [point.threads]
        ref = self._reference_spec(point)
        if ref is not None:
            threads.append(ref.threads)
        return threads

    def _reference_spec(self, point: MatrixPoint) -> Optional[_SimSpec]:
        if (
            self.reference_threads is None
            or self.reference_threads == point.threads
        ):
            return None
        return self._spec_for(point, self.reference_threads)


@dataclass
class StudyArtifact:
    """The picklable analysis half of a Study (no Program, no RunResult)."""

    graph: Any
    report: Any
    advice: Any
    timeline: Any
    reference_graph: Any
    lint_report: Any

    @classmethod
    def of(cls, study: "Study") -> "StudyArtifact":
        return cls(
            graph=study.graph,
            report=study.report,
            advice=study.advice,
            timeline=study.timeline,
            reference_graph=study.reference_graph,
            lint_report=study.lint_report,
        )

    def rebuild(
        self,
        program: Program,
        result: RunResult,
        reference: RunResult | None,
    ) -> "Study":
        from ..workflow import Study

        return Study(
            program=program,
            result=result,
            graph=self.graph,
            report=self.report,
            advice=self.advice,
            timeline=self.timeline,
            reference=reference,
            reference_graph=self.reference_graph,
            lint_report=self.lint_report,
        )
