"""Minimum-cores bin packing (the Gecode stand-in of Sec. 4.3.4).

"We used a straight-forward bin-packer implemented in Gecode to compute
the minimum number of cores necessary to retain the same makespan — 7
cores."  :func:`minimum_cores` answers the same question for a set of
grain durations and a makespan bound.
"""

from .packing import (
    first_fit_decreasing,
    lower_bound_l2,
    pack_feasible,
    minimum_cores,
    minimum_cores_for_graph,
    PackingResult,
)

__all__ = [
    "first_fit_decreasing",
    "lower_bound_l2",
    "pack_feasible",
    "minimum_cores",
    "minimum_cores_for_graph",
    "PackingResult",
]
