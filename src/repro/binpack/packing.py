"""Bin packing: fewest cores whose bins all fit under a makespan bound.

Two solvers layered the classic way:

- :func:`first_fit_decreasing` — the 11/9 OPT + 1 approximation, used as
  an upper bound and as the branch-and-bound's incumbent,
- :func:`pack_feasible` — exact feasibility for a fixed bin count by
  depth-first search with symmetry breaking, exact-fit dominance, a
  Martello-Toth L2 lower-bound precheck, and memoized failure states,
  which is what a straightforward Gecode model would do.

:func:`minimum_cores` linear-scans bin counts between the Martello-Toth
lower bound and the FFD solution.  Instances from the Freqmine use case
(about 1300 items, a handful of huge ones) solve in milliseconds because
FFD is already optimal or off by one; adversarial instances (the
property-test generators) are kept fast by the L2 precheck — which
proves most infeasible counts without search — and by a bounded node
budget with FFD fallback.
"""

from __future__ import annotations

from dataclasses import dataclass


def lower_bound_l2(items: list[int], capacity: int) -> int:
    """The Martello-Toth L2 lower bound on the number of bins.

    For a threshold ``k``, items larger than ``capacity - k`` each need a
    private bin whose residual (< k) is useless to items >= k; items over
    half the capacity cannot share with each other; the rest of the
    >= k mass must fit into those bins' leftovers or new bins.  Maximized
    over all thresholds; always at least the area bound ``ceil(sum/C)``.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    sizes = [s for s in items if s > 0]
    best = 0
    thresholds = {0} | {s for s in sizes if 2 * s <= capacity}
    for k in thresholds:
        huge = big = 0  # |J1|, |J2|
        big_sum = small_sum = 0  # sum(J2), sum(J3)
        for s in sizes:
            if s > capacity - k:
                huge += 1
            elif 2 * s > capacity:
                big += 1
                big_sum += s
            elif s >= k:
                small_sum += s
        spill = small_sum - (big * capacity - big_sum)
        bound = huge + big + (-(-spill // capacity) if spill > 0 else 0)
        best = max(best, bound)
    return best


@dataclass(frozen=True)
class PackingResult:
    """An assignment of items to cores."""

    num_bins: int
    capacity: int
    assignment: tuple[int, ...]  # item index -> bin
    loads: tuple[int, ...]

    @property
    def max_load(self) -> int:
        return max(self.loads) if self.loads else 0


def first_fit_decreasing(items: list[int], capacity: int) -> PackingResult:
    """FFD into as few bins of ``capacity`` as needed."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    order = sorted(range(len(items)), key=lambda i: (-items[i], i))
    loads: list[int] = []
    assignment = [0] * len(items)
    for index in order:
        size = items[index]
        if size > capacity:
            raise ValueError(
                f"item {index} (size {size}) exceeds capacity {capacity}"
            )
        for b, load in enumerate(loads):
            if load + size <= capacity:
                loads[b] += size
                assignment[index] = b
                break
        else:
            assignment[index] = len(loads)
            loads.append(size)
    return PackingResult(
        num_bins=len(loads),
        capacity=capacity,
        assignment=tuple(assignment),
        loads=tuple(loads),
    )


def pack_feasible(
    items: list[int], capacity: int, bins: int, node_limit: int = 2_000_000
) -> PackingResult | None:
    """Exact: can ``items`` fit into ``bins`` bins of ``capacity``?

    Branch-and-bound over items in decreasing order with three classic
    prunings on top of the search:

    - symmetry breaking: identical-load bins are interchangeable, so an
      item is tried at most once per distinct load (and only in the
      first empty bin);
    - exact-fit dominance: if the current (largest remaining) item
      exactly fills some bin's residual, committing it there is
      dominant — any solution can be rearranged into one that does —
      so no other placement is branched;
    - memoized failure states: a failed ``(item index, sorted loads)``
      state is never re-explored via a different assignment history.

    Infeasibility of most instances is proved outright by the
    Martello-Toth :func:`lower_bound_l2` precheck, without search.
    Returns a packing or ``None``; raises on hitting the node limit.
    """
    if bins <= 0:
        return None
    order = sorted(range(len(items)), key=lambda i: (-items[i], i))
    sizes = [items[i] for i in order]
    if any(size > capacity for size in sizes):
        return None
    if sum(sizes) > bins * capacity:
        return None
    if lower_bound_l2(sizes, capacity) > bins:
        return None
    loads = [0] * bins
    assignment = [-1] * len(sizes)
    nodes = 0
    failed: set[tuple[int, tuple[int, ...]]] = set()
    memo_limit = 200_000  # bound the memo, not correctness

    def place(index: int, b: int) -> bool:
        loads[b] += sizes[index]
        assignment[index] = b
        if dfs(index + 1):
            return True
        loads[b] -= sizes[index]
        assignment[index] = -1
        return False

    def dfs(index: int) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("bin-packing node limit exceeded")
        if index == len(sizes):
            return True
        state = (index, tuple(sorted(loads)))
        if state in failed:
            return False
        size = sizes[index]
        exact = next(
            (b for b in range(bins) if loads[b] + size == capacity), None
        )
        if exact is not None:
            ok = place(index, exact)
        else:
            ok = False
            tried: set[int] = set()
            for b in range(bins):
                if loads[b] + size > capacity or loads[b] in tried:
                    continue
                tried.add(loads[b])
                if place(index, b):
                    ok = True
                    break
                if loads[b] == 0:
                    break  # all further empty bins are symmetric
        if not ok and len(failed) < memo_limit:
            failed.add(state)
        return ok

    if not dfs(0):
        return None
    final = [0] * len(items)
    for pos, original in enumerate(order):
        final[original] = assignment[pos]
    return PackingResult(
        num_bins=bins,
        capacity=capacity,
        assignment=tuple(final),
        loads=tuple(loads),
    )


def minimum_cores(
    durations: list[int], makespan: int, exact_limit: int = 64,
    node_limit: int = 50_000,
) -> PackingResult:
    """Fewest cores keeping every core's total within ``makespan``.

    Scans from the Martello-Toth lower bound up to the FFD answer, using
    the exact solver when the bin-count gap is small (``exact_limit``
    bounds the number of exact attempts, ``node_limit`` each attempt's
    search; FFD is returned if exactness is abandoned, keeping the
    answer within [area bound, FFD] in bounded time).
    """
    if makespan <= 0:
        raise ValueError("makespan bound must be positive")
    if not durations:
        return PackingResult(num_bins=0, capacity=makespan, assignment=(), loads=())
    ffd = first_fit_decreasing(durations, makespan)
    lower = max(1, lower_bound_l2(durations, makespan))
    attempts = 0
    for bins in range(lower, ffd.num_bins):
        attempts += 1
        if attempts > exact_limit:
            break
        try:
            result = pack_feasible(durations, makespan, bins, node_limit)
        except RuntimeError:
            break
        if result is not None:
            return result
    return ffd


def minimum_cores_for_graph(graph, loop_id: int, slack: float = 0.02):
    """The Freqmine recipe: minimum cores for one loop instance such that
    its chunks still fit within the observed loop makespan (plus a small
    scheduling slack)."""
    from ..core.grains import GrainKind

    chunks = [
        g for g in graph.grains.values()
        if g.kind is GrainKind.CHUNK and g.loop_id == loop_id
    ]
    if not chunks:
        raise ValueError(f"loop {loop_id} has no chunks")
    start = min(g.first_start for g in chunks)
    end = max(g.last_end for g in chunks)
    makespan = int((end - start) * (1.0 + slack))
    durations = [g.exec_time for g in sorted(chunks, key=lambda g: g.gid)]
    return minimum_cores(durations, makespan)
