"""Bin packing: fewest cores whose bins all fit under a makespan bound.

Two solvers layered the classic way:

- :func:`first_fit_decreasing` — the 11/9 OPT + 1 approximation, used as
  an upper bound and as the branch-and-bound's incumbent,
- :func:`pack_feasible` — exact feasibility for a fixed bin count by
  depth-first search with symmetry breaking and memoized failure states,
  which is what a straightforward Gecode model would do.

:func:`minimum_cores` binary-searches/linear-scans bin counts between the
area lower bound and the FFD solution.  Instances from the Freqmine use
case (about 1300 items, a handful of huge ones) solve in milliseconds
because FFD is already optimal or off by one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PackingResult:
    """An assignment of items to cores."""

    num_bins: int
    capacity: int
    assignment: tuple[int, ...]  # item index -> bin
    loads: tuple[int, ...]

    @property
    def max_load(self) -> int:
        return max(self.loads) if self.loads else 0


def first_fit_decreasing(items: list[int], capacity: int) -> PackingResult:
    """FFD into as few bins of ``capacity`` as needed."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    order = sorted(range(len(items)), key=lambda i: (-items[i], i))
    loads: list[int] = []
    assignment = [0] * len(items)
    for index in order:
        size = items[index]
        if size > capacity:
            raise ValueError(
                f"item {index} (size {size}) exceeds capacity {capacity}"
            )
        for b, load in enumerate(loads):
            if load + size <= capacity:
                loads[b] += size
                assignment[index] = b
                break
        else:
            assignment[index] = len(loads)
            loads.append(size)
    return PackingResult(
        num_bins=len(loads),
        capacity=capacity,
        assignment=tuple(assignment),
        loads=tuple(loads),
    )


def pack_feasible(
    items: list[int], capacity: int, bins: int, node_limit: int = 2_000_000
) -> PackingResult | None:
    """Exact: can ``items`` fit into ``bins`` bins of ``capacity``?

    Branch-and-bound over items in decreasing order; identical-load bins
    are interchangeable, so an item is only tried in the first empty bin.
    Returns a packing or ``None``; raises on hitting the node limit.
    """
    if bins <= 0:
        return None
    order = sorted(range(len(items)), key=lambda i: (-items[i], i))
    sizes = [items[i] for i in order]
    if any(size > capacity for size in sizes):
        return None
    if sum(sizes) > bins * capacity:
        return None
    loads = [0] * bins
    assignment = [-1] * len(sizes)
    nodes = 0

    def dfs(index: int) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("bin-packing node limit exceeded")
        if index == len(sizes):
            return True
        size = sizes[index]
        tried: set[int] = set()
        for b in range(bins):
            if loads[b] + size > capacity or loads[b] in tried:
                continue
            tried.add(loads[b])
            loads[b] += size
            assignment[index] = b
            if dfs(index + 1):
                return True
            loads[b] -= size
            assignment[index] = -1
            if loads[b] == 0:
                break  # all further empty bins are symmetric
        return False

    if not dfs(0):
        return None
    final = [0] * len(items)
    for pos, original in enumerate(order):
        final[original] = assignment[pos]
    return PackingResult(
        num_bins=bins,
        capacity=capacity,
        assignment=tuple(final),
        loads=tuple(loads),
    )


def minimum_cores(
    durations: list[int], makespan: int, exact_limit: int = 64
) -> PackingResult:
    """Fewest cores keeping every core's total within ``makespan``.

    Scans from the area lower bound up to the FFD answer, using the exact
    solver when the bin-count gap is small (``exact_limit`` bounds the
    number of exact attempts; FFD is returned if exactness is abandoned).
    """
    if makespan <= 0:
        raise ValueError("makespan bound must be positive")
    if not durations:
        return PackingResult(num_bins=0, capacity=makespan, assignment=(), loads=())
    ffd = first_fit_decreasing(durations, makespan)
    lower = max(1, -(-sum(durations) // makespan))
    attempts = 0
    for bins in range(lower, ffd.num_bins):
        attempts += 1
        if attempts > exact_limit:
            break
        try:
            result = pack_feasible(durations, makespan, bins)
        except RuntimeError:
            break
        if result is not None:
            return result
    return ffd


def minimum_cores_for_graph(graph, loop_id: int, slack: float = 0.02):
    """The Freqmine recipe: minimum cores for one loop instance such that
    its chunks still fit within the observed loop makespan (plus a small
    scheduling slack)."""
    from ..core.grains import GrainKind

    chunks = [
        g for g in graph.grains.values()
        if g.kind is GrainKind.CHUNK and g.loop_id == loop_id
    ]
    if not chunks:
        raise ValueError(f"loop {loop_id} has no chunks")
    start = min(g.first_start for g in chunks)
    end = max(g.last_end for g in chunks)
    makespan = int((end - start) * (1.0 + slack))
    durations = [g.exec_time for g in sorted(chunks, key=lambda g: g.gid)]
    return minimum_cores(durations, makespan)
