"""Trace and runtime-invariant passes.

These audit the simulator's own output — the OMPT-like event stream —
for invariants any correct OpenMP runtime (and our discrete-event engine)
must uphold.  They double as a regression net for engine changes: a
scheduling bug that double-books a worker or tears a fragment interval
surfaces here before it corrupts downstream metrics.

- ``trace.monotonic-time`` — events are emitted in non-decreasing
  virtual time (fragments/chunks/book-keeping anchor at their end).
- ``trace.balanced-events`` — taskwait begin/end pair up per task, every
  loop begin has an end, every created task completes.
- ``trace.nonnegative-duration`` — no negative spans or creation costs.
- ``trace.counter-sanity`` — counters are non-negative, stall and
  compute cycles never exceed total cycles, and a span's measured cycles
  never exceed its wall-clock extent.
- ``trace.worker-overlap`` — no core executes two grain spans at once.
- ``trace.grain-coverage`` — each task's fragments are contiguously
  numbered, time-ordered without overlap, and lie within the task's
  create/complete window on a valid core.
"""

from __future__ import annotations

from typing import Iterator

from ..profiler.events import (
    BookkeepingEvent,
    ChunkEvent,
    Event,
    FragmentEvent,
    LoopBeginEvent,
    LoopEndEvent,
    TaskCompleteEvent,
    TaskCreateEvent,
    TaskwaitBeginEvent,
    TaskwaitEndEvent,
)
from ..profiler.trace import Trace
from .diagnostics import Diagnostic, Severity
from .framework import TRACE_LAYER, register

# Events carrying an executed span (emitted at span end).
_SPAN_EVENTS = (FragmentEvent, ChunkEvent, BookkeepingEvent)


def _anchor_time(event: Event) -> int:
    return event.end if isinstance(event, _SPAN_EVENTS) else event.time


def _describe(event: Event) -> str:
    if isinstance(event, FragmentEvent):
        return f"fragment {event.tid}#{event.seq}"
    if isinstance(event, ChunkEvent):
        return f"chunk {event.loop_id}/{event.chunk_seq}"
    if isinstance(event, BookkeepingEvent):
        return f"bookkeeping loop {event.loop_id} thread {event.thread}"
    return event.kind


@register("trace.monotonic-time", "virtual time monotonicity", TRACE_LAYER)
def check_monotonic_time(trace: Trace) -> Iterator[Diagnostic]:
    last_time = None
    last_index = -1
    for index, event in enumerate(trace.events):
        now = _anchor_time(event)
        if last_time is not None and now < last_time:
            yield Diagnostic(
                rule_id="trace.monotonic-time",
                severity=Severity.ERROR,
                message=(
                    f"{_describe(event)} emitted at t={now} after event "
                    f"{last_index} at t={last_time}; the engine's event "
                    "heap must process strictly by time"
                ),
                event_index=index,
            )
        last_time, last_index = now, index


@register("trace.balanced-events", "begin/end event balance", TRACE_LAYER)
def check_balanced_events(trace: Trace) -> Iterator[Diagnostic]:
    wait_depth: dict[int, int] = {}
    created: set[int] = set()
    completed: set[int] = set()
    open_loops: dict[int, int] = {}  # loop_id -> begin index
    for index, event in enumerate(trace.events):
        if isinstance(event, TaskCreateEvent):
            created.add(event.tid)
        elif isinstance(event, TaskCompleteEvent):
            if event.tid in completed:
                yield _balance_error(
                    index, f"task {event.tid} completed twice"
                )
            completed.add(event.tid)
        elif isinstance(event, TaskwaitBeginEvent):
            wait_depth[event.tid] = wait_depth.get(event.tid, 0) + 1
            if wait_depth[event.tid] > 1:
                yield _balance_error(
                    index,
                    f"task {event.tid} begins a taskwait while one is open",
                )
        elif isinstance(event, TaskwaitEndEvent):
            wait_depth[event.tid] = wait_depth.get(event.tid, 0) - 1
            if wait_depth[event.tid] < 0:
                yield _balance_error(
                    index, f"taskwait end without begin for task {event.tid}"
                )
        elif isinstance(event, LoopBeginEvent):
            open_loops[event.loop_id] = index
        elif isinstance(event, LoopEndEvent):
            if event.loop_id not in open_loops:
                yield _balance_error(
                    index, f"loop {event.loop_id} ends without beginning"
                )
            open_loops.pop(event.loop_id, None)
    for tid, depth in sorted(wait_depth.items()):
        if depth > 0:
            yield _balance_error(
                len(trace.events) - 1,
                f"task {tid} has {depth} unterminated taskwait(s)",
            )
    for tid in sorted(created - completed):
        yield _balance_error(
            len(trace.events) - 1, f"task {tid} created but never completed"
        )
    for tid in sorted(completed - created):
        yield _balance_error(
            len(trace.events) - 1, f"task {tid} completed but never created"
        )
    for loop_id, index in sorted(open_loops.items()):
        yield _balance_error(index, f"loop {loop_id} never ends")


def _balance_error(index: int, message: str) -> Diagnostic:
    return Diagnostic(
        rule_id="trace.balanced-events",
        severity=Severity.ERROR,
        message=message,
        event_index=index,
    )


@register(
    "trace.nonnegative-duration", "non-negative spans and costs", TRACE_LAYER
)
def check_nonnegative_duration(trace: Trace) -> Iterator[Diagnostic]:
    for index, event in enumerate(trace.events):
        if isinstance(event, _SPAN_EVENTS) and event.end < event.start:
            yield Diagnostic(
                rule_id="trace.nonnegative-duration",
                severity=Severity.ERROR,
                message=(
                    f"{_describe(event)} spans [{event.start}, {event.end}) "
                    "with negative length"
                ),
                event_index=index,
            )
        elif isinstance(event, TaskCreateEvent) and event.creation_cycles < 0:
            yield Diagnostic(
                rule_id="trace.nonnegative-duration",
                severity=Severity.ERROR,
                message=(
                    f"task {event.tid} has negative creation cost "
                    f"{event.creation_cycles}"
                ),
                event_index=index,
            )


@register("trace.counter-sanity", "hardware counter sanity", TRACE_LAYER)
def check_counter_sanity(trace: Trace) -> Iterator[Diagnostic]:
    for index, event in enumerate(trace.events):
        if not isinstance(event, (FragmentEvent, ChunkEvent)):
            continue
        counters = event.counters
        negatives = [
            name for name, value in counters.to_dict().items() if value < 0
        ]
        if negatives:
            yield _counter_error(
                index,
                f"{_describe(event)} has negative counters: "
                f"{', '.join(negatives)}",
            )
        if counters.stall_cycles > counters.cycles:
            yield _counter_error(
                index,
                f"{_describe(event)} stalls {counters.stall_cycles} cycles "
                f"of a {counters.cycles}-cycle span",
            )
        if counters.compute_cycles > counters.cycles:
            yield _counter_error(
                index,
                f"{_describe(event)} computes {counters.compute_cycles} "
                f"cycles of a {counters.cycles}-cycle span",
            )
        if counters.cycles > event.end - event.start:
            yield _counter_error(
                index,
                f"{_describe(event)} measured {counters.cycles} cycles in a "
                f"span of {event.end - event.start}",
            )


def _counter_error(index: int, message: str) -> Diagnostic:
    return Diagnostic(
        rule_id="trace.counter-sanity",
        severity=Severity.ERROR,
        message=message,
        event_index=index,
    )


@register("trace.worker-overlap", "one grain per worker at a time", TRACE_LAYER)
def check_worker_overlap(trace: Trace) -> Iterator[Diagnostic]:
    spans: dict[int, list[tuple[int, int, int]]] = {}  # core -> (s, e, idx)
    for index, event in enumerate(trace.events):
        if isinstance(event, _SPAN_EVENTS) and event.end > event.start:
            spans.setdefault(event.core, []).append(
                (event.start, event.end, index)
            )
    for core in sorted(spans):
        ordered = sorted(spans[core])
        for (s1, e1, i1), (s2, e2, i2) in zip(ordered, ordered[1:]):
            if s2 < e1:
                yield Diagnostic(
                    rule_id="trace.worker-overlap",
                    severity=Severity.ERROR,
                    message=(
                        f"core {core} executes "
                        f"{_describe(trace.events[i1])} "
                        f"[{s1}, {e1}) and {_describe(trace.events[i2])} "
                        f"[{s2}, {e2}) simultaneously"
                    ),
                    event_index=i2,
                )


@register("trace.grain-coverage", "grain interval coverage", TRACE_LAYER)
def check_grain_coverage(trace: Trace) -> Iterator[Diagnostic]:
    num_threads = trace.meta.num_threads if trace.meta else None
    frags: dict[int, list[tuple[int, FragmentEvent]]] = {}
    creates: dict[int, TaskCreateEvent] = {}
    completes: dict[int, TaskCompleteEvent] = {}
    for index, event in enumerate(trace.events):
        if isinstance(event, FragmentEvent):
            frags.setdefault(event.tid, []).append((index, event))
        elif isinstance(event, TaskCreateEvent):
            creates[event.tid] = event
        elif isinstance(event, TaskCompleteEvent):
            completes[event.tid] = event
        if (
            isinstance(event, (FragmentEvent, ChunkEvent, BookkeepingEvent))
            and num_threads is not None
            and not 0 <= event.core < num_threads
        ):
            yield _coverage_error(
                index,
                f"{_describe(event)} ran on core {event.core}, outside the "
                f"run's {num_threads} worker(s)",
            )
    for tid in sorted(creates):
        if tid not in frags:
            yield _coverage_error(
                None, f"task {tid} completed without executing any fragment"
            )
    for tid, items in sorted(frags.items()):
        seqs = [event.seq for _, event in items]
        if seqs != list(range(len(seqs))):
            yield _coverage_error(
                items[0][0],
                f"task {tid} fragment sequence {seqs} is not contiguous "
                "from 0",
            )
        for (i1, f1), (i2, f2) in zip(items, items[1:]):
            if f2.start < f1.end:
                yield _coverage_error(
                    i2,
                    f"task {tid} fragments #{f1.seq} and #{f2.seq} overlap "
                    f"([{f1.start}, {f1.end}) vs [{f2.start}, {f2.end}))",
                )
        create = creates.get(tid)
        if create is not None and items[0][1].start < create.time:
            yield _coverage_error(
                items[0][0],
                f"task {tid} starts executing at {items[0][1].start}, "
                f"before its creation at {create.time}",
            )
        complete = completes.get(tid)
        if complete is not None and items[-1][1].end > complete.time:
            yield _coverage_error(
                items[-1][0],
                f"task {tid} still executing at {items[-1][1].end}, after "
                f"its completion at {complete.time}",
            )


def _coverage_error(index: int | None, message: str) -> Diagnostic:
    return Diagnostic(
        rule_id="trace.grain-coverage",
        severity=Severity.ERROR,
        message=message,
        event_index=index,
    )
