"""Diagnostic records and the lint report container.

A :class:`Diagnostic` is one finding of one lint pass: a stable rule id,
a severity, a human message, and an anchor into the artifact it was found
in (a graph node id, a trace event index, a grain id, and/or a source
location).  Passes *collect* diagnostics instead of raising, so a single
lint run audits the whole trace/graph rather than stopping at the first
violation.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional


class Severity(enum.IntEnum):
    """Ordered severities; comparisons follow the numeric order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; expected one of "
                f"{[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint pass."""

    rule_id: str
    severity: Severity
    message: str
    artifact: str = "graph"  # "trace" | "graph" | "reduced"
    node_id: Optional[int] = None
    event_index: Optional[int] = None
    grain_id: Optional[str] = None
    loc: str = ""
    fix_hint: str = ""

    def anchor(self) -> str:
        """Human-readable location of the finding inside its artifact."""
        parts = []
        if self.node_id is not None:
            parts.append(f"node {self.node_id}")
        if self.event_index is not None:
            parts.append(f"event {self.event_index}")
        if self.grain_id:
            parts.append(f"grain {self.grain_id}")
        if self.loc:
            parts.append(self.loc)
        return ", ".join(parts) if parts else self.artifact

    def with_artifact(self, artifact: str) -> "Diagnostic":
        return replace(self, artifact=artifact)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "artifact": self.artifact,
            "node_id": self.node_id,
            "event_index": self.event_index,
            "grain_id": self.grain_id,
            "loc": self.loc,
            "fix_hint": self.fix_hint,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Diagnostic":
        d = dict(d)
        d["severity"] = Severity.from_label(d["severity"])
        return cls(**d)


@dataclass
class LintReport:
    """All diagnostics of one lint run, plus which passes produced them.

    ``passes_run`` lists ``(rule_id, artifact)`` pairs in execution order,
    so "no findings" is distinguishable from "pass never ran".
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes_run: list[tuple[str, str]] = field(default_factory=list)
    program: str = ""

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_or_above(self, threshold: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= threshold]

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "passes_run": [list(p) for p in self.passes_run],
            "counts": {
                severity.label: self.count(severity) for severity in Severity
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "LintReport":
        report = cls(program=d.get("program", ""))
        report.passes_run = [
            (p[0], p[1]) for p in d.get("passes_run", [])
        ]
        report.diagnostics = [
            Diagnostic.from_dict(item) for item in d.get("diagnostics", [])
        ]
        return report
