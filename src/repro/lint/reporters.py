"""Render a :class:`~repro.lint.diagnostics.LintReport` for humans or tools."""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from .. import __version__
from ..common import SourceLocation
from .baseline import fingerprint, sort_diagnostics
from .diagnostics import Diagnostic, LintReport, Severity


def format_summary(report: LintReport) -> str:
    """One line: pass count and per-severity totals."""
    artifacts = {artifact for _, artifact in report.passes_run}
    counts = ", ".join(
        f"{report.count(severity)} {severity.label}"
        for severity in sorted(Severity, reverse=True)
    )
    scope = "/".join(
        a for a in ("program", "trace", "graph", "reduced") if a in artifacts
    )
    return (
        f"lint: {len(report.passes_run)} passes over {scope or 'nothing'}"
        f" -> {counts}"
    )


def render_text(report: LintReport, verbose: bool = False) -> str:
    """The default CLI rendering: one line per finding plus a summary."""
    lines = []
    if report.program:
        lines.append(f"lint report for {report.program}")
    for diag in report.diagnostics:
        lines.append(
            f"{diag.severity.label.upper():7} {diag.rule_id} "
            f"[{diag.artifact}: {diag.anchor()}] {diag.message}"
        )
        if diag.fix_hint:
            lines.append(f"        hint: {diag.fix_hint}")
    if verbose:
        for rule_id, artifact in report.passes_run:
            lines.append(f"ran     {rule_id} on {artifact}")
    lines.append(format_summary(report))
    return "\n".join(lines)


def render_json(report: LintReport, indent: int | None = 2) -> str:
    """Machine-readable rendering; round-trips through ``json.loads`` and
    :meth:`LintReport.from_dict`."""
    return report.to_json(indent=indent)


_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _sarif_location(diag: Diagnostic) -> Optional[dict[str, Any]]:
    if not diag.loc:
        return None
    try:
        loc = SourceLocation.parse(diag.loc)
    except ValueError:
        return None
    physical: dict[str, Any] = {
        "artifactLocation": {"uri": loc.file},
        "region": {"startLine": max(loc.line, 1)},
    }
    entry: dict[str, Any] = {"physicalLocation": physical}
    if loc.func:
        entry["logicalLocations"] = [
            {"name": loc.func, "kind": "function"}
        ]
    return entry


def _sarif_result(
    diag: Diagnostic,
    rule_index: int,
    verdicts: Optional[Mapping[str, str]],
) -> dict[str, Any]:
    print_ = fingerprint(diag)
    properties: dict[str, Any] = {"artifact": diag.artifact}
    if diag.grain_id:
        properties["grainId"] = diag.grain_id
    if diag.fix_hint:
        properties["fixHint"] = diag.fix_hint
    if verdicts is not None and print_ in verdicts:
        properties["verdict"] = verdicts[print_]
    result: dict[str, Any] = {
        "ruleId": diag.rule_id,
        "ruleIndex": rule_index,
        "level": _SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
        "partialFingerprints": {"grainGraphs/v1": print_},
        "properties": properties,
    }
    location = _sarif_location(diag)
    if location is not None:
        result["locations"] = [location]
    return result


def render_sarif(
    report: LintReport,
    verdicts: Optional[Mapping[str, str]] = None,
    indent: int | None = 2,
) -> str:
    """SARIF v2.1.0 rendering for code-scanning UIs.

    Results appear in canonical order (:func:`~repro.lint.baseline.
    sort_diagnostics`) and carry the stable content fingerprint as
    ``partialFingerprints["grainGraphs/v1"]``, so scanners track a
    finding across commits even when node ids or line offsets shift.
    ``verdicts`` (fingerprint → ``CONFIRMED``/``UNWITNESSED``/
    ``SKIPPED``) attaches ``grain-graphs verify`` replay verdicts as
    result properties.
    """
    ordered = sort_diagnostics(report.diagnostics)
    rule_ids = sorted({d.rule_id for d in ordered})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "grain-graphs",
                        "version": __version__,
                        "informationUri": (
                            "https://doi.org/10.1145/2851141.2851156"
                        ),
                        "rules": [{"id": r} for r in rule_ids],
                    }
                },
                "properties": {"program": report.program},
                "results": [
                    _sarif_result(d, rule_index[d.rule_id], verdicts)
                    for d in ordered
                ],
            }
        ],
    }
    return json.dumps(document, indent=indent)
