"""Render a :class:`~repro.lint.diagnostics.LintReport` for humans or tools."""

from __future__ import annotations

from .diagnostics import LintReport, Severity


def format_summary(report: LintReport) -> str:
    """One line: pass count and per-severity totals."""
    artifacts = {artifact for _, artifact in report.passes_run}
    counts = ", ".join(
        f"{report.count(severity)} {severity.label}"
        for severity in sorted(Severity, reverse=True)
    )
    scope = "/".join(
        a for a in ("program", "trace", "graph", "reduced") if a in artifacts
    )
    return (
        f"lint: {len(report.passes_run)} passes over {scope or 'nothing'}"
        f" -> {counts}"
    )


def render_text(report: LintReport, verbose: bool = False) -> str:
    """The default CLI rendering: one line per finding plus a summary."""
    lines = []
    if report.program:
        lines.append(f"lint report for {report.program}")
    for diag in report.diagnostics:
        lines.append(
            f"{diag.severity.label.upper():7} {diag.rule_id} "
            f"[{diag.artifact}: {diag.anchor()}] {diag.message}"
        )
        if diag.fix_hint:
            lines.append(f"        hint: {diag.fix_hint}")
    if verbose:
        for rule_id, artifact in report.passes_run:
            lines.append(f"ran     {rule_id} on {artifact}")
    lines.append(format_summary(report))
    return "\n".join(lines)


def render_json(report: LintReport, indent: int | None = 2) -> str:
    """Machine-readable rendering; round-trips through ``json.loads`` and
    :meth:`LintReport.from_dict`."""
    return report.to_json(indent=indent)
