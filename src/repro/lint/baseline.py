"""Stable finding fingerprints, canonical ordering, and baselines.

A *fingerprint* is a content hash of one diagnostic's schedule- and
refactor-stable identity: rule id, severity, artifact, grain id, source
location, and message.  Deliberately excluded: ``node_id`` and
``event_index``, which renumber whenever graph construction or event
emission order changes, and anything derived from dict/set iteration.
Two runs (or two machines) producing the same findings produce the same
fingerprints, which enables:

- **baselines** — ``check``/``verify`` ``--baseline FILE`` suppresses
  previously-recorded findings so CI gates only on *new* ones;
- **SARIF partialFingerprints** — code-scanning UIs track a finding
  across commits by fingerprint, not by line number.

:func:`sort_diagnostics` is the canonical finding order (severity
descending, then the fingerprint fields lexicographically): a total
order over stable fields only, so report/SARIF output never depends on
iteration order of intermediate containers.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from .diagnostics import Diagnostic, LintReport

BASELINE_SCHEMA = "grain-baseline/v1"


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity hash of one finding (16 hex chars)."""
    payload = "\x1f".join(
        (
            diag.rule_id,
            diag.severity.label,
            diag.artifact,
            diag.grain_id or "",
            diag.loc or "",
            diag.message,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def canonical_key(diag: Diagnostic) -> tuple[int, str, str, str, str, str]:
    """Sort key over stable fields only (higher severity first)."""
    return (
        -int(diag.severity),
        diag.rule_id,
        diag.artifact,
        diag.loc or "",
        diag.grain_id or "",
        diag.message,
    )


def sort_diagnostics(diags: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deterministic finding order, independent of dict/set iteration."""
    return sorted(diags, key=canonical_key)


def write_baseline(path: str | Path, diags: Iterable[Diagnostic]) -> int:
    """Record the findings' fingerprints; returns how many were written."""
    prints = sorted({fingerprint(d) for d in diags})
    Path(path).write_text(
        json.dumps(
            {"schema": BASELINE_SCHEMA, "fingerprints": prints}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )
    return len(prints)


def load_baseline(path: str | Path) -> frozenset[str]:
    """Load a baseline file's fingerprint set (friendly errors)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} is not a {BASELINE_SCHEMA!r} document"
        )
    prints = data.get("fingerprints", [])
    if not isinstance(prints, list) or not all(
        isinstance(p, str) for p in prints
    ):
        raise ValueError(f"baseline {path} has a malformed fingerprint list")
    return frozenset(prints)


def apply_baseline(
    report: LintReport, baseline: frozenset[str]
) -> tuple[LintReport, int]:
    """Drop findings whose fingerprint is baselined; returns the filtered
    report plus the number suppressed."""
    kept = tuple(
        d for d in report.diagnostics if fingerprint(d) not in baseline
    )
    suppressed = len(report.diagnostics) - len(kept)
    return (
        LintReport(
            diagnostics=kept,
            passes_run=report.passes_run,
            program=report.program,
        ),
        suppressed,
    )
